/root/repo/target/debug/deps/fig13-dcfc7a5b9445d42e.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-dcfc7a5b9445d42e.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
