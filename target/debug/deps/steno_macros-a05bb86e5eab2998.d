/root/repo/target/debug/deps/steno_macros-a05bb86e5eab2998.d: crates/steno-macros/src/lib.rs

/root/repo/target/debug/deps/libsteno_macros-a05bb86e5eab2998.so: crates/steno-macros/src/lib.rs

crates/steno-macros/src/lib.rs:
