/root/repo/target/debug/deps/steno-2a2caf21c8c49796.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-2a2caf21c8c49796.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-2a2caf21c8c49796.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
