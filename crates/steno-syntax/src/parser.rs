//! Recursive-descent parsing of comprehensions, method chains and
//! expressions.

use std::fmt;

use steno_expr::{BinOp, Expr, Ty, UnOp};
use steno_query::{QBody, QFn, QFn2, Query, QueryExpr, SourceRef};

use crate::lexer::{lex, LexError, Token};

/// A parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Token position of the failure.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            position: 0,
            message: e.to_string(),
        }
    }
}

/// Element types discovered from `from x: f64 in xs` annotations: one
/// entry per *named* source. Used by the `steno!` macro, where no data
/// context exists to infer from.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Binders {
    /// `(source name, element type)` in first-appearance order.
    pub source_types: Vec<(String, Ty)>,
}

impl Binders {
    fn record(&mut self, name: &str, ty: Option<Ty>) {
        if let Some(ty) = ty {
            if !self.source_types.iter().any(|(n, _)| n == name) {
                self.source_types.push((name.to_string(), ty));
            }
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Names bound by enclosing binders (comprehension or lambda).
    bound: Vec<String>,
    binders: Binders,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            Some(t) => Err(ParseError {
                position: self.pos - 1,
                message: format!("expected `{tok}`, found `{t}`"),
            }),
            None => Err(self.error(format!("expected `{tok}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(ParseError {
                position: self.pos - 1,
                message: format!("expected identifier, found `{t}`"),
            }),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    fn parse_query(&mut self) -> Result<QueryExpr, ParseError> {
        let q = self.parse_primary_query()?;
        self.parse_method_suffixes(q)
    }

    fn parse_method_suffixes(&mut self, mut q: QueryExpr) -> Result<QueryExpr, ParseError> {
        while matches!(self.peek(), Some(Token::Dot))
            && matches!(self.peek2(), Some(Token::Ident(_)))
        {
            let save = self.pos;
            self.pos += 1; // dot
            let method = self.expect_ident()?;
            if !matches!(self.peek(), Some(Token::LParen)) {
                // Not a call — probably field access on an expression;
                // let the caller deal with it.
                self.pos = save;
                break;
            }
            q = self.parse_method(q, &method)?;
        }
        Ok(q)
    }

    /// `true` when the upcoming tokens are `.method(` for a query method
    /// (for `min`/`max`, only the zero-argument or lambda-argument forms,
    /// since those names double as scalar expression methods).
    fn at_query_method_dot(&self) -> bool {
        let (Some(Token::Dot), Some(Token::Ident(m)), Some(Token::LParen)) = (
            self.peek(),
            self.peek2(),
            self.toks.get(self.pos + 2),
        ) else {
            return false;
        };
        if !is_query_method(m) {
            return false;
        }
        if matches!(normalize_method(m).as_str(), "min" | "max") {
            // xs.min() / xs.min(|x| ...) are query aggregates;
            // e.min(other) is the scalar expression method.
            matches!(
                self.toks.get(self.pos + 3),
                Some(Token::RParen) | Some(Token::Pipe)
            ) || matches!(
                (self.toks.get(self.pos + 3), self.toks.get(self.pos + 4)),
                (Some(Token::Ident(_)), Some(Token::FatArrow))
            )
        } else {
            true
        }
    }

    fn parse_primary_query(&mut self) -> Result<QueryExpr, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == "from" => self.parse_comprehension(),
            Some(Token::Ident(s)) if s == "range" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let start = self.parse_int()?;
                self.expect(&Token::Comma)?;
                let count = self.parse_int()?;
                self.expect(&Token::RParen)?;
                if count < 0 {
                    return Err(self.error("range count must be non-negative"));
                }
                Ok(QueryExpr::Source(SourceRef::Range {
                    start,
                    count: count as usize,
                }))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                Ok(q)
            }
            Some(Token::Ident(_)) => {
                // A source reference: a bound variable is a sequence
                // expression; anything else names a context source.
                let save = self.pos;
                let e = self.parse_expr()?;
                match &e {
                    Expr::Var(name) if !self.bound.contains(name) => {
                        Ok(QueryExpr::Source(SourceRef::Named(name.clone())))
                    }
                    _ => {
                        let _ = save;
                        Ok(QueryExpr::Source(SourceRef::Expr(e)))
                    }
                }
            }
            other => Err(self.error(format!("expected a query, found {other:?}"))),
        }
    }

    fn parse_binder(&mut self) -> Result<(String, Option<Ty>), ParseError> {
        let name = self.expect_ident()?;
        let ty = if matches!(self.peek(), Some(Token::Colon)) {
            self.pos += 1;
            Some(self.parse_ty()?)
        } else {
            None
        };
        Ok((name, ty))
    }

    fn parse_ty(&mut self) -> Result<Ty, ParseError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "f64" => Ok(Ty::F64),
            "i64" => Ok(Ty::I64),
            "bool" => Ok(Ty::Bool),
            "row" => Ok(Ty::Row),
            other => Err(self.error(format!("unknown element type `{other}`"))),
        }
    }

    /// `from x[: ty] in src <clauses> (select e | group e by k)`.
    fn parse_comprehension(&mut self) -> Result<QueryExpr, ParseError> {
        self.expect(&Token::Ident("from".into()))?;
        let (binder, ty) = self.parse_binder()?;
        self.expect(&Token::Ident("in".into()))?;
        let src = self.parse_primary_query()?;
        if let QueryExpr::Source(SourceRef::Named(name)) = &src {
            self.binders.record(name, ty);
        }
        self.bound.push(binder.clone());
        let result = self.parse_comprehension_rest(src, &binder);
        self.bound.pop();
        result
    }

    /// Clauses after a binder is in scope, applied to `chain`.
    fn parse_comprehension_rest(
        &mut self,
        mut chain: QueryExpr,
        binder: &str,
    ) -> Result<QueryExpr, ParseError> {
        loop {
            if self.eat_keyword("where") {
                let p = self.parse_expr()?;
                chain = QueryExpr::Where {
                    input: Box::new(chain),
                    p: QFn::expr(binder, p),
                };
            } else if self.at_keyword("from") {
                // A second generator: the rest of the comprehension
                // becomes a nested query under SelectMany (the C#
                // desugaring of multiple `from` clauses).
                self.pos += 1;
                let (inner_binder, ty) = self.parse_binder()?;
                self.expect(&Token::Ident("in".into()))?;
                let src = self.parse_primary_query()?;
                if let QueryExpr::Source(SourceRef::Named(name)) = &src {
                    self.binders.record(name, ty);
                }
                self.bound.push(inner_binder.clone());
                let nested = self.parse_comprehension_rest(src, &inner_binder);
                self.bound.pop();
                return Ok(QueryExpr::SelectMany {
                    input: Box::new(chain),
                    f: QFn {
                        param: binder.to_string(),
                        body: QBody::Query(Box::new(nested?)),
                    },
                });
            } else if self.eat_keyword("orderby") {
                let key = self.parse_expr()?;
                let descending = self.eat_keyword("descending");
                let _ = self.eat_keyword("ascending");
                chain = QueryExpr::OrderBy {
                    input: Box::new(chain),
                    key: QFn::expr(binder, key),
                    descending,
                };
            } else if self.eat_keyword("select") {
                let e = self.parse_lambda_body_with(binder)?;
                // `select x` over the binder itself is the identity.
                if let QBody::Expr(Expr::Var(v)) = &e {
                    if v == binder {
                        return Ok(chain);
                    }
                }
                return Ok(QueryExpr::Select {
                    input: Box::new(chain),
                    f: QFn {
                        param: binder.to_string(),
                        body: e,
                    },
                });
            } else if self.eat_keyword("group") {
                let elem = self.parse_expr()?;
                self.expect(&Token::Ident("by".into()))?;
                let key = self.parse_expr()?;
                let elem = if elem == Expr::var(binder) {
                    None
                } else {
                    Some(QFn::expr(binder, elem))
                };
                return Ok(QueryExpr::GroupBy {
                    input: Box::new(chain),
                    key: QFn::expr(binder, key),
                    elem,
                    result: None,
                });
            } else {
                return Err(self.error(format!(
                    "expected a query clause, found {:?}",
                    self.peek()
                )));
            }
        }
    }

    /// A lambda body that may itself be a query (nested queries, §5).
    fn parse_lambda_body_with(&mut self, _binder: &str) -> Result<QBody, ParseError> {
        self.parse_qbody()
    }

    fn looks_like_query(&self) -> bool {
        match self.peek() {
            Some(Token::Ident(s)) if s == "from" || s == "range" => true,
            Some(Token::LParen) => {
                matches!(self.peek2(), Some(Token::Ident(s)) if s == "from")
            }
            Some(Token::Ident(_)) => {
                // ident.method( ... where method is a query operator.
                if let (Some(Token::Dot), Some(Token::Ident(m))) =
                    (self.peek2(), self.toks.get(self.pos + 2))
                {
                    matches!(self.toks.get(self.pos + 3), Some(Token::LParen))
                        && is_query_method(m)
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn parse_qbody(&mut self) -> Result<QBody, ParseError> {
        if self.looks_like_query() {
            let save = self.pos;
            match self.parse_query() {
                // An expression source with no operators is just an
                // expression (e.g. `x.min(3.0) * 2.0` probed as a query):
                // fall through to the expression parse.
                Ok(QueryExpr::Source(SourceRef::Expr(_))) => self.pos = save,
                Ok(q) => return Ok(QBody::Query(Box::new(q))),
                Err(_) => self.pos = save,
            }
        }
        let e = self.parse_expr()?;
        // `kv.1.sum()`: an expression source followed by query methods.
        if self.at_query_method_dot() {
            let src = match &e {
                Expr::Var(name) if !self.bound.contains(name) => {
                    QueryExpr::Source(SourceRef::Named(name.clone()))
                }
                _ => QueryExpr::Source(SourceRef::Expr(e)),
            };
            let q = self.parse_method_suffixes(src)?;
            return Ok(QBody::Query(Box::new(q)));
        }
        Ok(QBody::Expr(e))
    }

    fn parse_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Token::Int(x)) => Ok(x),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(x)) => Ok(-x),
                other => Err(self.error(format!("expected integer, found {other:?}"))),
            },
            other => Err(self.error(format!("expected integer, found {other:?}"))),
        }
    }

    /// `|x| body` or `x => body`. Returns the parameter, an optional
    /// type annotation (`|x: f64| ...`), and the body.
    fn parse_lambda(&mut self) -> Result<(String, Option<Ty>, QBody), ParseError> {
        match self.peek() {
            Some(Token::Pipe) => {
                self.pos += 1;
                let (param, ty) = self.parse_binder()?;
                self.expect(&Token::Pipe)?;
                self.bound.push(param.clone());
                let body = self.parse_qbody();
                self.bound.pop();
                Ok((param, ty, body?))
            }
            Some(Token::Ident(_)) if matches!(self.peek2(), Some(Token::FatArrow)) => {
                let param = self.expect_ident()?;
                self.expect(&Token::FatArrow)?;
                self.bound.push(param.clone());
                let body = self.parse_qbody();
                self.bound.pop();
                Ok((param, None, body?))
            }
            other => Err(self.error(format!("expected a lambda, found {other:?}"))),
        }
    }

    /// The named source of a chain of element-type-preserving operators,
    /// if any: a lambda annotation on such a chain also types the source.
    fn preserving_source(q: &QueryExpr) -> Option<&String> {
        match q {
            QueryExpr::Source(SourceRef::Named(n)) => Some(n),
            QueryExpr::Where { input, .. }
            | QueryExpr::Take { input, .. }
            | QueryExpr::Skip { input, .. }
            | QueryExpr::TakeWhile { input, .. }
            | QueryExpr::SkipWhile { input, .. }
            | QueryExpr::OrderBy { input, .. }
            | QueryExpr::Distinct { input }
            | QueryExpr::ToVec { input } => Self::preserving_source(input),
            _ => None,
        }
    }

    fn parse_lambda2(&mut self) -> Result<QFn2, ParseError> {
        self.expect(&Token::Pipe)?;
        let (a, _) = self.parse_binder()?;
        self.expect(&Token::Comma)?;
        let (b, _) = self.parse_binder()?;
        self.expect(&Token::Pipe)?;
        self.bound.push(a.clone());
        self.bound.push(b.clone());
        let body = self.parse_expr();
        self.bound.pop();
        self.bound.pop();
        Ok(QFn2::new(a, b, body?))
    }

    fn lambda_expr(&mut self, method: &str) -> Result<(String, Option<Ty>, Expr), ParseError> {
        let (param, ty, body) = self.parse_lambda()?;
        match body {
            QBody::Expr(e) => Ok((param, ty, e)),
            QBody::Query(_) => Err(self.error(format!(
                "`{method}` does not accept a query-bodied lambda"
            ))),
        }
    }

    fn record_annotation(&mut self, input: &QueryExpr, ty: &Option<Ty>) {
        if let (Some(name), Some(ty)) = (Self::preserving_source(input), ty) {
            let name = name.clone();
            self.binders.record(&name, Some(ty.clone()));
        }
    }

    fn parse_method(&mut self, input: QueryExpr, method: &str) -> Result<QueryExpr, ParseError> {
        self.expect(&Token::LParen)?;
        let q = Query::from_expr(input);
        let input_snapshot = q.as_raw().clone();
        let out = match normalize_method(method).as_str() {
            "select" => {
                if let Some(grouped) = self.try_group_result_select(&input_snapshot)? {
                    self.expect(&Token::RParen)?;
                    return Ok(grouped);
                }
                let (param, ty, body) = self.parse_lambda()?;
                self.record_annotation(&input_snapshot, &ty);
                match body {
                    QBody::Expr(e) => q.select(e, param),
                    QBody::Query(sub) => q.select_query(Query::from_expr(*sub), param),
                }
            }
            "where" => {
                let (param, ty, body) = self.parse_lambda()?;
                self.record_annotation(&input_snapshot, &ty);
                match body {
                    QBody::Expr(e) => q.where_(e, param),
                    QBody::Query(sub) => Query::from_expr(QueryExpr::Where {
                        input: Box::new(q.build_raw()),
                        p: QFn {
                            param,
                            body: QBody::Query(sub),
                        },
                    }),
                }
            }
            "selectmany" => {
                let (param, ty, body) = self.parse_lambda()?;
                self.record_annotation(&input_snapshot, &ty);
                match body {
                    QBody::Query(sub) => q.select_many(Query::from_expr(*sub), param),
                    QBody::Expr(e) => q.select_many_expr(e, param),
                }
            }
            "take" => {
                let n = self.parse_int()?;
                q.take(n.max(0) as usize)
            }
            "skip" => {
                let n = self.parse_int()?;
                q.skip(n.max(0) as usize)
            }
            "takewhile" => {
                let (param, ty, e) = self.lambda_expr(method)?;
                self.record_annotation(&input_snapshot, &ty);
                q.take_while(e, param)
            }
            "skipwhile" => {
                let (param, ty, e) = self.lambda_expr(method)?;
                self.record_annotation(&input_snapshot, &ty);
                q.skip_while(e, param)
            }
            "orderby" => {
                let (param, ty, e) = self.lambda_expr(method)?;
                self.record_annotation(&input_snapshot, &ty);
                q.order_by(e, param)
            }
            "orderbydescending" => {
                let (param, ty, e) = self.lambda_expr(method)?;
                self.record_annotation(&input_snapshot, &ty);
                q.order_by_desc(e, param)
            }
            "distinct" => q.distinct(),
            "toarray" | "tovec" | "tolist" => q.to_vec(),
            "groupby" => {
                let (param, ty, key) = self.lambda_expr(method)?;
                self.record_annotation(&input_snapshot, &ty);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    let (p2, _, elem) = self.lambda_expr(method)?;
                    let elem = steno_expr::subst::rename(&elem, &p2, &param);
                    q.group_by_elem(key, elem, param)
                } else {
                    q.group_by(key, param)
                }
            }
            "sum" => self.opt_selector(q, method)?.sum(),
            "min" => self.opt_selector(q, method)?.min(),
            "max" => self.opt_selector(q, method)?.max(),
            "average" => self.opt_selector(q, method)?.average(),
            "count" => {
                if matches!(self.peek(), Some(Token::RParen)) {
                    q.count()
                } else {
                    let (param, ty, e) = self.lambda_expr(method)?;
                    self.record_annotation(&input_snapshot, &ty);
                    q.count_by(e, param)
                }
            }
            "any" => {
                if matches!(self.peek(), Some(Token::RParen)) {
                    q.any()
                } else {
                    let (param, ty, e) = self.lambda_expr(method)?;
                    self.record_annotation(&input_snapshot, &ty);
                    q.any_by(e, param)
                }
            }
            "all" => {
                let (param, ty, e) = self.lambda_expr(method)?;
                self.record_annotation(&input_snapshot, &ty);
                q.all_by(e, param)
            }
            "first" | "firstordefault" => q.first(),
            "join" => {
                let inner = self.parse_primary_query()?;
                self.expect(&Token::Comma)?;
                let (op, _, ok) = self.lambda_expr(method)?;
                self.expect(&Token::Comma)?;
                let (ip, _, ik) = self.lambda_expr(method)?;
                self.expect(&Token::Comma)?;
                let r = self.parse_lambda2()?;
                Query::from_expr(QueryExpr::Join {
                    input: Box::new(q.build_raw()),
                    inner: Box::new(inner),
                    outer_key: QFn::expr(op, ok),
                    inner_key: QFn::expr(ip, ik),
                    result: r,
                })
            }
            "aggregate" => {
                let seed = self.parse_expr()?;
                self.expect(&Token::Comma)?;
                let f = self.parse_lambda2()?;
                Query::from_expr(QueryExpr::Aggregate {
                    input: Box::new(q.build_raw()),
                    seed,
                    func: f,
                    combine: None,
                })
            }
            other => return Err(self.error(format!("unknown query method `{other}`"))),
        };
        self.expect(&Token::RParen)?;
        Ok(out.build_raw())
    }

    fn opt_selector(&mut self, q: Query, method: &str) -> Result<Query, ParseError> {
        if matches!(self.peek(), Some(Token::RParen)) {
            Ok(q)
        } else {
            let input_snapshot = q.as_raw().clone();
            let (param, ty, e) = self.lambda_expr(method)?;
            self.record_annotation(&input_snapshot, &ty);
            Ok(q.select(e, param))
        }
    }

    /// Recognizes `groupBy(key).select(|kv| (<key expr>, <agg over kv.1>))`
    /// — the aggregating result-selector overload of §4.3 — and rewrites
    /// it into `GroupBy` with a [`GroupResult`]. Returns `Ok(None)` (with
    /// the position unchanged) when the lambda is not of that shape.
    fn try_group_result_select(
        &mut self,
        input: &QueryExpr,
    ) -> Result<Option<QueryExpr>, ParseError> {
        if !matches!(input, QueryExpr::GroupBy { result: None, .. }) {
            return Ok(None);
        }
        let save = self.pos;
        let attempt = (|| -> Result<Option<QueryExpr>, ParseError> {
            // |kv| ( key_expr , agg_query )
            let param = match self.peek() {
                Some(Token::Pipe) => {
                    self.pos += 1;
                    let (param, _) = self.parse_binder()?;
                    self.expect(&Token::Pipe)?;
                    param
                }
                Some(Token::Ident(_)) if matches!(self.peek2(), Some(Token::FatArrow)) => {
                    let param = self.expect_ident()?;
                    self.expect(&Token::FatArrow)?;
                    param
                }
                _ => return Ok(None),
            };
            if !matches!(self.peek(), Some(Token::LParen)) {
                return Ok(None);
            }
            self.pos += 1;
            self.bound.push(param.clone());
            let first = self.parse_expr()?;
            if !matches!(self.peek(), Some(Token::Comma)) {
                self.bound.pop();
                return Ok(None);
            }
            self.pos += 1;
            let second = self.parse_qbody()?;
            self.bound.pop();
            self.expect(&Token::RParen)?;
            let QBody::Query(agg_query) = second else {
                return Ok(None);
            };
            // Rewrite: kv.0 → __k in the result; source kv.1 → __g.
            let Some(result_key) = rewrite_key_projection(&first, &param, "__k") else {
                return Ok(None);
            };
            let Some(rebased) = rebase_group_source(&agg_query, &param, "__g") else {
                return Ok(None);
            };
            let QueryExpr::GroupBy {
                input: gi,
                key,
                elem,
                result: None,
            } = input.clone()
            else {
                unreachable!("checked above");
            };
            Ok(Some(QueryExpr::GroupBy {
                input: gi,
                key,
                elem,
                result: Some(steno_query::GroupResult {
                    key_param: "__k".into(),
                    group_param: "__g".into(),
                    agg_query: Box::new(rebased),
                    agg_param: "__a".into(),
                    result: Expr::mk_pair(result_key, Expr::var("__a")),
                }),
            }))
        })();
        match attempt {
            Ok(Some(q)) => Ok(Some(q)),
            Ok(None) => {
                self.pos = save;
                Ok(None)
            }
            Err(_) => {
                self.pos = save;
                Ok(None)
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing).
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.pos += 1;
            let rhs = self.parse_cmp()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::NotEq) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(-self.parse_unary()?)
            }
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(self.parse_unary()?.not())
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    // Query operators are handled one level up: stop the
                    // expression here so `xs.where(...)` and `kv.1.sum()`
                    // hand the method chain back to the query parser.
                    if self.at_query_method_dot() {
                        return Ok(e);
                    }
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Int(i)) => {
                            if i != 0 && i != 1 {
                                return Err(self.error("pair projection must be .0 or .1"));
                            }
                            e = e.field(i as usize);
                        }
                        Some(Token::Ident(m)) => {
                            self.expect(&Token::LParen)?;
                            e = match m.as_str() {
                                "sqrt" => {
                                    self.expect(&Token::RParen)?;
                                    e.sqrt()
                                }
                                "floor" => {
                                    self.expect(&Token::RParen)?;
                                    e.floor()
                                }
                                "abs" => {
                                    self.expect(&Token::RParen)?;
                                    e.abs()
                                }
                                "len" => {
                                    self.expect(&Token::RParen)?;
                                    e.row_len()
                                }
                                "min" => {
                                    let rhs = self.parse_expr()?;
                                    self.expect(&Token::RParen)?;
                                    e.min(rhs)
                                }
                                "max" => {
                                    let rhs = self.parse_expr()?;
                                    self.expect(&Token::RParen)?;
                                    e.max(rhs)
                                }
                                other => {
                                    return Err(self.error(format!(
                                        "unknown expression method `{other}`"
                                    )))
                                }
                            };
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected projection or method after `.`, found {other:?}"
                            )))
                        }
                    }
                }
                Some(Token::LBracket) => {
                    self.pos += 1;
                    let idx = self.parse_expr()?;
                    self.expect(&Token::RBracket)?;
                    e = e.row_index(idx);
                }
                Some(Token::Ident(s)) if s == "as" => {
                    self.pos += 1;
                    let ty = self.parse_ty()?;
                    e = e.cast(ty);
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(x)) => Ok(Expr::liti(x)),
            Some(Token::Float(x)) => Ok(Expr::litf(x)),
            Some(Token::Ident(s)) if s == "true" => Ok(Expr::litb(true)),
            Some(Token::Ident(s)) if s == "false" => Ok(Expr::litb(false)),
            Some(Token::Ident(s)) if s == "if" => {
                // if c { t } else { e } is not in the surface grammar;
                // use select-style conditionals via udf or min/max.
                Err(self.error("conditional expressions are not supported in query text"))
            }
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    // A user-defined function call.
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), Some(Token::Comma)) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::call(name, args))
                } else {
                    Ok(Expr::var(name))
                }
            }
            Some(Token::LParen) => {
                let first = self.parse_expr()?;
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    let second = self.parse_expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::mk_pair(first, second))
                } else {
                    self.expect(&Token::RParen)?;
                    Ok(first)
                }
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// Rewrites every `param.0` to `key_var`, failing when `param` is used
/// any other way.
fn rewrite_key_projection(e: &Expr, param: &str, key_var: &str) -> Option<Expr> {
    match e {
        Expr::Field(inner, 0) if **inner == Expr::Var(param.to_string()) => {
            Some(Expr::var(key_var))
        }
        Expr::Var(v) if v == param => None,
        Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_) => Some(e.clone()),
        Expr::Bin(op, a, b) => Some(Expr::bin(
            *op,
            rewrite_key_projection(a, param, key_var)?,
            rewrite_key_projection(b, param, key_var)?,
        )),
        Expr::Un(op, a) => Some(Expr::un(*op, rewrite_key_projection(a, param, key_var)?)),
        Expr::MkPair(a, b) => Some(Expr::mk_pair(
            rewrite_key_projection(a, param, key_var)?,
            rewrite_key_projection(b, param, key_var)?,
        )),
        Expr::Cast(ty, a) => Some(Expr::Cast(
            ty.clone(),
            Box::new(rewrite_key_projection(a, param, key_var)?),
        )),
        _ => None,
    }
}

/// Rewrites the root source `param.1` of a group-aggregation query to the
/// variable `group_var`, failing when the query references `param` in any
/// other position.
fn rebase_group_source(q: &QueryExpr, param: &str, group_var: &str) -> Option<QueryExpr> {
    match q {
        QueryExpr::Source(SourceRef::Expr(e)) => {
            if *e == Expr::var(param).field(1) {
                Some(QueryExpr::Source(SourceRef::Expr(Expr::var(group_var))))
            } else {
                None
            }
        }
        QueryExpr::Source(_) => None,
        other => {
            // Rebuild with the input rewritten; operator bodies must not
            // reference the pair parameter.
            let input = other.input()?;
            let rebased = rebase_group_source(input, param, group_var)?;
            let mut clone = other.clone();
            set_input(&mut clone, rebased);
            if format!("{clone}").contains(&format!("{param}.")) {
                return None;
            }
            Some(clone)
        }
    }
}

fn set_input(q: &mut QueryExpr, new_input: QueryExpr) {
    match q {
        QueryExpr::Source(_) => unreachable!("sources have no input"),
        QueryExpr::Select { input, .. }
        | QueryExpr::Where { input, .. }
        | QueryExpr::SelectMany { input, .. }
        | QueryExpr::Take { input, .. }
        | QueryExpr::Skip { input, .. }
        | QueryExpr::TakeWhile { input, .. }
        | QueryExpr::SkipWhile { input, .. }
        | QueryExpr::GroupBy { input, .. }
        | QueryExpr::OrderBy { input, .. }
        | QueryExpr::Distinct { input }
        | QueryExpr::ToVec { input }
        | QueryExpr::Concat { input, .. }
        | QueryExpr::Join { input, .. }
        | QueryExpr::Aggregate { input, .. }
        | QueryExpr::Agg { input, .. } => **input = new_input,
    }
}

fn normalize_method(m: &str) -> String {
    m.to_ascii_lowercase().replace('_', "")
}

fn is_query_method(m: &str) -> bool {
    matches!(
        normalize_method(m).as_str(),
        "select"
            | "where"
            | "selectmany"
            | "take"
            | "skip"
            | "takewhile"
            | "skipwhile"
            | "orderby"
            | "orderbydescending"
            | "distinct"
            | "toarray"
            | "tovec"
            | "tolist"
            | "groupby"
            | "sum"
            | "min"
            | "max"
            | "count"
            | "average"
            | "any"
            | "all"
            | "first"
            | "firstordefault"
            | "aggregate"
            | "join"
    )
}

/// Extension used internally: `Query::build` canonicalizes, but the
/// parser composes raw ASTs and canonicalizes once at the end.
trait BuildRaw {
    fn build_raw(self) -> QueryExpr;
}

impl BuildRaw for Query {
    fn build_raw(self) -> QueryExpr {
        self.as_raw().clone()
    }
}

/// Parses a complete query (comprehension or method chain), returning the
/// canonicalized AST and any binder-declared source element types.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input or trailing tokens.
///
/// # Example
///
/// ```
/// let (q, _) = steno_syntax::parse_query(
///     "(from x in xs where x % 2 == 0 select x * x).sum()",
/// ).unwrap();
/// assert_eq!(
///     q.to_string(),
///     "xs.Where(|x| ((x % 2) == 0)).Select(|x| (x * x)).Sum()"
/// );
/// ```
pub fn parse_query(text: &str) -> Result<(QueryExpr, Binders), ParseError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        bound: Vec::new(),
        binders: Binders::default(),
    };
    let q = p.parse_query()?;
    if p.pos != p.toks.len() {
        return Err(p.error(format!("unexpected trailing tokens: {:?}", p.peek())));
    }
    Ok((q.canonicalize(), p.binders))
}

/// Parses a standalone expression.
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input or trailing tokens.
pub fn parse_expr(text: &str) -> Result<Expr, ParseError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        bound: Vec::new(),
        binders: Binders::default(),
    };
    let e = p.parse_expr()?;
    if p.pos != p.toks.len() {
        return Err(p.error(format!("unexpected trailing tokens: {:?}", p.peek())));
    }
    Ok(e)
}

// Silence an unused-import warning for UnOp, used only through methods.
const _: Option<UnOp> = None;

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str) -> String {
        parse_query(text).unwrap().0.to_string()
    }

    #[test]
    fn running_example_desugars_like_figure_3() {
        assert_eq!(
            q("from x in xs where x % 2 == 0 select x * x"),
            "xs.Where(|x| ((x % 2) == 0)).Select(|x| (x * x))"
        );
    }

    #[test]
    fn identity_select_is_dropped() {
        assert_eq!(q("from x in xs select x"), "xs");
        assert_eq!(q("(from x in xs select x).sum()"), "xs.Sum()");
    }

    #[test]
    fn method_chain_syntax() {
        assert_eq!(
            q("xs.where(|x| x > 0.0).select(|x| x * 2.0).sum()"),
            "xs.Where(|x| (x > 0.0)).Select(|x| (x * 2.0)).Sum()"
        );
        assert_eq!(
            q("xs.select(x => x + 1.0).take(5)"),
            "xs.Select(|x| (x + 1.0)).Take(5)"
        );
    }

    #[test]
    fn aggregate_suffix_on_parenthesized_comprehension() {
        assert_eq!(
            q("(from x in xs select x * x).sum()"),
            "xs.Select(|x| (x * x)).Sum()"
        );
        assert_eq!(q("(from x in xs select x).count()"), "xs.Count()");
    }

    #[test]
    fn multiple_generators_become_select_many() {
        // The triple Cartesian product of §5.
        assert_eq!(
            q("(from x in xs from y in ys from z in zs select f(x, y, z)).sum()"),
            "xs.SelectMany(|x| ys.SelectMany(|y| zs.Select(|z| f(x, y, z)))).Sum()"
        );
    }

    #[test]
    fn bound_variables_are_sequence_sources() {
        // `g` is bound by the outer lambda: it is an expression source,
        // not a named collection.
        let (ast, _) = parse_query("xs.groupBy(|x| x % 3).select(|kv| kv.1.sum())").unwrap();
        assert_eq!(
            ast.to_string(),
            "xs.GroupBy(|x| (x % 3)).Select(|kv| kv.1.Sum())"
        );
    }

    #[test]
    fn group_clause() {
        assert_eq!(
            q("from x in xs group x by x % 3"),
            "xs.GroupBy(|x| (x % 3))"
        );
        assert_eq!(
            q("from x in xs group x * x by x % 3"),
            "xs.GroupBy(|x| (x % 3), |x| (x * x))"
        );
    }

    #[test]
    fn orderby_clause() {
        assert_eq!(
            q("from x in xs orderby x descending select x + 1.0"),
            "xs.OrderByDescending(|x| x).Select(|x| (x + 1.0))"
        );
    }

    #[test]
    fn binder_annotations_are_recorded() {
        let (_, binders) =
            parse_query("(from x: f64 in xs from y: f64 in ys select x * y).sum()").unwrap();
        assert_eq!(
            binders.source_types,
            vec![("xs".to_string(), Ty::F64), ("ys".to_string(), Ty::F64)]
        );
    }

    #[test]
    fn shorthand_aggregates_canonicalize() {
        assert_eq!(
            q("xs.sum(|x| x * x)"),
            "xs.Select(|x| (x * x)).Sum()"
        );
        assert_eq!(
            q("xs.any(|x| x > 3.0)"),
            "xs.Where(|x| (x > 3.0)).Any()"
        );
    }

    #[test]
    fn range_source_and_aggregate_method() {
        assert_eq!(
            q("range(1, 10).aggregate(1, |a, x| a * x)"),
            "Range(1, 10).Aggregate(1, |a, x| (a * x))"
        );
    }

    #[test]
    fn expressions_parse_with_precedence() {
        assert_eq!(parse_expr("1 + 2 * 3").unwrap().to_string(), "(1 + (2 * 3))");
        assert_eq!(
            parse_expr("-x * y").unwrap().to_string(),
            "((-x) * y)"
        );
        assert_eq!(
            parse_expr("a < b && c != d || !e").unwrap().to_string(),
            "(((a < b) && (c != d)) || (!e))"
        );
        assert_eq!(
            parse_expr("p[0] * p.len() as f64").unwrap().to_string(),
            "(p[0] * (p.len() as f64))"
        );
        assert_eq!(parse_expr("(a, b + 1)").unwrap().to_string(), "(a, (b + 1))");
        assert_eq!(
            parse_expr("x.min(3.0).sqrt()").unwrap().to_string(),
            "x.min(3.0).sqrt()"
        );
        assert_eq!(parse_expr("kv.0").unwrap().to_string(), "kv.0");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("from x xs select x").is_err());
        assert!(parse_query("xs.frobnicate()").is_err());
        assert!(parse_query("from x in xs").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_query("xs.sum() extra").is_err());
        assert!(parse_expr("kv.2").is_err());
    }

    #[test]
    fn nested_query_in_select_lambda() {
        let (ast, _) =
            parse_query("xs.select(|x| ys.where(|y| y > x).count())").unwrap();
        assert_eq!(
            ast.to_string(),
            "xs.Select(|x| ys.Where(|y| (y > x)).Count())"
        );
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    fn min_in_selector_body() {
        let r = parse_query("from x in xs select x.min(3.0) * 2.0");
        match r {
            Ok((q, _)) => println!("parsed: {q}"),
            Err(e) => panic!("parse error: {e}"),
        }
    }
}
