/root/repo/target/debug/deps/steno_repro-aa6037d095a66bba.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-aa6037d095a66bba.rlib: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-aa6037d095a66bba.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
