//! Property-style integration tests over the whole stack: randomly
//! composed query text is round-tripped through the parser and executed
//! by both the engine (optimized path, with its cache) and the
//! unoptimized interpreter.
//!
//! The offline build cannot pull `proptest`, so the random cases come
//! from a seeded [`SplitMix64`]: every run explores the same cases,
//! which also makes failures trivially reproducible.

use steno::prelude::*;
use steno_linq::interp;
use steno_quil::grammar::{Fsm, Pda};
use steno_repro::prng::SplitMix64;

const CLAUSES: &[&str] = &[
    "where x > 0.0",
    "where x % 2.0 == 0.0",
    "where x < 40.0 && x > -40.0",
    "orderby x",
    "orderby x descending",
];

const TERMINALS: &[&str] = &[
    "sum()",
    "count()",
    "min()",
    "max()",
    "average()",
    "take(7).count()",
    "to_array().first()",
];

const SELECTORS: &[&str] = &["x", "x * x", "x + 1.0", "x.abs()", "x.min(3.0) * 2.0"];

fn random_data(rng: &mut SplitMix64, max_len: usize) -> Vec<f64> {
    let len = rng.index(max_len + 1);
    (0..len).map(|_| rng.range_f64(-50.0, 50.0)).collect()
}

fn random_clauses(rng: &mut SplitMix64, max: usize) -> Vec<&'static str> {
    let n = rng.index(max + 1);
    (0..n).map(|_| CLAUSES[rng.index(CLAUSES.len())]).collect()
}

#[test]
fn random_text_queries_agree() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    for case in 0..48 {
        let data = random_data(&mut rng, 39);
        let clauses = random_clauses(&mut rng, 2);
        let sel = SELECTORS[rng.index(SELECTORS.len())];
        let term = TERMINALS[rng.index(TERMINALS.len())];
        let text = format!("(from x in xs {} select {sel}).{term}", clauses.join(" "));
        let (q, _) = steno::syntax::parse_query(&text).expect("parse");
        let ctx = DataContext::new().with_source("xs", data);
        let expected = interp::execute(&q, &ctx, &udfs).expect("interp");
        let got = engine.execute(&q, &ctx, &udfs).expect("engine");
        assert_eq!(
            expected.key(),
            got.key(),
            "case {case}, query: {text}"
        );
    }
}

/// Every lowered chain satisfies the QUIL grammar — flat sentences pass
/// the Fig. 4 FSM; nested sentences pass the §5.1 PDA.
#[test]
fn lowered_chains_satisfy_the_grammar() {
    let mut rng = SplitMix64::new(0xBEEF);
    let udfs = UdfRegistry::new();
    for case in 0..48 {
        let nested = rng.next_u64() & 1 == 0;
        let term = TERMINALS[rng.index(TERMINALS.len())];
        let text = if nested {
            format!("(from x in xs from y in ys select x * y).{term}")
        } else {
            let clauses = random_clauses(&mut rng, 2);
            let sel = SELECTORS[rng.index(SELECTORS.len())];
            format!("(from x in xs {} select {sel}).{term}", clauses.join(" "))
        };
        let (q, _) = steno::syntax::parse_query(&text).expect("parse");
        let srcs = steno::query::typing::SourceTypes::new()
            .with("xs", Ty::F64)
            .with("ys", Ty::F64);
        let chain = steno::quil::lower(&q, &srcs, &udfs).expect("lower");
        assert!(
            Pda::accepts(&chain.tokens()),
            "case {case}, tokens of {chain}"
        );
        assert!(
            Fsm::accepts(&chain.symbols()),
            "case {case}, symbols of {chain}"
        );
    }
}

/// Parsing is a left inverse of printing for the method-chain form.
#[test]
fn parse_print_round_trip() {
    let mut rng = SplitMix64::new(0xF00D);
    for case in 0..48 {
        let clauses = random_clauses(&mut rng, 1);
        let sel = SELECTORS[rng.index(SELECTORS.len())];
        let text = format!("from x in xs {} select {sel}", clauses.join(" "));
        let (q1, _) = steno::syntax::parse_query(&text).expect("parse 1");
        let printed = q1.to_string();
        let (q2, _) = steno::syntax::parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(q1, q2, "case {case}, printed: {printed}");
    }
}
