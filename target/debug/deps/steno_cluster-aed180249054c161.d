/root/repo/target/debug/deps/steno_cluster-aed180249054c161.d: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs

/root/repo/target/debug/deps/steno_cluster-aed180249054c161: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs

crates/steno-cluster/src/lib.rs:
crates/steno-cluster/src/chain_interp.rs:
crates/steno-cluster/src/exec.rs:
crates/steno-cluster/src/fault.rs:
crates/steno-cluster/src/job.rs:
crates/steno-cluster/src/partition.rs:
crates/steno-cluster/src/retry.rs:
crates/steno-cluster/src/sync.rs:
