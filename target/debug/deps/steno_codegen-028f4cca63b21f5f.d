/root/repo/target/debug/deps/steno_codegen-028f4cca63b21f5f.d: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/debug/deps/libsteno_codegen-028f4cca63b21f5f.rlib: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/debug/deps/libsteno_codegen-028f4cca63b21f5f.rmeta: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

crates/steno-codegen/src/lib.rs:
crates/steno-codegen/src/generate.rs:
crates/steno-codegen/src/imp.rs:
crates/steno-codegen/src/printer.rs:
