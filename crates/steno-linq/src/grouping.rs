//! `IGrouping<K, T>`: a key together with its elements.

use std::rc::Rc;

use crate::enumerable::Enumerable;

/// One group produced by `GroupBy`: the .NET `IGrouping<K, T>`.
///
/// Cloning shares the element storage.
#[derive(Clone, Debug)]
pub struct Grouping<K, T> {
    key: K,
    elements: Rc<Vec<T>>,
}

impl<K, T> Grouping<K, T> {
    /// Creates a grouping from a key and its elements.
    pub fn new(key: K, elements: Vec<T>) -> Grouping<K, T> {
        Grouping {
            key,
            elements: Rc::new(elements),
        }
    }

    /// The group key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// The number of elements in the group.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` when the group is empty (cannot happen for `GroupBy` output,
    /// but groupings can be built directly).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.elements.iter()
    }
}

impl<K, T: Clone + 'static> Grouping<K, T> {
    /// The group contents as a lazy [`Enumerable`] — groups are sequences,
    /// so nested queries can consume them like any other source.
    pub fn elements(&self) -> Enumerable<T> {
        let elements = Rc::clone(&self.elements);
        Enumerable::new(move || {
            Enumerable::from_rc_vec(Rc::clone(&elements)).get_enumerator()
        })
    }

    /// Copies the group contents into a vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.elements.as_ref().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_exposes_key_and_elements() {
        let g = Grouping::new(7i64, vec![1.0f64, 2.0]);
        assert_eq!(*g.key(), 7);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.to_vec(), vec![1.0, 2.0]);
        assert_eq!(g.elements().to_vec(), vec![1.0, 2.0]);
        assert_eq!(g.iter().copied().sum::<f64>(), 3.0);
    }

    #[test]
    fn grouping_elements_enumerable_is_reusable() {
        let g = Grouping::new((), vec![1i64, 2, 3]);
        let e = g.elements();
        assert_eq!(e.aggregate(0, |a, x| a + x), 6);
        assert_eq!(e.aggregate(0, |a, x| a + x), 6);
    }
}
