/root/repo/target/debug/deps/steno_syntax-81110ad1c022bbfd.d: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

/root/repo/target/debug/deps/libsteno_syntax-81110ad1c022bbfd.rlib: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

/root/repo/target/debug/deps/libsteno_syntax-81110ad1c022bbfd.rmeta: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

crates/steno-syntax/src/lib.rs:
crates/steno-syntax/src/lexer.rs:
crates/steno-syntax/src/parser.rs:
