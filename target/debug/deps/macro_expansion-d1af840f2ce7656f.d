/root/repo/target/debug/deps/macro_expansion-d1af840f2ce7656f.d: tests/macro_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_expansion-d1af840f2ce7656f.rmeta: tests/macro_expansion.rs Cargo.toml

tests/macro_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
