/root/repo/target/debug/deps/ablation_specialization-cd03127486b9a91a.d: crates/bench/benches/ablation_specialization.rs Cargo.toml

/root/repo/target/debug/deps/libablation_specialization-cd03127486b9a91a.rmeta: crates/bench/benches/ablation_specialization.rs Cargo.toml

crates/bench/benches/ablation_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
