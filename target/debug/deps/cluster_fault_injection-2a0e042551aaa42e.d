/root/repo/target/debug/deps/cluster_fault_injection-2a0e042551aaa42e.d: crates/steno-cluster/tests/cluster_fault_injection.rs

/root/repo/target/debug/deps/cluster_fault_injection-2a0e042551aaa42e: crates/steno-cluster/tests/cluster_fault_injection.rs

crates/steno-cluster/tests/cluster_fault_injection.rs:
