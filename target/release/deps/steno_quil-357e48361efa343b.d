/root/repo/target/release/deps/steno_quil-357e48361efa343b.d: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

/root/repo/target/release/deps/libsteno_quil-357e48361efa343b.rlib: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

/root/repo/target/release/deps/libsteno_quil-357e48361efa343b.rmeta: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

crates/steno-quil/src/lib.rs:
crates/steno-quil/src/grammar.rs:
crates/steno-quil/src/ir.rs:
crates/steno-quil/src/lower.rs:
crates/steno-quil/src/parallel.rs:
crates/steno-quil/src/passes.rs:
crates/steno-quil/src/substitute.rs:
