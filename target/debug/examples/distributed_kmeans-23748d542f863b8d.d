/root/repo/target/debug/examples/distributed_kmeans-23748d542f863b8d.d: examples/distributed_kmeans.rs

/root/repo/target/debug/examples/distributed_kmeans-23748d542f863b8d: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
