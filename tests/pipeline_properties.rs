//! Property-based integration tests over the whole stack: random query
//! text is round-tripped through the parser and executed by both the
//! engine (optimized path, with its cache) and the unoptimized
//! interpreter.

use proptest::prelude::*;
use steno::prelude::*;
use steno_linq::interp;
use steno_quil::grammar::{Fsm, Pda};

fn clause() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("where x > 0.0".to_string()),
        Just("where x % 2.0 == 0.0".to_string()),
        Just("where x < 40.0 && x > -40.0".to_string()),
        Just("orderby x".to_string()),
        Just("orderby x descending".to_string()),
    ]
}

fn terminal() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("sum()".to_string()),
        Just("count()".to_string()),
        Just("min()".to_string()),
        Just("max()".to_string()),
        Just("average()".to_string()),
        Just("take(7).count()".to_string()),
        Just("to_array().first()".to_string()),
    ]
}

fn selector() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("x * x".to_string()),
        Just("x + 1.0".to_string()),
        Just("x.abs()".to_string()),
        Just("x.min(3.0) * 2.0".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_text_queries_agree(
        data in prop::collection::vec(-50.0f64..50.0, 0..40),
        clauses in prop::collection::vec(clause(), 0..3),
        sel in selector(),
        term in terminal(),
    ) {
        let text = format!(
            "(from x in xs {} select {sel}).{term}",
            clauses.join(" ")
        );
        let (q, _) = steno::syntax::parse_query(&text).expect("parse");
        let ctx = DataContext::new().with_source("xs", data);
        let udfs = UdfRegistry::new();
        let engine = Steno::new();
        let expected = interp::execute(&q, &ctx, &udfs).expect("interp");
        let got = engine.execute(&q, &ctx, &udfs).expect("engine");
        prop_assert_eq!(expected.key(), got.key(), "query: {}", text);
    }

    /// Every lowered chain satisfies the QUIL grammar — flat sentences
    /// pass the Fig. 4 FSM; nested sentences pass the §5.1 PDA.
    #[test]
    fn lowered_chains_satisfy_the_grammar(
        clauses in prop::collection::vec(clause(), 0..3),
        sel in selector(),
        term in terminal(),
        nested in prop::bool::ANY,
    ) {
        let text = if nested {
            format!("(from x in xs from y in ys select x * y).{term}")
        } else {
            format!("(from x in xs {} select {sel}).{term}", clauses.join(" "))
        };
        let (q, _) = steno::syntax::parse_query(&text).expect("parse");
        let srcs = steno::query::typing::SourceTypes::new()
            .with("xs", Ty::F64)
            .with("ys", Ty::F64);
        let udfs = UdfRegistry::new();
        let chain = steno::quil::lower(&q, &srcs, &udfs).expect("lower");
        prop_assert!(Pda::accepts(&chain.tokens()), "tokens of {}", chain);
        prop_assert!(Fsm::accepts(&chain.symbols()), "symbols of {}", chain);
    }

    /// Parsing is a left inverse of printing for the method-chain form.
    #[test]
    fn parse_print_round_trip(
        clauses in prop::collection::vec(clause(), 0..2),
        sel in selector(),
    ) {
        let text = format!("from x in xs {} select {sel}", clauses.join(" "));
        let (q1, _) = steno::syntax::parse_query(&text).expect("parse 1");
        let printed = q1.to_string();
        let (q2, _) = steno::syntax::parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(q1, q2, "printed: {}", printed);
    }
}
