/root/repo/target/debug/deps/verify_corpus-03f3907435d80622.d: tests/verify_corpus.rs

/root/repo/target/debug/deps/verify_corpus-03f3907435d80622: tests/verify_corpus.rs

tests/verify_corpus.rs:
