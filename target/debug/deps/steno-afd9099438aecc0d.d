/root/repo/target/debug/deps/steno-afd9099438aecc0d.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/steno-afd9099438aecc0d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
