//! The Group workload of §7.1: a binned histogram of samples from a
//! mixture of Gaussians, exercising the GroupByAggregate specialization
//! (§4.3).
//!
//! Run with `cargo run --release --example histogram`.

use std::time::Instant;

use steno::prelude::*;
use steno::vm::query::StenoOptions;
use steno::vm::CompiledQuery;
use steno_quil::LowerOptions;

fn sample_mixture(n: usize, seed: u64) -> Vec<f64> {
    use steno_repro::prng::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let components = [(-4.0, 1.0), (0.0, 0.5), (3.0, 2.0)];
    (0..n)
        .map(|_| {
            let (mean, sd) = components[rng.index(components.len())];
            let u1: f64 = rng.next_f64().max(1e-12);
            let u2: f64 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            mean + sd * z
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2_000_000;
    let data = sample_mixture(n, 7);
    let ctx = DataContext::new().with_source("samples", data);
    let udfs = UdfRegistry::new();

    // GroupBy with an aggregating result selector: histogram counts.
    let q = Query::source("samples")
        .group_by_result(
            Expr::var("x").floor(),
            "x",
            GroupResult::keyed("bin", "g", Query::over(Expr::var("g")).count().build()),
        )
        .order_by(Expr::var("kv").field(0), "kv")
        .build();

    // Specialized plan (GroupByAggregate sink)...
    let specialized = CompiledQuery::compile(&q, (&ctx).into(), &udfs)?;
    let t = Instant::now();
    let hist = specialized.run(&ctx, &udfs)?;
    let fast = t.elapsed();

    // ...versus the naive plan (materialize every bag, then count).
    let naive = CompiledQuery::compile_tuned(
        &q,
        (&ctx).into(),
        &udfs,
        StenoOptions {
            lower: LowerOptions {
                specialize_group_aggregate: false,
            },
            ..StenoOptions::default()
        },
    )?;
    let t = Instant::now();
    let hist2 = naive.run(&ctx, &udfs)?;
    let slow = t.elapsed();
    assert_eq!(hist.key(), hist2.key());

    println!("plan with §4.3 specialization: {}", specialized.quil());
    println!("naive plan:                    {}\n", naive.quil());
    println!("histogram of {n} mixture-of-Gaussians samples:");
    for kv in hist.as_seq().unwrap() {
        let (bin, count) = kv.as_pair().unwrap();
        let c = count.as_i64().unwrap();
        let bar = "#".repeat((c as usize * 60 / n).max(usize::from(c > 0)));
        println!("{:>6} | {bar} {c}", format!("{}", bin.as_f64().unwrap()));
    }
    println!("\nspecialized sink: {fast:?}   naive group-then-reduce: {slow:?}");
    println!(
        "speedup from the GroupByAggregate specialization: {:.1}x",
        slow.as_secs_f64() / fast.as_secs_f64()
    );
    Ok(())
}
