/root/repo/target/debug/deps/vectorized_differential-39eac8beb506d074.d: crates/steno-vm/tests/vectorized_differential.rs

/root/repo/target/debug/deps/vectorized_differential-39eac8beb506d074: crates/steno-vm/tests/vectorized_differential.rs

crates/steno-vm/tests/vectorized_differential.rs:
