/root/repo/target/debug/deps/break_even-9f379479cafc1723.d: crates/bench/src/bin/break_even.rs

/root/repo/target/debug/deps/break_even-9f379479cafc1723: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
