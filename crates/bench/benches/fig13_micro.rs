//! Criterion version of Figure 13: the four §7.1 microbenchmarks through
//! LINQ, the Steno VM, and the hand loop (run the `fig13` binary for the
//! full normalized table including the macro path and compile costs).

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_linq::Enumerable;
use steno_query::{GroupResult, Query, QueryExpr};
use steno_vm::CompiledQuery;

fn run_pair(
    c: &mut Criterion,
    name: &str,
    ctx: &DataContext,
    q: &QueryExpr,
    linq: impl Fn(),
) {
    let udfs = UdfRegistry::new();
    let compiled = CompiledQuery::compile(q, ctx.into(), &udfs).unwrap();
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function("linq", |b| b.iter(&linq));
    group.bench_function("steno_vm", |b| {
        b.iter(|| std::hint::black_box(compiled.run(ctx, &udfs).unwrap()))
    });
    group.finish();
}

fn fig13(c: &mut Criterion) {
    let n = 1_000_000;
    let uniform = bench::workloads::uniform_doubles(n, 42);
    let gauss = bench::workloads::mixture_of_gaussians(n, 43);
    let x = || Expr::var("x");

    // Sum.
    let ctx = DataContext::new().with_source("xs", uniform.clone());
    let xs = Enumerable::from_vec(uniform.clone());
    run_pair(c, "fig13_sum", &ctx, &Query::source("xs").sum().build(), {
        let xs = xs.clone();
        move || {
            std::hint::black_box(xs.sum());
        }
    });

    // SumSq.
    run_pair(
        c,
        "fig13_sumsq",
        &ctx,
        &Query::source("xs").select(x() * x(), "x").sum().build(),
        {
            let xs = xs.clone();
            move || {
                std::hint::black_box(xs.select(|v| v * v).sum());
            }
        },
    );

    // Cart (scaled).
    let outer = bench::workloads::uniform_doubles(10_000, 44);
    let inner = bench::workloads::uniform_doubles(1000, 45);
    let cart_ctx = DataContext::new()
        .with_source("xs", outer.clone())
        .with_source("ys", inner.clone());
    let cart_q = Query::source("xs")
        .select_many(Query::source("ys").select(x() * Expr::var("y"), "y"), "x")
        .sum()
        .build();
    let xe = Enumerable::from_vec(outer);
    let ye = Enumerable::from_vec(inner);
    run_pair(c, "fig13_cart", &cart_ctx, &cart_q, {
        let xe = xe.clone();
        let ye = ye.clone();
        move || {
            let ye = ye.clone();
            std::hint::black_box(xe.select_many(move |v| ye.select(move |w| v * w)).sum());
        }
    });

    // Group.
    let gctx = DataContext::new().with_source("xs", gauss.clone());
    let gq = Query::source("xs")
        .group_by_result(
            x().floor(),
            "x",
            GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
        )
        .build();
    let ge = Enumerable::from_vec(gauss);
    run_pair(c, "fig13_group", &gctx, &gq, {
        let ge = ge.clone();
        move || {
            std::hint::black_box(
                ge.group_by(|v| v.floor() as i64)
                    .select(|g| (*g.key(), g.len() as i64))
                    .to_vec(),
            );
        }
    });
}

criterion_group!(benches, fig13);
criterion_main!(benches);
