/root/repo/target/debug/deps/fig_vectorized-3001ffb5a2d41f09.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/debug/deps/fig_vectorized-3001ffb5a2d41f09: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
