//! Property-style tests: every lazy operator state machine agrees with
//! the obvious eager `Vec` oracle, and the laziness contracts hold.
//!
//! The offline build cannot pull `proptest`, so the random inputs come
//! from a seeded SplitMix64 generator: each test explores a fixed set of
//! deterministic cases, which makes any failure reproducible by seed.

use steno_linq::Enumerable;

/// A tiny deterministic PRNG (SplitMix64) — inlined so the test has no
/// external dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// A vector of `0..=max_len` draws from `lo..hi`.
    fn vec(&mut self, max_len: usize, lo: i64, hi: i64) -> Vec<i64> {
        let len = self.index(max_len + 1);
        (0..len).map(|_| self.range_i64(lo, hi)).collect()
    }
}

const CASES: usize = 64;

fn en(v: &[i64]) -> Enumerable<i64> {
    Enumerable::from_vec(v.to_vec())
}

#[test]
fn select_matches_map() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let v = rng.vec(49, -100, 100);
        let got = en(&v).select(|x| x * 3 - 1).to_vec();
        let want: Vec<i64> = v.iter().map(|x| x * 3 - 1).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn where_matches_filter() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let v = rng.vec(49, -100, 100);
        let got = en(&v).where_(|x| x % 3 == 0).to_vec();
        let want: Vec<i64> = v.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn take_skip_partition_the_sequence() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let v = rng.vec(49, -100, 100);
        let n = rng.index(60);
        let head = en(&v).take(n).to_vec();
        let tail = en(&v).skip(n).to_vec();
        let mut whole = head.clone();
        whole.extend(&tail);
        assert_eq!(whole, v.clone());
        assert_eq!(head.len(), n.min(v.len()));
    }
}

#[test]
fn take_while_skip_while_partition() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let v = rng.vec(49, -100, 100);
        let pivot = rng.range_i64(-100, 100);
        let head = en(&v).take_while(move |x| x < pivot).to_vec();
        let tail = en(&v).skip_while(move |x| x < pivot).to_vec();
        let mut whole = head;
        whole.extend(&tail);
        assert_eq!(whole, v);
    }
}

#[test]
fn select_many_matches_flat_map() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let v = rng.vec(19, 0, 20);
        let got = en(&v)
            .select_many(|x| Enumerable::from_vec((0..x % 4).collect()))
            .to_vec();
        let want: Vec<i64> = v.iter().flat_map(|&x| 0..x % 4).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn aggregate_is_a_left_fold() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let v = rng.vec(29, -9, 9);
        let got = en(&v).aggregate(7, |acc, x| acc * 2 + x);
        let want = v.iter().fold(7, |acc, x| acc * 2 + x);
        assert_eq!(got, want);
    }
}

#[test]
fn order_by_matches_stable_sort() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let v = rng.vec(49, -50, 50);
        let got = en(&v).order_by(|x| *x).to_vec();
        let mut want = v.clone();
        want.sort();
        assert_eq!(got, want);
        // Descending is the reverse of ascending for totally-ordered keys
        // up to the stability of equal keys (i64 keys are their own
        // elements, so exactly the reverse).
        let desc = en(&v).order_by_desc(|x| *x).to_vec();
        let mut want_desc = v.clone();
        want_desc.sort_by(|a, b| b.cmp(a));
        assert_eq!(desc, want_desc);
    }
}

#[test]
fn distinct_keeps_first_occurrences() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let v = rng.vec(49, -10, 10);
        let got = en(&v).distinct_by(|x| *x).to_vec();
        let mut seen = std::collections::HashSet::new();
        let want: Vec<i64> = v.iter().copied().filter(|x| seen.insert(*x)).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn group_by_partitions_without_loss() {
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let v = rng.vec(59, -20, 20);
        let groups = en(&v).group_by(|x| x.rem_euclid(5)).to_vec();
        // Every element lands in exactly one group with the right key.
        let mut total = 0;
        for g in &groups {
            for x in g.iter() {
                assert_eq!(x.rem_euclid(5), *g.key());
                total += 1;
            }
        }
        assert_eq!(total, v.len());
        // Keys are unique.
        let mut keys: Vec<i64> = groups.iter().map(|g| *g.key()).collect();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len());
    }
}

#[test]
fn concat_and_zip() {
    let mut rng = Rng::new(10);
    for _ in 0..CASES {
        let a = rng.vec(19, -50, 50);
        let b = rng.vec(19, -50, 50);
        let cat = en(&a).concat(&en(&b)).to_vec();
        let mut want = a.clone();
        want.extend(&b);
        assert_eq!(cat, want);

        let zipped = en(&a).zip(&en(&b), |x, y| x + y).to_vec();
        let want: Vec<i64> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        assert_eq!(zipped, want);
    }
}

#[test]
fn join_matches_nested_loop_oracle() {
    let mut rng = Rng::new(11);
    for _ in 0..CASES {
        let a = rng.vec(14, 0, 8);
        let b = rng.vec(14, 0, 8);
        let got = en(&a)
            .join(&en(&b), |x| x % 3, |y| y % 3, |x, y| (x, y))
            .to_vec();
        let mut want = Vec::new();
        for &x in &a {
            for &y in &b {
                if x % 3 == y % 3 {
                    want.push((x, y));
                }
            }
        }
        assert_eq!(got, want);
    }
}

#[test]
fn scalar_aggregates_match_oracles() {
    let mut rng = Rng::new(12);
    for _ in 0..CASES {
        let mut v = rng.vec(38, -100, 100);
        v.push(rng.range_i64(-100, 100)); // non-empty
        assert_eq!(en(&v).sum(), v.iter().sum::<i64>());
        assert_eq!(en(&v).min(), v.iter().copied().min());
        assert_eq!(en(&v).max(), v.iter().copied().max());
        assert_eq!(en(&v).count(), v.len());
        assert_eq!(en(&v).first(), Some(v[0]));
        assert_eq!(en(&v).element_at(v.len() - 1), Some(*v.last().unwrap()));
    }
}

#[test]
fn reverse_is_involutive() {
    let mut rng = Rng::new(13);
    for _ in 0..CASES {
        let v = rng.vec(39, -100, 100);
        let twice = en(&v).reverse().reverse().to_vec();
        assert_eq!(twice, v);
    }
}

#[test]
fn enumeration_is_repeatable_after_composition() {
    // A composed query is re-enumerable from scratch (the IEnumerable
    // contract): both passes observe the same elements.
    let q = en(&[5, 3, 8, 1])
        .where_(|x| x > 2)
        .select(|x| x * 10)
        .order_by(|x| *x);
    assert_eq!(q.to_vec(), q.to_vec());
    assert_eq!(q.count(), 3);
}
