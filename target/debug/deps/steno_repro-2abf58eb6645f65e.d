/root/repo/target/debug/deps/steno_repro-2abf58eb6645f65e.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-2abf58eb6645f65e.rlib: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-2abf58eb6645f65e.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
