/root/repo/target/debug/deps/fig14-572f725ed35ca767.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-572f725ed35ca767.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
