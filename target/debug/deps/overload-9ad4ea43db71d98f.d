/root/repo/target/debug/deps/overload-9ad4ea43db71d98f.d: crates/steno-serve/tests/overload.rs

/root/repo/target/debug/deps/overload-9ad4ea43db71d98f: crates/steno-serve/tests/overload.rs

crates/steno-serve/tests/overload.rs:
