//! The §7.1 break-even model for tier choice.
//!
//! The VM has three execution tiers — batch-vectorized, fused
//! whole-tape kernels, and scalar bytecode — and historically picked
//! between them with a *static* preference order. That order is right
//! for large inputs (batch setup amortizes over many elements) and
//! wrong for small ones (a few hundred elements never pay back the
//! per-loop batch machinery). This module turns measured run facts into
//! an explicit, explainable tier recommendation.

use std::fmt;

/// Observed facts about one loop, gathered by profiled runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoopStats {
    /// Elements flowing into the loop per run (exponentially decayed
    /// mean when fed from a [`crate::PlanStats`]).
    pub elements: f64,
    /// Fraction of batch lanes surviving selection, in `[0, 1]`;
    /// `None` when the loop has no filters or no profile exists yet.
    pub density: Option<f64>,
    /// Measured wall time per element inside loop instructions
    /// (nanoseconds), from span-timed profiled runs; `None` until a
    /// profiled run has reported. When present, tier choice switches
    /// from the element-count heuristic to the measured-cost rule.
    pub ns_per_elem: Option<f64>,
}

/// The compiler-facing recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierAdvice {
    /// Large enough input: keep the default vectorize-first order.
    PreferVectorized,
    /// Batch setup will not amortize; compile straight to the scalar
    /// tier.
    PreferScalar,
}

impl fmt::Display for TierAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierAdvice::PreferVectorized => write!(f, "vectorized"),
            TierAdvice::PreferScalar => write!(f, "scalar"),
        }
    }
}

/// Below this many *batches* worth of elements, per-loop batch setup
/// (column allocation, selection vectors, kernel dispatch) dominates
/// the dense-kernel win and the scalar tier is faster end to end. Two
/// batches is the measured break-even on the bench corpus: one batch
/// never amortizes, and the gap closes quickly after that.
const MIN_BATCHES_TO_AMORTIZE: f64 = 2.0;

/// Measured-cost break-even: when a loop's *useful* measured time
/// (ns/elem × elements × selection density) is below this, per-loop
/// batch setup — column allocation, selection vectors, kernel dispatch,
/// a few µs on the bench machines — is a comparable share of the total
/// and the scalar tier wins end to end. Density weights the product
/// because a sparse selection means the scalar tier short-circuits most
/// downstream work while the batch tier still pays full lanes.
const MEASURED_BREAK_EVEN_NS: f64 = 8_000.0;

/// Advises a tier for a loop given its observed stats, returning the
/// advice plus a human-readable rationale (surfaced verbatim in
/// `EXPLAIN` as the `chosen-by:` line).
///
/// With a measured per-element time ([`LoopStats::ns_per_elem`], from
/// span-timed profiled runs) the decision weighs measured
/// ns/elem × elements × selectivity against a wall-clock break-even —
/// the rationale is prefixed `measured-cost:`. Without a measurement it
/// falls back to the §7.1 element-count heuristic.
pub fn choose_tier(stats: &LoopStats, batch: usize) -> (TierAdvice, String) {
    if let Some(npe) = stats.ns_per_elem.filter(|n| *n > 0.0) {
        if stats.elements > 0.0 {
            let density = stats.density.unwrap_or(1.0);
            let useful_ns = npe * stats.elements * density;
            let density_note = match stats.density {
                Some(d) => format!(" × density {d:.2}"),
                None => String::new(),
            };
            let (advice, cmp) = if useful_ns < MEASURED_BREAK_EVEN_NS {
                (TierAdvice::PreferScalar, '<')
            } else {
                (TierAdvice::PreferVectorized, '≥')
            };
            let why = format!(
                "measured-cost: ~{npe:.1} ns/elem × ~{:.0} elements{density_note} ≈ \
                 {:.1} µs {cmp} {:.0} µs batch break-even",
                stats.elements,
                useful_ns / 1e3,
                MEASURED_BREAK_EVEN_NS / 1e3
            );
            return (advice, why);
        }
    }
    let break_even = MIN_BATCHES_TO_AMORTIZE * batch as f64;
    if stats.elements > 0.0 && stats.elements < break_even {
        return (
            TierAdvice::PreferScalar,
            format!(
                "observed ~{:.0} elements < {:.0} break-even: batch setup would not amortize",
                stats.elements, break_even
            ),
        );
    }
    let density_note = match stats.density {
        Some(d) => format!(", density {d:.2}"),
        None => String::new(),
    };
    (
        TierAdvice::PreferVectorized,
        format!(
            "observed ~{:.0} elements ≥ {:.0} break-even{density_note}",
            stats.elements, break_even
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_prefer_scalar() {
        let (advice, why) = choose_tier(
            &LoopStats {
                elements: 100.0,
                density: None,
                ns_per_elem: None,
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferScalar);
        assert!(why.contains("100"), "{why}");
        assert!(why.contains("2048"), "{why}");
    }

    #[test]
    fn large_inputs_prefer_vectorized() {
        let (advice, why) = choose_tier(
            &LoopStats {
                elements: 1_000_000.0,
                density: Some(0.25),
                ns_per_elem: None,
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferVectorized);
        assert!(why.contains("density 0.25"), "{why}");
    }

    #[test]
    fn zero_observation_keeps_default() {
        // No profile yet: do not override the static order.
        let (advice, _) = choose_tier(&LoopStats::default(), 1024);
        assert_eq!(advice, TierAdvice::PreferVectorized);
    }

    #[test]
    fn break_even_boundary_is_inclusive_for_vectorized() {
        let (advice, _) = choose_tier(
            &LoopStats {
                elements: 2048.0,
                density: None,
                ns_per_elem: None,
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferVectorized);
    }

    #[test]
    fn measured_cost_prefers_scalar_for_cheap_loops() {
        // 3000 elements would pass the element-count break-even, but the
        // loop measures 2 ns/elem → 6 µs of work: batch setup dominates.
        let (advice, why) = choose_tier(
            &LoopStats {
                elements: 3000.0,
                density: None,
                ns_per_elem: Some(2.0),
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferScalar);
        assert!(why.starts_with("measured-cost:"), "{why}");
        assert!(why.contains("2.0 ns/elem"), "{why}");
        assert!(why.contains("3000"), "{why}");
    }

    #[test]
    fn measured_cost_prefers_vectorized_for_heavy_loops() {
        let (advice, why) = choose_tier(
            &LoopStats {
                elements: 1_000_000.0,
                density: None,
                ns_per_elem: Some(1.5),
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferVectorized);
        assert!(why.starts_with("measured-cost:"), "{why}");
    }

    #[test]
    fn measured_cost_weighs_selectivity() {
        // 40 µs of raw measured work, but only 5% of lanes survive
        // selection: useful time 2 µs — the scalar tier's short-circuit
        // skips the other 95%, so batch setup cannot pay for itself.
        let sparse = LoopStats {
            elements: 20_000.0,
            density: Some(0.05),
            ns_per_elem: Some(2.0),
        };
        let (advice, why) = choose_tier(&sparse, 1024);
        assert_eq!(advice, TierAdvice::PreferScalar, "{why}");
        assert!(why.contains("density 0.05"), "{why}");
        // Same loop with dense selection keeps the vectorized tier.
        let dense = LoopStats {
            density: Some(0.95),
            ..sparse
        };
        let (advice, why) = choose_tier(&dense, 1024);
        assert_eq!(advice, TierAdvice::PreferVectorized, "{why}");
    }

    #[test]
    fn zero_measurement_falls_back_to_element_counts() {
        let (_, why) = choose_tier(
            &LoopStats {
                elements: 5000.0,
                density: None,
                ns_per_elem: Some(0.0),
            },
            1024,
        );
        assert!(!why.contains("measured-cost"), "{why}");
    }
}
