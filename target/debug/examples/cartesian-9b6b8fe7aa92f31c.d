/root/repo/target/debug/examples/cartesian-9b6b8fe7aa92f31c.d: examples/cartesian.rs Cargo.toml

/root/repo/target/debug/examples/libcartesian-9b6b8fe7aa92f31c.rmeta: examples/cartesian.rs Cargo.toml

examples/cartesian.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
