//! Mutation self-test for the tape verifier ([`steno_vm::check`]).
//!
//! Each test compiles a real query, injects one class of deliberate
//! miscompile into the resulting `Program` — the kinds of silent bug a
//! backend pass could introduce — and asserts the checker rejects it
//! with the right proof obligation. Together with the zero-false-
//! positive corpus run (`tape_check_corpus.rs`), this is the same
//! differential-strength evidence the execution tiers have: the checker
//! accepts every real tape and refuses every mutant.

use std::sync::Arc;

use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_query::{Query, QueryExpr};
use steno_vm::batch::BOp;
use steno_vm::check::{check_program, ObligationKind};
use steno_vm::query::StenoOptions;
use steno_vm::{CompiledQuery, Instr, Program, VectorizationPolicy};

fn x() -> Expr {
    Expr::var("x")
}

fn fctx() -> DataContext {
    let data: Vec<f64> = (0..2500).map(|i| i as f64 * 0.5 - 300.0).collect();
    DataContext::new().with_source("xs", data)
}

fn ictx() -> DataContext {
    let data: Vec<i64> = (0..2500).map(|i| i * 3 - 700).collect();
    DataContext::new().with_source("ns", data)
}

fn compile(q: &QueryExpr, ctx: &DataContext, opts: StenoOptions) -> Program {
    let udfs = UdfRegistry::new();
    let c = CompiledQuery::compile_tuned(q, ctx.into(), &udfs, opts)
        .unwrap_or_else(|e| panic!("compile failed for {q}: {e}"));
    assert!(
        check_program(c.program()).is_ok(),
        "pristine tape must pass before mutation: {:?}",
        check_program(c.program())
    );
    c.program().clone()
}

fn scalar_opts() -> StenoOptions {
    StenoOptions {
        fusion: false,
        vectorize: VectorizationPolicy::Off,
        ..StenoOptions::default()
    }
}

/// Applies `mutate` to the first `BatchLoop` in the program and
/// reinstalls it (fresh `Arc`), panicking if there is none.
fn mutate_batch(p: &mut Program, mutate: impl FnOnce(&mut steno_vm::batch::BatchProgram)) {
    for ins in &mut p.instrs {
        if let Instr::BatchLoop(bp) = ins {
            let mut owned = (**bp).clone();
            mutate(&mut owned);
            *ins = Instr::BatchLoop(Arc::new(owned));
            return;
        }
    }
    panic!("no BatchLoop in program");
}

#[track_caller]
fn assert_rejected(p: &Program, expect: &[ObligationKind], what: &str) {
    match check_program(p) {
        Ok(rep) => panic!("{what}: mutant accepted ({})", rep.summary()),
        Err(e) => {
            assert!(
                expect.contains(&e.kind),
                "{what}: rejected under {:?}, expected one of {expect:?} ({e})",
                e.kind
            );
            println!("{what}: caught: {e}");
        }
    }
}

// ---------------------------------------------------------------------
// 1. Swapped registers: a non-commutative operation with its operands
//    exchanged — the classic register-allocation bug.
// ---------------------------------------------------------------------
#[test]
fn swapped_registers_caught() {
    let q = Query::source("xs")
        .select(x() - Expr::litf(1.5), "x")
        .sum()
        .build();
    let mut p = compile(&q, &fctx(), StenoOptions::default());
    let mut swapped = false;
    mutate_batch(&mut p, |bp| {
        for op in &mut bp.tape {
            if let BOp::SubF(_, a, b) = op {
                if a != b {
                    std::mem::swap(a, b);
                    swapped = true;
                    break;
                }
            }
        }
    });
    assert!(swapped, "expected a SubF in the batch tape");
    assert_rejected(&p, &[ObligationKind::Equiv], "swapped batch registers");
}

#[test]
fn swapped_scalar_registers_caught() {
    let q = Query::source("ns")
        .select(x() - Expr::liti(7), "x")
        .sum()
        .build();
    let mut p = compile(&q, &ictx(), scalar_opts());
    let mut swapped = false;
    for ins in &mut p.instrs {
        if let Instr::SubI(_, a, b) = ins {
            if a != b {
                std::mem::swap(a, b);
                swapped = true;
                break;
            }
        }
    }
    assert!(swapped, "expected a SubI in the scalar tape");
    assert_rejected(&p, &[ObligationKind::Equiv], "swapped scalar registers");
}

// ---------------------------------------------------------------------
// 2. Dropped zero-guard: a trapping division replaced by its unchecked
//    form without an interval proof.
// ---------------------------------------------------------------------
#[test]
fn dropped_zero_guard_caught() {
    // x - 1 spans zero, so the compiler must emit a checked DivI.
    let q = Query::source("ns")
        .select(x() / (x() - Expr::liti(1)), "x")
        .sum()
        .build();
    let mut p = compile(&q, &ictx(), StenoOptions::default());
    let mut dropped = false;
    mutate_batch(&mut p, |bp| {
        for op in &mut bp.tape {
            if let BOp::DivI(d, a, b) = *op {
                *op = BOp::DivIUnchecked(d, a, b);
                dropped = true;
                break;
            }
        }
    });
    assert!(dropped, "expected a checked DivI in the batch tape");
    assert_rejected(&p, &[ObligationKind::Div], "dropped zero-guard");
}

// ---------------------------------------------------------------------
// 3. Skipped poll: the loop back-edge degenerates into a spin that
//    never crosses the interpreter's poll point.
// ---------------------------------------------------------------------
#[test]
fn skipped_poll_caught() {
    let q = Query::source("ns")
        .where_(x().gt(Expr::liti(0)), "x")
        .count()
        .build();
    let mut p = compile(&q, &ictx(), scalar_opts());
    let mut retargeted = false;
    for pc in 0..p.instrs.len() {
        let self_pc = pc as u32;
        match &mut p.instrs[pc] {
            Instr::Jump(t) | Instr::IncJump { target: t, .. } if (*t as usize) < pc => {
                *t = self_pc;
                retargeted = true;
            }
            _ => {}
        }
        if retargeted {
            break;
        }
    }
    assert!(retargeted, "expected a backward jump in the scalar tape");
    assert_rejected(&p, &[ObligationKind::Polls], "skipped poll");
}

// ---------------------------------------------------------------------
// 4. Off-by-one branch target: a branch lands one instruction away
//    from where it should.
// ---------------------------------------------------------------------
#[test]
fn off_by_one_branch_target_caught() {
    let q = Query::source("ns")
        .where_(x().gt(Expr::liti(0)), "x")
        .count()
        .build();
    let mut p = compile(&q, &ictx(), scalar_opts());
    let mut bumped = false;
    for ins in &mut p.instrs {
        match ins {
            Instr::BrCmpI { target, .. }
            | Instr::BrCmpF { target, .. }
            | Instr::JumpIfTrue(_, target)
            | Instr::JumpIfFalse(_, target) => {
                *target += 1;
                bumped = true;
                break;
            }
            _ => {}
        }
    }
    assert!(bumped, "expected a conditional branch in the scalar tape");
    assert_rejected(
        &p,
        &[
            ObligationKind::Equiv,
            ObligationKind::Cfg,
            ObligationKind::Dataflow,
            ObligationKind::Polls,
        ],
        "off-by-one branch target",
    );
}

#[test]
fn out_of_bounds_branch_target_caught() {
    let q = Query::source("ns").count().build();
    let mut p = compile(&q, &ictx(), scalar_opts());
    let len = p.instrs.len() as u32;
    let mut bumped = false;
    for ins in &mut p.instrs {
        match ins {
            Instr::Jump(t) | Instr::IncJump { target: t, .. } => {
                *t = len + 3;
                bumped = true;
                break;
            }
            _ => {}
        }
    }
    assert!(bumped, "expected a jump in the scalar tape");
    assert_rejected(&p, &[ObligationKind::Cfg], "out-of-bounds branch target");
}

// ---------------------------------------------------------------------
// 5. Premature slot reuse: a batch read remapped to the wrong column,
//    as a buggy `pack_batch_slots` would after reusing a live slot.
// ---------------------------------------------------------------------
#[test]
fn premature_slot_reuse_caught() {
    let q = Query::source("xs")
        .select(x() + Expr::litf(1.5), "x")
        .sum()
        .build();
    let mut p = compile(&q, &fctx(), StenoOptions::default());
    let mut remapped = false;
    mutate_batch(&mut p, |bp| {
        // Redirect the sum's result into a different slot, as a buggy
        // `pack_batch_slots` would when it reuses a slot it wrongly
        // believes dead: the reduction downstream still reads the old
        // slot, which now holds the stale source column.
        assert!(bp.n_f >= 2, "expected at least two f64 slots");
        for op in &mut bp.tape {
            if let BOp::AddF(d, _, _) = op {
                *d = if *d == 0 { 1 } else { 0 };
                remapped = true;
                break;
            }
        }
    });
    assert!(remapped, "expected an AddF in the batch tape");
    assert_rejected(
        &p,
        &[ObligationKind::Equiv, ObligationKind::Dataflow],
        "premature slot reuse",
    );
}

// ---------------------------------------------------------------------
// 6. Type-confused column: a comparison reads slot N of the wrong
//    bank — the index is "valid", the type is not.
// ---------------------------------------------------------------------
#[test]
fn type_confused_column_caught() {
    let q = Query::source("ns")
        .where_(x().lt(Expr::liti(100)), "x")
        .select(x() + Expr::liti(1), "x")
        .sum()
        .build();
    let mut p = compile(&q, &ictx(), StenoOptions::default());
    let mut confused = false;
    mutate_batch(&mut p, |bp| {
        for op in &mut bp.tape {
            if let BOp::LtIB(d, a, b) = *op {
                *op = BOp::LtFB(d, a, b);
                confused = true;
                break;
            }
        }
    });
    assert!(confused, "expected an i64 comparison in the batch tape");
    assert_rejected(
        &p,
        &[ObligationKind::Dataflow, ObligationKind::Equiv],
        "type-confused column",
    );
}

// ---------------------------------------------------------------------
// 7. Mangled superinstruction: a fused compare-and-branch with its
//    polarity inverted — takes the loop exit on the wrong condition.
// ---------------------------------------------------------------------
#[test]
fn mangled_superinstruction_caught() {
    let q = Query::source("ns")
        .where_(x().gt(Expr::liti(0)), "x")
        .count()
        .build();
    let mut p = compile(&q, &ictx(), scalar_opts());
    let mut flipped = false;
    for ins in &mut p.instrs {
        match ins {
            Instr::BrCmpI { on_true, .. } | Instr::BrCmpF { on_true, .. } => {
                *on_true = !*on_true;
                flipped = true;
                break;
            }
            _ => {}
        }
    }
    assert!(
        flipped,
        "expected a BrCmp superinstruction in the scalar tape (pair fusion ran)"
    );
    assert_rejected(&p, &[ObligationKind::Equiv], "mangled superinstruction");
}

// ---------------------------------------------------------------------
// 8. Hoisted non-invariant: the preamble carries a different value
//    than the loop body recomputes — what hoisting something that is
//    not actually loop-invariant looks like.
// ---------------------------------------------------------------------
#[test]
fn hoisted_non_invariant_caught() {
    let q = Query::source("ns")
        .select(x() * Expr::liti(3), "x")
        .sum()
        .build();
    let mut p = compile(&q, &ictx(), scalar_opts());
    let mut corrupted = false;
    for ins in &mut p.instrs {
        if let Instr::ConstI(_, v) = ins {
            if *v == 3 {
                *v = 4;
                corrupted = true;
                break;
            }
        }
    }
    assert!(corrupted, "expected the literal 3 in the optimized tape");
    assert_rejected(&p, &[ObligationKind::Equiv], "hoisted non-invariant");
}

// ---------------------------------------------------------------------
// 9. Mangled fused kernel: the whole-loop kernel claims a different
//    shape than the tape it replaced.
// ---------------------------------------------------------------------
#[test]
fn mangled_fused_kernel_caught() {
    use steno_vm::fuse_kernels::{FusedTape, MapF};
    let q = Query::source("xs")
        .select(x() * x(), "x")
        .sum()
        .build();
    let mut p = compile(&q, &fctx(), StenoOptions::default());
    let mut mangled = false;
    mutate_batch(&mut p, |bp| {
        if let Some(FusedTape::SumF { map, .. }) = &mut bp.fused {
            // sum(x*x) silently becomes sum(x).
            *map = MapF::X;
            mangled = true;
        }
    });
    assert!(mangled, "expected a fused SumF kernel");
    assert_rejected(&p, &[ObligationKind::Equiv], "mangled fused kernel");
}
