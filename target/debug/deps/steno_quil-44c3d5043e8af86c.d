/root/repo/target/debug/deps/steno_quil-44c3d5043e8af86c.d: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_quil-44c3d5043e8af86c.rlib: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_quil-44c3d5043e8af86c.rmeta: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs Cargo.toml

crates/steno-quil/src/lib.rs:
crates/steno-quil/src/grammar.rs:
crates/steno-quil/src/ir.rs:
crates/steno-quil/src/lower.rs:
crates/steno-quil/src/parallel.rs:
crates/steno-quil/src/passes.rs:
crates/steno-quil/src/substitute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
