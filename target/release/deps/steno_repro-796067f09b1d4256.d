/root/repo/target/release/deps/steno_repro-796067f09b1d4256.d: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-796067f09b1d4256.rlib: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-796067f09b1d4256.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
