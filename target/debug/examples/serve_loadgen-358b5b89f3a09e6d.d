/root/repo/target/debug/examples/serve_loadgen-358b5b89f3a09e6d.d: examples/serve_loadgen.rs Cargo.toml

/root/repo/target/debug/examples/libserve_loadgen-358b5b89f3a09e6d.rmeta: examples/serve_loadgen.rs Cargo.toml

examples/serve_loadgen.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
