/root/repo/target/debug/deps/fig_vectorized-ffe87183748b144c.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/debug/deps/fig_vectorized-ffe87183748b144c: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
