//! Tokenizing comprehension text.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `:`.
    Colon,
    /// `|`.
    Pipe,
    /// `=>`.
    FatArrow,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(x) => write!(f, "{x}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Colon => write!(f, ":"),
            Token::Pipe => write!(f, "|"),
            Token::FatArrow => write!(f, "=>"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
        }
    }
}

/// A lexical error with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes comprehension text.
///
/// # Errors
///
/// Returns [`LexError`] for unknown characters or malformed numbers.
pub fn lex(text: &str) -> Result<Vec<Token>, LexError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::FatArrow);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected `==` or `=>`".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        message: "expected `&&`".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    out.push(Token::Pipe);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A float has a fractional part: digits '.' digits. The
                // dot must be followed by a digit, otherwise it is field
                // access (`x.0` is projection, lexed as Ident/Int/Dot...).
                let is_float = i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && bytes[i + 1].is_ascii_digit()
                    && {
                        // Disambiguate: `1.0` is a float; projections only
                        // apply to identifiers, so digits-dot-digits is
                        // always a float here.
                        true
                    };
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    // Optional exponent.
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].is_ascii_digit() {
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let s = &text[start..i];
                    let x = s.parse::<f64>().map_err(|_| LexError {
                        offset: start,
                        message: format!("malformed float `{s}`"),
                    })?;
                    out.push(Token::Float(x));
                } else {
                    let s = &text[start..i];
                    let x = s.parse::<i64>().map_err(|_| LexError {
                        offset: start,
                        message: format!("malformed integer `{s}`"),
                    })?;
                    out.push(Token::Int(x));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(text[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_running_example() {
        let toks = lex("from x in xs where x % 2 == 0 select x * x").unwrap();
        assert_eq!(toks.len(), 14);
        assert_eq!(toks[0], Token::Ident("from".into()));
        assert_eq!(toks[6], Token::Percent);
        assert_eq!(toks[8], Token::EqEq);
    }

    #[test]
    fn floats_vs_projections() {
        assert_eq!(lex("1.5").unwrap(), vec![Token::Float(1.5)]);
        assert_eq!(lex("2e3").unwrap(), vec![Token::Int(2), Token::Ident("e3".into())]);
        assert_eq!(lex("1.5e-2").unwrap(), vec![Token::Float(0.015)]);
        // Projection: identifier, dot, integer.
        assert_eq!(
            lex("kv.0").unwrap(),
            vec![Token::Ident("kv".into()), Token::Dot, Token::Int(0)]
        );
        // A call on a float parses as float-dot-ident.
        assert_eq!(
            lex("2.5.sqrt()").unwrap(),
            vec![
                Token::Float(2.5),
                Token::Dot,
                Token::Ident("sqrt".into()),
                Token::LParen,
                Token::RParen
            ]
        );
    }

    #[test]
    fn operators_and_lambdas() {
        let toks = lex("|x| x >= 1 && x != 3 || !(x <= 0)").unwrap();
        assert!(toks.contains(&Token::Pipe));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Bang));
        let toks = lex("x => x").unwrap();
        assert_eq!(toks[1], Token::FatArrow);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("a ; b").unwrap_err();
        assert_eq!(err.offset, 2);
        let err = lex("a & b").unwrap_err();
        assert!(err.message.contains("&&"));
        let err = lex("a = b").unwrap_err();
        assert!(err.message.contains("=="));
    }
}
