/root/repo/target/debug/deps/steno_analysis-a6a6e9783816d474.d: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_analysis-a6a6e9783816d474.rmeta: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs Cargo.toml

crates/steno-analysis/src/lib.rs:
crates/steno-analysis/src/facts.rs:
crates/steno-analysis/src/lint.rs:
crates/steno-analysis/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
