/root/repo/target/release/deps/fig14-3a7032d7521c069e.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-3a7032d7521c069e: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
