/root/repo/target/release/examples/distributed_kmeans-0139b7367e7c5a36.d: examples/distributed_kmeans.rs

/root/repo/target/release/examples/distributed_kmeans-0139b7367e7c5a36: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
