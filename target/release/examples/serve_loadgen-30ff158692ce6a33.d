/root/repo/target/release/examples/serve_loadgen-30ff158692ce6a33.d: examples/serve_loadgen.rs

/root/repo/target/release/examples/serve_loadgen-30ff158692ce6a33: examples/serve_loadgen.rs

examples/serve_loadgen.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
