/root/repo/target/debug/examples/histogram-392b88d66f005ba3.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-392b88d66f005ba3: examples/histogram.rs

examples/histogram.rs:
