/root/repo/target/release/examples/distributed_kmeans-0cf6299df31e8cc3.d: examples/distributed_kmeans.rs

/root/repo/target/release/examples/distributed_kmeans-0cf6299df31e8cc3: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
