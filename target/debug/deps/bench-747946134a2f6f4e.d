/root/repo/target/debug/deps/bench-747946134a2f6f4e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-747946134a2f6f4e.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-747946134a2f6f4e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
