/root/repo/target/debug/deps/macro_expansion-21c1bc7d8e7a95fa.d: tests/macro_expansion.rs

/root/repo/target/debug/deps/macro_expansion-21c1bc7d8e7a95fa: tests/macro_expansion.rs

tests/macro_expansion.rs:
