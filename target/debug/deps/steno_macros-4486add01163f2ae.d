/root/repo/target/debug/deps/steno_macros-4486add01163f2ae.d: crates/steno-macros/src/lib.rs

/root/repo/target/debug/deps/steno_macros-4486add01163f2ae: crates/steno-macros/src/lib.rs

crates/steno-macros/src/lib.rs:
