/root/repo/target/debug/deps/end_to_end-edc8a30e0d19fda0.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-edc8a30e0d19fda0: tests/end_to_end.rs

tests/end_to_end.rs:
