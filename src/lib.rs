//! Root package hosting cross-crate integration tests and examples.

pub mod prng;
