/root/repo/target/debug/examples/cartesian-7884b2425c635902.d: examples/cartesian.rs Cargo.toml

/root/repo/target/debug/examples/libcartesian-7884b2425c635902.rmeta: examples/cartesian.rs Cargo.toml

examples/cartesian.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
