/root/repo/target/debug/deps/steno-942d18918f027438.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs Cargo.toml

/root/repo/target/debug/deps/libsteno-942d18918f027438.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs Cargo.toml

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
