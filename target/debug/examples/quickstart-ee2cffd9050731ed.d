/root/repo/target/debug/examples/quickstart-ee2cffd9050731ed.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ee2cffd9050731ed: examples/quickstart.rs

examples/quickstart.rs:
