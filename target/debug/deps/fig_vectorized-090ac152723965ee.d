/root/repo/target/debug/deps/fig_vectorized-090ac152723965ee.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/debug/deps/fig_vectorized-090ac152723965ee: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
