//! Query ASTs: the LINQ "query provider" layer.
//!
//! Steno begins by reconstructing the query AST at run time via the LINQ
//! query-provider facility (§3.1 of the paper). This crate is that layer
//! for the Rust reproduction:
//!
//! * [`QueryExpr`] — the method-call representation of a query
//!   (`xs.Where(...).Select(...).Sum()`), where each operator's function
//!   argument is either an expression-tree lambda or a *nested query*
//!   (§5),
//! * [`Query`] — a fluent builder mirroring the C# extension-method
//!   syntax,
//! * [`typing`] — element-type inference along the chain (the information
//!   the C# compiler would have established before Steno runs),
//! * canonicalization of operator overloads (§3.1: "yielding a canonical
//!   operator for each method-call expression").
//!
//! # Example
//!
//! ```
//! use steno_expr::Expr;
//! use steno_query::Query;
//!
//! // from x in xs where x % 2 == 0 select x * x
//! let q = Query::source("xs")
//!     .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
//!     .select(Expr::var("x") * Expr::var("x"), "x")
//!     .build();
//! assert_eq!(q.to_string(), "xs.Where(|x| ((x % 2) == 0)).Select(|x| (x * x))");
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod ast;
pub mod builder;
pub mod typing;

pub use ast::{AggOp, GroupResult, QBody, QFn, QFn2, QueryExpr, SourceRef};
pub use builder::Query;
