/root/repo/target/debug/examples/cartesian-870e72cd4be3d9f9.d: examples/cartesian.rs Cargo.toml

/root/repo/target/debug/examples/libcartesian-870e72cd4be3d9f9.rmeta: examples/cartesian.rs Cargo.toml

examples/cartesian.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
