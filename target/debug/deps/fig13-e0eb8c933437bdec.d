/root/repo/target/debug/deps/fig13-e0eb8c933437bdec.d: crates/bench/src/bin/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-e0eb8c933437bdec.rmeta: crates/bench/src/bin/fig13.rs Cargo.toml

crates/bench/src/bin/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
