/root/repo/target/debug/deps/bench-028146db5d335365.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-028146db5d335365.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-028146db5d335365.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
