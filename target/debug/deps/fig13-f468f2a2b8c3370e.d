/root/repo/target/debug/deps/fig13-f468f2a2b8c3370e.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-f468f2a2b8c3370e: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
