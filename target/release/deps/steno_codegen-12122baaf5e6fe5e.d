/root/repo/target/release/deps/steno_codegen-12122baaf5e6fe5e.d: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/release/deps/libsteno_codegen-12122baaf5e6fe5e.rlib: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/release/deps/libsteno_codegen-12122baaf5e6fe5e.rmeta: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

crates/steno-codegen/src/lib.rs:
crates/steno-codegen/src/generate.rs:
crates/steno-codegen/src/imp.rs:
crates/steno-codegen/src/printer.rs:
