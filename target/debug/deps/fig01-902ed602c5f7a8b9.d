/root/repo/target/debug/deps/fig01-902ed602c5f7a8b9.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-902ed602c5f7a8b9: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
