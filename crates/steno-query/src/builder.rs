//! A fluent builder mirroring the LINQ extension-method syntax.

use steno_expr::{Expr, Value};

use crate::ast::{AggOp, GroupResult, QFn, QFn2, QueryExpr, SourceRef};

/// A fluent query builder.
///
/// Each method appends one operator, mirroring the C# extension-method
/// chain the paper's Fig. 3 shows. Call [`Query::build`] to obtain the
/// [`QueryExpr`] AST (already canonicalized).
///
/// # Example
///
/// ```
/// use steno_expr::Expr;
/// use steno_query::Query;
///
/// let q = Query::range(0, 100)
///     .select(Expr::var("x") * Expr::var("x"), "x")
///     .sum()
///     .build();
/// assert_eq!(q.to_string(), "Range(0, 100).Select(|x| (x * x)).Sum()");
/// ```
#[derive(Clone, Debug)]
pub struct Query {
    expr: QueryExpr,
}

impl Query {
    /// Starts a query over a named source collection.
    pub fn source(name: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::Source(SourceRef::Named(name.into())),
        }
    }

    /// Starts a query over `Enumerable.Range(start, count)`.
    pub fn range(start: i64, count: usize) -> Query {
        Query {
            expr: QueryExpr::Source(SourceRef::Range { start, count }),
        }
    }

    /// Starts a query over `Enumerable.Repeat(value, count)`.
    pub fn repeat(value: impl Into<Value>, count: usize) -> Query {
        Query {
            expr: QueryExpr::Source(SourceRef::Repeat {
                value: value.into(),
                count,
            }),
        }
    }

    /// Starts a query over a sequence-valued expression (used in nested
    /// queries, e.g. over the group contents `kv.1`).
    pub fn over(expr: Expr) -> Query {
        Query {
            expr: QueryExpr::Source(SourceRef::Expr(expr)),
        }
    }

    /// Wraps an existing AST.
    pub fn from_expr(expr: QueryExpr) -> Query {
        Query { expr }
    }

    /// `Select(param => body)`.
    pub fn select(self, body: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::Select {
                input: Box::new(self.expr),
                f: QFn::expr(param, body),
            },
        }
    }

    /// `Select` with a nested query body (e.g. aggregating a subquery per
    /// element, as k-means does per point).
    pub fn select_query(self, subquery: Query, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::Select {
                input: Box::new(self.expr),
                f: QFn::query(param, subquery.expr),
            },
        }
    }

    /// `Where(param => predicate)`.
    pub fn where_(self, predicate: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::Where {
                input: Box::new(self.expr),
                p: QFn::expr(param, predicate),
            },
        }
    }

    /// `SelectMany(param => subquery)`.
    pub fn select_many(self, subquery: Query, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::SelectMany {
                input: Box::new(self.expr),
                f: QFn::query(param, subquery.expr),
            },
        }
    }

    /// `SelectMany(param => seq_expr)` where the body is a sequence-valued
    /// expression.
    pub fn select_many_expr(self, body: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::SelectMany {
                input: Box::new(self.expr),
                f: QFn::expr(param, body),
            },
        }
    }

    /// `Take(count)`.
    pub fn take(self, count: usize) -> Query {
        Query {
            expr: QueryExpr::Take {
                input: Box::new(self.expr),
                count,
            },
        }
    }

    /// `Skip(count)`.
    pub fn skip(self, count: usize) -> Query {
        Query {
            expr: QueryExpr::Skip {
                input: Box::new(self.expr),
                count,
            },
        }
    }

    /// `TakeWhile(param => predicate)`.
    pub fn take_while(self, predicate: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::TakeWhile {
                input: Box::new(self.expr),
                p: QFn::expr(param, predicate),
            },
        }
    }

    /// `SkipWhile(param => predicate)`.
    pub fn skip_while(self, predicate: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::SkipWhile {
                input: Box::new(self.expr),
                p: QFn::expr(param, predicate),
            },
        }
    }

    /// `GroupBy(param => key)`: yields `(key, seq)` pairs.
    pub fn group_by(self, key: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::GroupBy {
                input: Box::new(self.expr),
                key: QFn::expr(param, key),
                elem: None,
                result: None,
            },
        }
    }

    /// `GroupBy(param => key, param => elem)`.
    pub fn group_by_elem(
        self,
        key: Expr,
        elem: Expr,
        param: impl Into<String>,
    ) -> Query {
        let param = param.into();
        Query {
            expr: QueryExpr::GroupBy {
                input: Box::new(self.expr),
                key: QFn::expr(param.clone(), key),
                elem: Some(QFn::expr(param, elem)),
                result: None,
            },
        }
    }

    /// `GroupBy(key, resultSelector)`: the aggregating overload that Steno
    /// specializes into a `GroupByAggregate` sink (§4.3).
    pub fn group_by_result(
        self,
        key: Expr,
        param: impl Into<String>,
        result: GroupResult,
    ) -> Query {
        Query {
            expr: QueryExpr::GroupBy {
                input: Box::new(self.expr),
                key: QFn::expr(param, key),
                elem: None,
                result: Some(result),
            },
        }
    }

    /// `GroupBy(key, elem, resultSelector)`.
    pub fn group_by_elem_result(
        self,
        key: Expr,
        elem: Expr,
        param: impl Into<String>,
        result: GroupResult,
    ) -> Query {
        let param = param.into();
        Query {
            expr: QueryExpr::GroupBy {
                input: Box::new(self.expr),
                key: QFn::expr(param.clone(), key),
                elem: Some(QFn::expr(param, elem)),
                result: Some(result),
            },
        }
    }

    /// `OrderBy(param => key)`.
    pub fn order_by(self, key: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::OrderBy {
                input: Box::new(self.expr),
                key: QFn::expr(param, key),
                descending: false,
            },
        }
    }

    /// `OrderByDescending(param => key)`.
    pub fn order_by_desc(self, key: Expr, param: impl Into<String>) -> Query {
        Query {
            expr: QueryExpr::OrderBy {
                input: Box::new(self.expr),
                key: QFn::expr(param, key),
                descending: true,
            },
        }
    }

    /// `Distinct()`.
    pub fn distinct(self) -> Query {
        Query {
            expr: QueryExpr::Distinct {
                input: Box::new(self.expr),
            },
        }
    }

    /// `ToArray()`: explicit materialization (§4.2, footnote 3).
    pub fn to_vec(self) -> Query {
        Query {
            expr: QueryExpr::ToVec {
                input: Box::new(self.expr),
            },
        }
    }

    /// `Concat(other)`.
    pub fn concat(self, other: Query) -> Query {
        Query {
            expr: QueryExpr::Concat {
                input: Box::new(self.expr),
                other: Box::new(other.expr),
            },
        }
    }

    /// `Join(inner, o => outerKey, i => innerKey, (o, i) => result)`:
    /// equi-join, canonicalized into the §5 `SelectMany`+`Where` form on
    /// [`Query::build`].
    #[allow(clippy::too_many_arguments)]
    pub fn join(
        self,
        inner: Query,
        outer_param: impl Into<String>,
        outer_key: Expr,
        inner_param: impl Into<String>,
        inner_key: Expr,
        result: QFn2,
    ) -> Query {
        Query {
            expr: QueryExpr::Join {
                input: Box::new(self.expr),
                inner: Box::new(inner.expr),
                outer_key: QFn::expr(outer_param, outer_key),
                inner_key: QFn::expr(inner_param, inner_key),
                result,
            },
        }
    }

    /// `Aggregate(seed, (acc, x) => body)`.
    pub fn aggregate(
        self,
        seed: Expr,
        acc: impl Into<String>,
        elem: impl Into<String>,
        body: Expr,
    ) -> Query {
        Query {
            expr: QueryExpr::Aggregate {
                input: Box::new(self.expr),
                seed,
                func: QFn2::new(acc, elem, body),
                combine: None,
            },
        }
    }

    /// `Aggregate` with an associative combiner for distributed partial
    /// aggregation (§6).
    pub fn aggregate_assoc(
        self,
        seed: Expr,
        acc: impl Into<String>,
        elem: impl Into<String>,
        body: Expr,
        combine: QFn2,
    ) -> Query {
        Query {
            expr: QueryExpr::Aggregate {
                input: Box::new(self.expr),
                seed,
                func: QFn2::new(acc, elem, body),
                combine: Some(combine),
            },
        }
    }

    fn agg(self, op: AggOp, f: Option<QFn>) -> Query {
        Query {
            expr: QueryExpr::Agg {
                input: Box::new(self.expr),
                op,
                f,
            },
        }
    }

    /// `Sum()`.
    pub fn sum(self) -> Query {
        self.agg(AggOp::Sum, None)
    }

    /// `Sum(param => f)` — canonicalized to `Select(f).Sum()`.
    pub fn sum_by(self, f: Expr, param: impl Into<String>) -> Query {
        self.agg(AggOp::Sum, Some(QFn::expr(param, f)))
    }

    /// `Min()`.
    pub fn min(self) -> Query {
        self.agg(AggOp::Min, None)
    }

    /// `Max()`.
    pub fn max(self) -> Query {
        self.agg(AggOp::Max, None)
    }

    /// `Count()`.
    pub fn count(self) -> Query {
        self.agg(AggOp::Count, None)
    }

    /// `Count(param => p)` — canonicalized to `Where(p).Count()`.
    pub fn count_by(self, p: Expr, param: impl Into<String>) -> Query {
        self.agg(AggOp::Count, Some(QFn::expr(param, p)))
    }

    /// `Average()`.
    pub fn average(self) -> Query {
        self.agg(AggOp::Average, None)
    }

    /// `Any()`.
    pub fn any(self) -> Query {
        self.agg(AggOp::Any, None)
    }

    /// `Any(param => p)` — canonicalized to `Where(p).Any()`.
    pub fn any_by(self, p: Expr, param: impl Into<String>) -> Query {
        self.agg(AggOp::Any, Some(QFn::expr(param, p)))
    }

    /// `All(param => p)` — canonicalized to `Select(p).All()`.
    pub fn all_by(self, p: Expr, param: impl Into<String>) -> Query {
        self.agg(AggOp::All, Some(QFn::expr(param, p)))
    }

    /// `FirstOrDefault()`.
    pub fn first(self) -> Query {
        self.agg(AggOp::First, None)
    }

    /// Finishes the builder, returning the canonicalized AST.
    pub fn build(self) -> QueryExpr {
        self.expr.canonicalize()
    }

    /// The AST as currently built, without canonicalization.
    pub fn as_raw(&self) -> &QueryExpr {
        &self.expr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_in_order() {
        let q = Query::source("xs")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .build();
        assert_eq!(
            q.to_string(),
            "xs.Where(|x| ((x % 2) == 0)).Select(|x| (x * x))"
        );
    }

    #[test]
    fn shorthand_aggregates_canonicalize_on_build() {
        let q = Query::source("xs")
            .sum_by(Expr::var("x") * Expr::var("x"), "x")
            .build();
        assert_eq!(q.to_string(), "xs.Select(|x| (x * x)).Sum()");
        let q = Query::source("xs")
            .any_by(Expr::var("x").gt(Expr::liti(9)), "x")
            .build();
        assert_eq!(q.to_string(), "xs.Where(|x| (x > 9)).Any()");
    }

    #[test]
    fn nested_cartesian_query() {
        // xs.SelectMany(x => ys.Select(y => x * y)).Sum() — §5.
        let q = Query::source("xs")
            .select_many(
                Query::source("ys").select(Expr::var("x") * Expr::var("y"), "y"),
                "x",
            )
            .sum()
            .build();
        assert_eq!(
            q.to_string(),
            "xs.SelectMany(|x| ys.Select(|y| (x * y))).Sum()"
        );
    }

    #[test]
    fn group_and_order() {
        let q = Query::source("xs")
            .group_by(Expr::var("x").floor(), "x")
            .order_by(Expr::var("g").field(0), "g")
            .build();
        assert_eq!(
            q.to_string(),
            "xs.GroupBy(|x| x.floor()).OrderBy(|g| g.0)"
        );
    }

    #[test]
    fn aggregate_with_combiner_is_marked_associative() {
        let q = Query::source("xs")
            .aggregate_assoc(
                Expr::litf(0.0),
                "a",
                "x",
                Expr::var("a") + Expr::var("x"),
                QFn2::new("p", "q", Expr::var("p") + Expr::var("q")),
            )
            .build();
        match q {
            QueryExpr::Aggregate { combine, .. } => assert!(combine.is_some()),
            other => panic!("unexpected AST: {other}"),
        }
    }
}
