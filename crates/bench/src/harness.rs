//! A self-contained micro-benchmark harness with a criterion-shaped API.
//!
//! The build environment is fully offline, so the `criterion` crate is
//! unavailable; this shim implements the small surface the `benches/`
//! files use (`Criterion::benchmark_group`, `BenchmarkGroup::
//! bench_function`, `Bencher::iter`, the `criterion_group!`/
//! `criterion_main!` macros) with plain `std::time` measurement. Results
//! are median-of-samples over auto-calibrated batches, printed one line
//! per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier rendered as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: calibrate a batch size, take samples, report
    /// the median per-iteration time.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.per_iter);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{:>40}  median {:>12?}  best {:>12?}  ({} samples)",
            format!("{}/{id}", self.name),
            median,
            best,
            samples.len()
        );
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; measures the routine under test.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, auto-batching fast routines so each sample spans
    /// at least ~2 ms of wall clock.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fill the floor?
        let floor = Duration::from_millis(2);
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= floor || batch >= 1 << 20 {
                self.per_iter = elapsed / (batch as u32).max(1);
                return;
            }
            batch = batch.saturating_mul(
                ((floor.as_nanos() / elapsed.as_nanos().max(1)) as u64 + 1).clamp(2, 128),
            );
        }
    }
}

/// Collects benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
