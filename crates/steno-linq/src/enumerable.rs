//! `Enumerable<T>` and the composable (lazy) query operators.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::hash::Hash;
use std::rc::Rc;

use crate::enumerator::{BoxEnum, Enumerator, Func, Func2};
use crate::grouping::Grouping;
use crate::lookup::Lookup;

/// A lazily-evaluated sequence: the `IEnumerable<T>` of the paper.
///
/// An `Enumerable` only knows how to produce fresh [`BoxEnum`] enumerators;
/// composing operators builds a chain of factories, and enumeration builds
/// the corresponding chain of boxed iterator state machines (Fig. 2 of the
/// paper). Cloning an `Enumerable` is cheap (it shares the factory).
#[derive(Clone)]
pub struct Enumerable<T> {
    factory: Rc<dyn Fn() -> BoxEnum<T>>,
}

impl<T> std::fmt::Debug for Enumerable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Enumerable").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Operator state machines. Each one is the Rust transliteration of the
// compiler-generated iterator class that C# produces for a `yield return`
// method: a `pos`-style state plus `current` slot, advanced by `move_next`.
// ---------------------------------------------------------------------------

struct SelectEnumerator<T, U> {
    source: BoxEnum<T>,
    selector: Func<T, U>,
    current: Option<U>,
}

impl<T, U: Clone> Enumerator for SelectEnumerator<T, U> {
    type Item = U;
    fn move_next(&mut self) -> bool {
        if self.source.move_next() {
            self.current = Some((self.selector)(self.source.current()));
            true
        } else {
            self.current = None;
            false
        }
    }
    fn current(&self) -> U {
        self.current.clone().expect("current() outside enumeration")
    }
}

struct WhereEnumerator<T> {
    source: BoxEnum<T>,
    predicate: Func<T, bool>,
    current: Option<T>,
}

impl<T: Clone> Enumerator for WhereEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        while self.source.move_next() {
            let item = self.source.current();
            if (self.predicate)(item.clone()) {
                self.current = Some(item);
                return true;
            }
        }
        self.current = None;
        false
    }
    fn current(&self) -> T {
        self.current.clone().expect("current() outside enumeration")
    }
}

struct SelectManyEnumerator<T, U> {
    source: BoxEnum<T>,
    selector: Func<T, Enumerable<U>>,
    inner: Option<BoxEnum<U>>,
}

impl<T, U: Clone + 'static> Enumerator for SelectManyEnumerator<T, U> {
    type Item = U;
    fn move_next(&mut self) -> bool {
        loop {
            if let Some(inner) = &mut self.inner {
                if inner.move_next() {
                    return true;
                }
                self.inner = None;
            }
            if !self.source.move_next() {
                return false;
            }
            let sub = (self.selector)(self.source.current());
            self.inner = Some(sub.get_enumerator());
        }
    }
    fn current(&self) -> U {
        self.inner
            .as_ref()
            .expect("current() outside enumeration")
            .current()
    }
}

struct TakeEnumerator<T> {
    source: BoxEnum<T>,
    remaining: usize,
}

impl<T: Clone> Enumerator for TakeEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        if self.source.move_next() {
            self.remaining -= 1;
            true
        } else {
            self.remaining = 0;
            false
        }
    }
    fn current(&self) -> T {
        self.source.current()
    }
}

struct SkipEnumerator<T> {
    source: BoxEnum<T>,
    to_skip: usize,
}

impl<T: Clone> Enumerator for SkipEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        while self.to_skip > 0 {
            self.to_skip -= 1;
            if !self.source.move_next() {
                return false;
            }
        }
        self.source.move_next()
    }
    fn current(&self) -> T {
        self.source.current()
    }
}

struct TakeWhileEnumerator<T> {
    source: BoxEnum<T>,
    predicate: Func<T, bool>,
    done: bool,
    current: Option<T>,
}

impl<T: Clone> Enumerator for TakeWhileEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        if self.done {
            return false;
        }
        if self.source.move_next() {
            let item = self.source.current();
            if (self.predicate)(item.clone()) {
                self.current = Some(item);
                return true;
            }
        }
        self.done = true;
        self.current = None;
        false
    }
    fn current(&self) -> T {
        self.current.clone().expect("current() outside enumeration")
    }
}

struct SkipWhileEnumerator<T> {
    source: BoxEnum<T>,
    predicate: Func<T, bool>,
    skipping: bool,
    current: Option<T>,
}

impl<T: Clone> Enumerator for SkipWhileEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        while self.source.move_next() {
            let item = self.source.current();
            if self.skipping && (self.predicate)(item.clone()) {
                continue;
            }
            self.skipping = false;
            self.current = Some(item);
            return true;
        }
        self.current = None;
        false
    }
    fn current(&self) -> T {
        self.current.clone().expect("current() outside enumeration")
    }
}

struct ConcatEnumerator<T> {
    first: BoxEnum<T>,
    second: BoxEnum<T>,
    on_second: bool,
}

impl<T: Clone> Enumerator for ConcatEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        if !self.on_second {
            if self.first.move_next() {
                return true;
            }
            self.on_second = true;
        }
        self.second.move_next()
    }
    fn current(&self) -> T {
        if self.on_second {
            self.second.current()
        } else {
            self.first.current()
        }
    }
}

struct ZipEnumerator<A, B, R> {
    left: BoxEnum<A>,
    right: BoxEnum<B>,
    selector: Func2<A, B, R>,
    current: Option<R>,
}

impl<A, B, R: Clone> Enumerator for ZipEnumerator<A, B, R> {
    type Item = R;
    fn move_next(&mut self) -> bool {
        if self.left.move_next() && self.right.move_next() {
            self.current = Some((self.selector)(self.left.current(), self.right.current()));
            true
        } else {
            self.current = None;
            false
        }
    }
    fn current(&self) -> R {
        self.current.clone().expect("current() outside enumeration")
    }
}

/// An eagerly-buffering operator (`OrderBy`, `Reverse`, `GroupBy` results):
/// on the first `move_next` it drains its input through `fill`, then walks
/// the buffer.
struct BufferedEnumerator<T> {
    fill: Option<Box<dyn FnOnce() -> Vec<T>>>,
    buffer: Vec<T>,
    pos: usize,
}

impl<T: Clone> Enumerator for BufferedEnumerator<T> {
    type Item = T;
    fn move_next(&mut self) -> bool {
        if let Some(fill) = self.fill.take() {
            self.buffer = fill();
        }
        if self.pos < self.buffer.len() {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn current(&self) -> T {
        assert!(self.pos > 0, "current() called before move_next()");
        self.buffer[self.pos - 1].clone()
    }
}

// ---------------------------------------------------------------------------
// The composable operator API.
// ---------------------------------------------------------------------------

impl<T: Clone + 'static> Enumerable<T> {
    /// Creates an enumerable from an enumerator factory.
    pub fn new(factory: impl Fn() -> BoxEnum<T> + 'static) -> Enumerable<T> {
        Enumerable {
            factory: Rc::new(factory),
        }
    }

    /// Starts a fresh enumeration (`GetEnumerator()`).
    pub fn get_enumerator(&self) -> BoxEnum<T> {
        (self.factory)()
    }

    /// `Select`: applies `selector` to every element.
    pub fn select<U: Clone + 'static>(
        &self,
        selector: impl Fn(T) -> U + 'static,
    ) -> Enumerable<U> {
        let source = self.clone();
        let selector: Func<T, U> = Rc::new(selector);
        Enumerable::new(move || {
            Box::new(SelectEnumerator {
                source: source.get_enumerator(),
                selector: Rc::clone(&selector),
                current: None,
            })
        })
    }

    /// `Where`: keeps the elements matching `predicate`.
    ///
    /// Named `where_` because `where` is a Rust keyword.
    pub fn where_(&self, predicate: impl Fn(T) -> bool + 'static) -> Enumerable<T> {
        let source = self.clone();
        let predicate: Func<T, bool> = Rc::new(predicate);
        Enumerable::new(move || {
            Box::new(WhereEnumerator {
                source: source.get_enumerator(),
                predicate: Rc::clone(&predicate),
                current: None,
            })
        })
    }

    /// `SelectMany`: maps each element to a subsequence and flattens.
    pub fn select_many<U: Clone + 'static>(
        &self,
        selector: impl Fn(T) -> Enumerable<U> + 'static,
    ) -> Enumerable<U> {
        let source = self.clone();
        let selector: Func<T, Enumerable<U>> = Rc::new(selector);
        Enumerable::new(move || {
            Box::new(SelectManyEnumerator {
                source: source.get_enumerator(),
                selector: Rc::clone(&selector),
                inner: None,
            })
        })
    }

    /// `Take`: at most the first `count` elements.
    pub fn take(&self, count: usize) -> Enumerable<T> {
        let source = self.clone();
        Enumerable::new(move || {
            Box::new(TakeEnumerator {
                source: source.get_enumerator(),
                remaining: count,
            })
        })
    }

    /// `Skip`: everything after the first `count` elements.
    pub fn skip(&self, count: usize) -> Enumerable<T> {
        let source = self.clone();
        Enumerable::new(move || {
            Box::new(SkipEnumerator {
                source: source.get_enumerator(),
                to_skip: count,
            })
        })
    }

    /// `TakeWhile`: the longest prefix matching `predicate`.
    pub fn take_while(&self, predicate: impl Fn(T) -> bool + 'static) -> Enumerable<T> {
        let source = self.clone();
        let predicate: Func<T, bool> = Rc::new(predicate);
        Enumerable::new(move || {
            Box::new(TakeWhileEnumerator {
                source: source.get_enumerator(),
                predicate: Rc::clone(&predicate),
                done: false,
                current: None,
            })
        })
    }

    /// `SkipWhile`: drops the longest prefix matching `predicate`.
    pub fn skip_while(&self, predicate: impl Fn(T) -> bool + 'static) -> Enumerable<T> {
        let source = self.clone();
        let predicate: Func<T, bool> = Rc::new(predicate);
        Enumerable::new(move || {
            Box::new(SkipWhileEnumerator {
                source: source.get_enumerator(),
                predicate: Rc::clone(&predicate),
                skipping: true,
                current: None,
            })
        })
    }

    /// `Concat`: `self` followed by `other`.
    pub fn concat(&self, other: &Enumerable<T>) -> Enumerable<T> {
        let first = self.clone();
        let second = other.clone();
        Enumerable::new(move || {
            Box::new(ConcatEnumerator {
                first: first.get_enumerator(),
                second: second.get_enumerator(),
                on_second: false,
            })
        })
    }

    /// `Zip`: pairwise combination with `other` through `selector`,
    /// stopping at the shorter sequence.
    pub fn zip<U: Clone + 'static, R: Clone + 'static>(
        &self,
        other: &Enumerable<U>,
        selector: impl Fn(T, U) -> R + 'static,
    ) -> Enumerable<R> {
        let left = self.clone();
        let right = other.clone();
        let selector: Func2<T, U, R> = Rc::new(selector);
        Enumerable::new(move || {
            Box::new(ZipEnumerator {
                left: left.get_enumerator(),
                right: right.get_enumerator(),
                selector: Rc::clone(&selector),
                current: None,
            })
        })
    }

    /// `Reverse`: buffers the sequence and yields it back-to-front.
    pub fn reverse(&self) -> Enumerable<T> {
        let source = self.clone();
        Enumerable::new(move || {
            let source = source.clone();
            Box::new(BufferedEnumerator {
                fill: Some(Box::new(move || {
                    let mut v = source.to_vec();
                    v.reverse();
                    v
                })),
                buffer: Vec::new(),
                pos: 0,
            })
        })
    }

    /// `Distinct`: removes duplicates, keyed by `key`, keeping first
    /// occurrences in order.
    pub fn distinct_by<K: Eq + Hash + 'static>(
        &self,
        key: impl Fn(&T) -> K + 'static,
    ) -> Enumerable<T> {
        let source = self.clone();
        let key = Rc::new(key);
        Enumerable::new(move || {
            let source = source.clone();
            let key = Rc::clone(&key);
            Box::new(BufferedEnumerator {
                fill: Some(Box::new(move || {
                    let mut seen = HashSet::new();
                    let mut out = Vec::new();
                    let mut e = source.get_enumerator();
                    while e.move_next() {
                        let item = e.current();
                        if seen.insert(key(&item)) {
                            out.push(item);
                        }
                    }
                    out
                })),
                buffer: Vec::new(),
                pos: 0,
            })
        })
    }

    /// `OrderBy`: stable sort by an `Ord` key (buffers on first pull).
    pub fn order_by<K: Ord + 'static>(&self, key: impl Fn(&T) -> K + 'static) -> Enumerable<T> {
        let key = Rc::new(key);
        self.order_by_with(move |a, b| key(a).cmp(&key(b)))
    }

    /// `OrderByDescending`.
    pub fn order_by_desc<K: Ord + 'static>(
        &self,
        key: impl Fn(&T) -> K + 'static,
    ) -> Enumerable<T> {
        let key = Rc::new(key);
        self.order_by_with(move |a, b| key(b).cmp(&key(a)))
    }

    /// `OrderBy` with an explicit comparator (used for `f64` and
    /// [`Value`](steno_expr::Value) keys, which are not `Ord`).
    pub fn order_by_with(
        &self,
        cmp: impl Fn(&T, &T) -> Ordering + 'static,
    ) -> Enumerable<T> {
        let source = self.clone();
        let cmp = Rc::new(cmp);
        Enumerable::new(move || {
            let source = source.clone();
            let cmp = Rc::clone(&cmp);
            Box::new(BufferedEnumerator {
                fill: Some(Box::new(move || {
                    let mut v = source.to_vec();
                    v.sort_by(|a, b| cmp(a, b));
                    v
                })),
                buffer: Vec::new(),
                pos: 0,
            })
        })
    }

    /// `GroupBy`: groups elements by `key`, preserving the order in which
    /// keys first appear (as LINQ does). The grouping is built lazily, on
    /// the first `move_next` — the Sink behaviour of §4.1.
    pub fn group_by<K: Eq + Hash + Clone + 'static>(
        &self,
        key: impl Fn(&T) -> K + 'static,
    ) -> Enumerable<Grouping<K, T>> {
        let source = self.clone();
        let key = Rc::new(key);
        Enumerable::new(move || {
            let source = source.clone();
            let key = Rc::clone(&key);
            Box::new(BufferedEnumerator {
                fill: Some(Box::new(move || {
                    let mut lookup = Lookup::new();
                    let mut e = source.get_enumerator();
                    while e.move_next() {
                        let item = e.current();
                        lookup.add(key(&item), item);
                    }
                    lookup.into_groupings()
                })),
                buffer: Vec::new(),
                pos: 0,
            })
        })
    }

    /// `GroupBy` with a result selector: applies `result` to each key and
    /// the group's elements, like the `GroupBy(key, resultSelector)`
    /// overload — the MapReduce `reduce()` signature (§4.3).
    pub fn group_by_select<K, R>(
        &self,
        key: impl Fn(&T) -> K + 'static,
        result: impl Fn(K, Enumerable<T>) -> R + 'static,
    ) -> Enumerable<R>
    where
        K: Eq + Hash + Clone + 'static,
        R: Clone + 'static,
    {
        self.group_by(key)
            .select(move |g| result(g.key().clone(), g.elements()))
    }

    /// `Join`: hash equi-join with `inner`, combining matches with
    /// `result`.
    pub fn join<U, K, R>(
        &self,
        inner: &Enumerable<U>,
        outer_key: impl Fn(&T) -> K + 'static,
        inner_key: impl Fn(&U) -> K + 'static,
        result: impl Fn(T, U) -> R + 'static,
    ) -> Enumerable<R>
    where
        U: Clone + 'static,
        K: Eq + Hash + Clone + 'static,
        R: Clone + 'static,
    {
        let outer = self.clone();
        let inner = inner.clone();
        let outer_key = Rc::new(outer_key);
        let inner_key = Rc::new(inner_key);
        let result = Rc::new(result);
        Enumerable::new(move || {
            let outer = outer.clone();
            let inner = inner.clone();
            let outer_key = Rc::clone(&outer_key);
            let inner_key = Rc::clone(&inner_key);
            let result = Rc::clone(&result);
            Box::new(BufferedEnumerator {
                fill: Some(Box::new(move || {
                    // Build a lookup of the inner side, then stream the
                    // outer side through it (hash join, as LINQ does).
                    let mut lookup: Lookup<K, U> = Lookup::new();
                    let mut e = inner.get_enumerator();
                    while e.move_next() {
                        let item = e.current();
                        lookup.add(inner_key(&item), item);
                    }
                    let mut out = Vec::new();
                    let mut o = outer.get_enumerator();
                    while o.move_next() {
                        let item = o.current();
                        if let Some(matches) = lookup.get(&outer_key(&item)) {
                            for m in matches {
                                out.push(result(item.clone(), m.clone()));
                            }
                        }
                    }
                    out
                })),
                buffer: Vec::new(),
                pos: 0,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(n: i64) -> Enumerable<i64> {
        Enumerable::from_vec((0..n).collect())
    }

    #[test]
    fn select_where_compose() {
        // The paper's running example: even squares.
        let out = ints(10).where_(|x| x % 2 == 0).select(|x| x * x).to_vec();
        assert_eq!(out, vec![0, 4, 16, 36, 64]);
    }

    #[test]
    fn chains_are_lazy() {
        use std::cell::Cell;
        let calls = Rc::new(Cell::new(0));
        let c = Rc::clone(&calls);
        let q = ints(100).select(move |x| {
            c.set(c.get() + 1);
            x
        });
        assert_eq!(calls.get(), 0, "no work before enumeration");
        let _ = q.take(3).to_vec();
        assert_eq!(calls.get(), 3, "take(3) pulls exactly three elements");
    }

    #[test]
    fn select_many_flattens() {
        let out = ints(3)
            .select_many(|x| Enumerable::from_vec(vec![x, 10 * x]))
            .to_vec();
        assert_eq!(out, vec![0, 0, 1, 10, 2, 20]);
    }

    #[test]
    fn select_many_cartesian_product() {
        // xs.SelectMany(x => ys.Select(y => (x, y))) — §5 of the paper.
        let ys = Enumerable::from_vec(vec![10i64, 20]);
        let out = ints(2)
            .select_many(move |x| ys.select(move |y| (x, y)))
            .to_vec();
        assert_eq!(out, vec![(0, 10), (0, 20), (1, 10), (1, 20)]);
    }

    #[test]
    fn take_skip() {
        assert_eq!(ints(10).take(3).to_vec(), vec![0, 1, 2]);
        assert_eq!(ints(10).skip(7).to_vec(), vec![7, 8, 9]);
        assert_eq!(ints(3).take(99).to_vec(), vec![0, 1, 2]);
        assert_eq!(ints(3).skip(99).to_vec(), Vec::<i64>::new());
        assert_eq!(ints(10).skip(2).take(3).to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn take_while_skip_while() {
        assert_eq!(ints(10).take_while(|x| x < 4).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(ints(6).skip_while(|x| x < 4).to_vec(), vec![4, 5]);
        // skip_while only skips the *prefix*.
        let v = Enumerable::from_vec(vec![1i64, 5, 1]);
        assert_eq!(v.skip_while(|x| x < 4).to_vec(), vec![5, 1]);
    }

    #[test]
    fn concat_zip_reverse() {
        let a = ints(2);
        let b = Enumerable::from_vec(vec![10i64, 11]);
        assert_eq!(a.concat(&b).to_vec(), vec![0, 1, 10, 11]);
        assert_eq!(a.zip(&b, |x, y| x + y).to_vec(), vec![10, 12]);
        assert_eq!(ints(3).reverse().to_vec(), vec![2, 1, 0]);
        // Zip stops at the shorter side.
        assert_eq!(ints(5).zip(&b, |x, y| x + y).to_vec(), vec![10, 12]);
    }

    #[test]
    fn distinct_keeps_first_occurrences() {
        let v = Enumerable::from_vec(vec![3i64, 1, 3, 2, 1]);
        assert_eq!(v.distinct_by(|x| *x).to_vec(), vec![3, 1, 2]);
    }

    #[test]
    fn order_by_is_stable() {
        let v = Enumerable::from_vec(vec![(2, 'a'), (1, 'b'), (2, 'c'), (1, 'd')]);
        let sorted = v.order_by(|p| p.0).to_vec();
        assert_eq!(sorted, vec![(1, 'b'), (1, 'd'), (2, 'a'), (2, 'c')]);
        let desc = v.order_by_desc(|p| p.0).to_vec();
        assert_eq!(desc, vec![(2, 'a'), (2, 'c'), (1, 'b'), (1, 'd')]);
    }

    #[test]
    fn group_by_preserves_first_key_order() {
        let v = Enumerable::from_vec(vec![1i64, 4, 2, 5, 7, 8]);
        let groups = v.group_by(|x| x % 3).to_vec();
        let keys: Vec<i64> = groups.iter().map(|g| *g.key()).collect();
        assert_eq!(keys, vec![1, 2]); // order of first appearance
        assert_eq!(groups[0].to_vec(), vec![1, 4, 7]);
        assert_eq!(groups[1].to_vec(), vec![2, 5, 8]);
    }

    #[test]
    fn group_by_select_aggregates_groups() {
        let v = Enumerable::from_vec(vec![1i64, 2, 3, 4, 5]);
        let mut sums = v
            .group_by_select(|x| x % 2, |k, g| (k, g.aggregate(0i64, |a, x| a + x)))
            .to_vec();
        sums.sort();
        assert_eq!(sums, vec![(0, 6), (1, 9)]);
    }

    #[test]
    fn join_is_an_equi_join() {
        let people = Enumerable::from_vec(vec![(1i64, "ann"), (2, "bob"), (3, "cy")]);
        let pets = Enumerable::from_vec(vec![(1i64, "rex"), (3, "tom"), (1, "flo")]);
        let out = people
            .join(&pets, |p| p.0, |q| q.0, |p, q| (p.1, q.1))
            .to_vec();
        assert_eq!(out, vec![("ann", "rex"), ("ann", "flo"), ("cy", "tom")]);
    }

    #[test]
    fn enumerable_clone_shares_definition() {
        let q = ints(4).select(|x| x + 1);
        let q2 = q.clone();
        assert_eq!(q.to_vec(), q2.to_vec());
    }
}
