/root/repo/target/debug/deps/fig_vectorized-e8749689ebfe0450.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/debug/deps/fig_vectorized-e8749689ebfe0450: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
