/root/repo/target/debug/deps/pipeline_properties-ceb2a53a00f5dfec.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-ceb2a53a00f5dfec: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
