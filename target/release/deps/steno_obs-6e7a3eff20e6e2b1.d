/root/repo/target/release/deps/steno_obs-6e7a3eff20e6e2b1.d: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs

/root/repo/target/release/deps/libsteno_obs-6e7a3eff20e6e2b1.rlib: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs

/root/repo/target/release/deps/libsteno_obs-6e7a3eff20e6e2b1.rmeta: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs

crates/steno-obs/src/lib.rs:
crates/steno-obs/src/json.rs:
crates/steno-obs/src/metrics.rs:
