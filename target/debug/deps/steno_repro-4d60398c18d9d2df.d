/root/repo/target/debug/deps/steno_repro-4d60398c18d9d2df.d: src/lib.rs src/prng.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_repro-4d60398c18d9d2df.rmeta: src/lib.rs src/prng.rs Cargo.toml

src/lib.rs:
src/prng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
