/root/repo/target/debug/deps/fig13_micro-5f8b14fb59ea5b68.d: crates/bench/benches/fig13_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_micro-5f8b14fb59ea5b68.rmeta: crates/bench/benches/fig13_micro.rs Cargo.toml

crates/bench/benches/fig13_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
