/root/repo/target/debug/deps/fig14-44855966faa0ea13.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-44855966faa0ea13: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
