/root/repo/target/release/deps/fig01-99821cbf75a98226.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-99821cbf75a98226: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
