/root/repo/target/debug/deps/fig01-122196dd0c734de3.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-122196dd0c734de3: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
