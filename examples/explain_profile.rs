//! Observability tour: EXPLAIN plans, per-query profiles, and the
//! metrics collector.
//!
//! Walks the full `steno-obs` surface:
//!
//! 1. `Steno::explain` — where the optimizer sent each loop (vectorized
//!    / fused / scalar) and, when vectorization was refused, the exact
//!    reason,
//! 2. `Steno::execute_profiled` — the per-query `QueryProfile`
//!    (batches, selection density, scalar work, cache hits),
//! 3. `MemoryCollector` — engine- and cluster-level counters and
//!    latency histograms, snapshotted as stable JSON.
//!
//! Run with `cargo run --release --example explain_profile`.

use std::sync::Arc;

use steno::prelude::*;

fn main() -> Result<(), StenoError> {
    let data: Vec<f64> = (0..10_000).map(|i| f64::from(i) / 100.0).collect();
    let ctx = DataContext::new().with_source("xs", data.clone());
    let udfs = UdfRegistry::new();

    // Wire a collector into the engine. The default is a NoopCollector:
    // zero-cost, nothing recorded.
    let metrics = Arc::new(MemoryCollector::new());
    let engine = Steno::new().with_collector(metrics.clone());

    // ---- 1. EXPLAIN: a fully vectorizable pipeline. ----
    let q = Query::source("xs")
        .where_(Expr::var("x").gt(Expr::litf(25.0)), "x")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let explain = engine.explain(&q, (&ctx).into(), &udfs)?;
    println!("{explain}");
    println!("as JSON: {}\n", explain.to_json());

    // The backend optimizer's decisions ride along in the same plan:
    // fused batch kernels (whole-tape single-pass loops), recycled batch
    // columns, hoisted constants, and threaded scalar pairs.
    let q_int = Query::source("ns")
        .where_((Expr::var("x") % Expr::liti(3)).eq(Expr::liti(0)), "x")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let ctx_int =
        DataContext::new().with_source("ns", (0..10_000).collect::<Vec<i64>>());
    let explain_int = engine.explain(&q_int, (&ctx_int).into(), &udfs)?;
    println!("{explain_int}");

    // ---- 2. EXPLAIN: a UDF refuses vectorization; the plan says why. ----
    let mut with_udf = UdfRegistry::new();
    with_udf.register("clip", vec![Ty::F64], Ty::F64, |args: &[Value]| {
        Value::F64(args[0].as_f64().unwrap_or(0.0).min(50.0))
    });
    let q_udf = Query::source("xs")
        .select(Expr::call("clip", vec![Expr::var("x")]), "x")
        .sum()
        .build();
    println!("{}", engine.explain(&q_udf, (&ctx).into(), &with_udf)?);

    // ---- 3. Per-query profile: what the run actually did. ----
    let (value, path, profile) = engine.execute_profiled(&q, &ctx, &udfs)?;
    println!("result {value} via {path:?}");
    println!("{profile}");
    println!("profile JSON: {}\n", profile.to_json());

    // Run it twice more: the compiled program is served from the cache.
    for _ in 0..2 {
        engine.execute(&q, &ctx, &udfs)?;
    }

    // ---- 4. Cluster telemetry folds into the same collector. ----
    let input = DistributedCollection::from_f64("xs", data, 8);
    let (_, report) = engine.execute_distributed(
        &q,
        &input,
        &DataContext::new(),
        &udfs,
        &ClusterSpec { workers: 4 },
        VertexEngine::Steno,
    )?;
    println!("{report}\n");

    // ---- 5. Feedback-directed optimization: the profile→plan loop. ----
    // An adaptive engine keeps decayed per-plan statistics and
    // recompiles when the workload departs the plan's assumptions. The
    // query is spelled pessimally — the keep-everything filter first —
    // and the initial compile has no observations, so it must trust the
    // text order.
    let adaptive = Steno::new().with_adaptive(true).with_collector(metrics.clone());
    let q_drift = Query::source("xs")
        .where_(Expr::var("x").gt(Expr::litf(-1.0e9)), "x") // keeps everything
        .where_(Expr::var("x").gt(Expr::litf(25.0)), "x") // selective after the drift
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let n = 200_000;
    let dense: Vec<f64> = (0..n)
        .map(|i| if i % 20 == 0 { 1.0 } else { 30.0 })
        .collect();
    let sparse: Vec<f64> = (0..n)
        .map(|i| if i % 50 == 0 { 30.0 } else { 1.0 })
        .collect();
    let dense_ctx = DataContext::new().with_source("xs", dense);
    let sparse_ctx = DataContext::new().with_source("xs", sparse);
    for _ in 0..24 {
        adaptive.execute(&q_drift, &dense_ctx, &udfs)?;
    }
    // The workload drifts: the second filter's selectivity collapses
    // from ~95% to ~2%. The drift detector (decayed stats, hysteresis)
    // notices, re-optimizes against the live data, and the verifier
    // checks the rewritten plan before it is installed.
    for _ in 0..128 {
        adaptive.execute(&q_drift, &sparse_ctx, &udfs)?;
        let explained = adaptive.explain(&q_drift, (&sparse_ctx).into(), &udfs)?;
        if explained.render().contains("reopt:") {
            break;
        }
    }
    println!("{}", adaptive.explain(&q_drift, (&sparse_ctx).into(), &udfs)?);

    // ---- 6. The metrics snapshot: counters + histograms, as JSON. ----
    let snapshot = metrics.snapshot();
    println!("{snapshot}");
    println!("snapshot JSON: {}", snapshot.to_json());
    Ok(())
}
