/root/repo/target/debug/deps/steno_quil-46214c0f09aeed0c.d: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

/root/repo/target/debug/deps/libsteno_quil-46214c0f09aeed0c.rlib: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

/root/repo/target/debug/deps/libsteno_quil-46214c0f09aeed0c.rmeta: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

crates/steno-quil/src/lib.rs:
crates/steno-quil/src/grammar.rs:
crates/steno-quil/src/ir.rs:
crates/steno-quil/src/lower.rs:
crates/steno-quil/src/parallel.rs:
crates/steno-quil/src/passes.rs:
crates/steno-quil/src/substitute.rs:
