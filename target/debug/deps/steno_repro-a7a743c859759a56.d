/root/repo/target/debug/deps/steno_repro-a7a743c859759a56.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/steno_repro-a7a743c859759a56: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
