/root/repo/target/debug/deps/fig_vectorized-878d94240688d2b0.d: crates/bench/src/bin/fig_vectorized.rs Cargo.toml

/root/repo/target/debug/deps/libfig_vectorized-878d94240688d2b0.rmeta: crates/bench/src/bin/fig_vectorized.rs Cargo.toml

crates/bench/src/bin/fig_vectorized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
