/root/repo/target/debug/deps/steno_cluster-1bb537fc8c91aeba.d: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_cluster-1bb537fc8c91aeba.rmeta: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs Cargo.toml

crates/steno-cluster/src/lib.rs:
crates/steno-cluster/src/chain_interp.rs:
crates/steno-cluster/src/exec.rs:
crates/steno-cluster/src/fault.rs:
crates/steno-cluster/src/job.rs:
crates/steno-cluster/src/partition.rs:
crates/steno-cluster/src/retry.rs:
crates/steno-cluster/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
