//! The register bytecode.
//!
//! Registers live in three banks, assigned by static type: `f64` values in
//! the F bank, `i64` and booleans (0/1) in the I bank, and compound
//! [`Value`]s in the V bank. Keeping scalars unboxed in their own banks is
//! the VM-level counterpart of the paper's *type specialization* (§4):
//! the hot loop of a numeric query touches only unboxed registers.

use steno_expr::{Ty, Value};

/// An F-bank (f64) register index.
pub type FReg = u32;
/// An I-bank (i64 / bool) register index.
pub type IReg = u32;
/// A V-bank (boxed [`Value`]) register index.
pub type VReg = u32;
/// An instruction address.
pub type Pc = u32;
/// A prepared-source index.
pub type SrcId = u32;
/// A sink index.
pub type SinkId = u32;
/// A UDF index.
pub type UdfId = u32;

/// A comparison operator carried by the fused compare-and-branch
/// superinstructions (see [`crate::lifetimes::fuse_scalar_pairs`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A scalar grouping-key operand: which register bank holds the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SKey {
    /// An f64 key in the F bank.
    F(FReg),
    /// An i64 key in the I bank.
    I(IReg),
    /// A boolean key (0/1) in the I bank.
    B(IReg),
}

/// One bytecode instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    // ---- control flow ----
    /// Unconditional jump.
    Jump(Pc),
    /// Jump when the I-register is zero (false).
    JumpIfFalse(IReg, Pc),
    /// Jump when the I-register is non-zero (true).
    JumpIfTrue(IReg, Pc),

    // ---- constants and moves ----
    /// Load an f64 constant.
    ConstF(FReg, f64),
    /// Load an i64 (or boolean) constant.
    ConstI(IReg, i64),
    /// Load a boxed constant (cloned from the program's pool).
    ConstV(VReg, Value),
    /// Copy between F registers.
    MovF(FReg, FReg),
    /// Copy between I registers.
    MovI(IReg, IReg),
    /// Copy between V registers.
    MovV(VReg, VReg),

    // ---- f64 arithmetic ----
    /// `dst = a + b`.
    AddF(FReg, FReg, FReg),
    /// `dst = a - b`.
    SubF(FReg, FReg, FReg),
    /// `dst = a * b`.
    MulF(FReg, FReg, FReg),
    /// `dst = a / b` (IEEE semantics).
    DivF(FReg, FReg, FReg),
    /// `dst = a % b`.
    RemF(FReg, FReg, FReg),
    /// `dst = -a`.
    NegF(FReg, FReg),
    /// `dst = a.abs()`.
    AbsF(FReg, FReg),
    /// `dst = a.sqrt()`.
    SqrtF(FReg, FReg),
    /// `dst = a.floor()`.
    FloorF(FReg, FReg),
    /// `dst = a.min(b)`.
    MinF(FReg, FReg, FReg),
    /// `dst = a.max(b)`.
    MaxF(FReg, FReg, FReg),

    // ---- i64 arithmetic (wrapping, like unchecked C#) ----
    /// `dst = a + b`.
    AddI(IReg, IReg, IReg),
    /// `dst = a - b`.
    SubI(IReg, IReg, IReg),
    /// `dst = a * b`.
    MulI(IReg, IReg, IReg),
    /// `dst = a / b`; errors on division by zero.
    DivI(IReg, IReg, IReg),
    /// `dst = a % b`; errors on division by zero.
    RemI(IReg, IReg, IReg),
    /// `dst = -a`.
    NegI(IReg, IReg),
    /// `reg += 1` (loop induction variables).
    IncI(IReg),
    /// `dst = a.abs()`.
    AbsI(IReg, IReg),
    /// `dst = a.min(b)`.
    MinI(IReg, IReg, IReg),
    /// `dst = a.max(b)`.
    MaxI(IReg, IReg, IReg),
    /// Boolean negation (`dst = 1 - a` for 0/1 values).
    NotB(IReg, IReg),

    // ---- comparisons (result in the I bank as 0/1) ----
    /// `dst = (a == b)` over f64 (IEEE: NaN is unequal).
    EqF(IReg, FReg, FReg),
    /// `dst = (a != b)` over f64.
    NeF(IReg, FReg, FReg),
    /// `dst = (a < b)` over f64.
    LtF(IReg, FReg, FReg),
    /// `dst = (a <= b)` over f64.
    LeF(IReg, FReg, FReg),
    /// `dst = (a > b)` over f64.
    GtF(IReg, FReg, FReg),
    /// `dst = (a >= b)` over f64.
    GeF(IReg, FReg, FReg),
    /// `dst = (a == b)` over i64/bool.
    EqI(IReg, IReg, IReg),
    /// `dst = (a != b)` over i64/bool.
    NeI(IReg, IReg, IReg),
    /// `dst = (a < b)` over i64.
    LtI(IReg, IReg, IReg),
    /// `dst = (a <= b)` over i64.
    LeI(IReg, IReg, IReg),
    /// `dst = (a > b)` over i64.
    GtI(IReg, IReg, IReg),
    /// `dst = (a >= b)` over i64.
    GeI(IReg, IReg, IReg),
    /// `dst = (a == b)` over boxed values (structural).
    EqV(IReg, VReg, VReg),
    /// Three-way total comparison of boxed values: -1/0/1.
    CmpV(IReg, VReg, VReg),

    // ---- casts and boxing ----
    /// `dst = a as i64`.
    F2I(IReg, FReg),
    /// `dst = a as f64`.
    I2F(FReg, IReg),
    /// Box an f64.
    FToV(VReg, FReg),
    /// Box an i64.
    IToV(VReg, IReg),
    /// Box a boolean (0/1 I-register).
    BToV(VReg, IReg),
    /// Unbox an f64 (accepts `I64` with conversion).
    VToF(FReg, VReg),
    /// Unbox an i64.
    VToI(IReg, VReg),
    /// Unbox a boolean into 0/1.
    VToB(IReg, VReg),

    // ---- compound values ----
    /// `dst = (a, b)`.
    MkPair(VReg, VReg, VReg),
    /// `dst = pair.0`.
    Field0(VReg, VReg),
    /// `dst = pair.1`.
    Field1(VReg, VReg),
    /// `dst = row[idx]` (f64); errors when out of bounds.
    RowIdx(FReg, VReg, IReg),
    /// `dst = row.len()`.
    RowLen(IReg, VReg),
    /// `dst = seq.len()` (also accepts rows).
    SeqLen(IReg, VReg),
    /// `dst = seq[idx]` (boxed); errors when out of bounds.
    SeqIdx(VReg, VReg, IReg),

    // ---- user-defined functions ----
    /// Call a registered UDF with boxed arguments.
    CallUdf {
        /// Destination (boxed).
        dst: VReg,
        /// UDF index in the prepared registry.
        udf: UdfId,
        /// Argument registers.
        args: Vec<VReg>,
    },

    // ---- sources ----
    /// `dst = len(source)`.
    SrcLen(IReg, SrcId),
    /// `dst = source[idx]` for an f64 column.
    SrcGetF(FReg, SrcId, IReg),
    /// `dst = source[idx]` for an i64 column.
    SrcGetI(IReg, SrcId, IReg),
    /// `dst = source[idx]` for a bool column (as 0/1).
    SrcGetB(IReg, SrcId, IReg),
    /// `dst = source[idx]` boxed (rows, generic values).
    SrcGetV(VReg, SrcId, IReg),

    // ---- sinks ----
    /// Initialize a `Lookup` group sink.
    SinkNewGroup(SinkId),
    /// Initialize a grouped-aggregate sink with a boxed default.
    SinkNewGroupAggV(SinkId, VReg),
    /// Initialize a grouped-aggregate sink with an f64 default.
    SinkNewGroupAggF(SinkId, FReg),
    /// Initialize a grouped-aggregate sink with an i64 default.
    SinkNewGroupAggI(SinkId, IReg),
    /// Initialize a fully-scalar grouped-aggregate sink (f64 acc).
    SinkNewGroupAggSF(SinkId, FReg),
    /// Initialize a fully-scalar grouped-aggregate sink (i64 acc).
    SinkNewGroupAggSI(SinkId, IReg),
    /// Initialize a sort sink.
    SinkNewSorted(SinkId, bool),
    /// Initialize a distinct sink.
    SinkNewDistinct(SinkId),
    /// Initialize a plain buffer sink.
    SinkNewVec(SinkId),
    /// Append `(key, value)` to a group sink.
    GroupPut(SinkId, VReg, VReg),
    /// Load the accumulator for `key` (or the default) into a boxed
    /// register, remembering the slot for the following store.
    GroupAccLoadV(SinkId, VReg, VReg),
    /// Store the boxed accumulator back to the remembered slot.
    GroupAccStoreV(SinkId, VReg),
    /// Scalar fast path of [`Instr::GroupAccLoadV`] for f64 accumulators.
    GroupAccLoadF(SinkId, FReg, VReg),
    /// Scalar fast path of [`Instr::GroupAccStoreV`].
    GroupAccStoreF(SinkId, FReg),
    /// Scalar fast path for i64 accumulators.
    GroupAccLoadI(SinkId, IReg, VReg),
    /// Scalar fast path for i64 accumulators.
    GroupAccStoreI(SinkId, IReg),
    /// Fully-scalar load: f64 accumulator, scalar key register.
    GroupAccLoadSF(SinkId, FReg, SKey),
    /// Fully-scalar load: i64 accumulator, scalar key register.
    GroupAccLoadSI(SinkId, IReg, SKey),
    /// Fully-scalar store to the remembered slot (f64 acc).
    GroupAccStoreSF(SinkId, FReg),
    /// Fully-scalar store to the remembered slot (i64 acc).
    GroupAccStoreSI(SinkId, IReg),
    /// Push a value into a vec/distinct sink.
    SinkPush(SinkId, VReg),
    /// Push a keyed value into a sort sink.
    SinkPushKeyed(SinkId, VReg, VReg),
    /// Finalize a sort sink (sorts its buffer).
    SinkSeal(SinkId),
    /// Materialize the sink contents for iteration.
    SinkFreeze(SinkId),
    /// `dst = frozen sink length`.
    SinkLen(IReg, SinkId),
    /// `dst = frozen sink [idx]` (boxed).
    SinkGet(VReg, SinkId, IReg),

    // ---- fused superinstructions (threaded scalar dispatch) ----
    //
    // The hottest instruction pairs of scalar loop bodies, fused by
    // `crate::lifetimes::fuse_scalar_pairs` so a loop back-edge costs one
    // dispatch instead of two or three. Semantics are exactly the pair
    // they replace, including back-edge interrupt polling.
    /// Compare two F registers and jump to `target` when the result
    /// equals `on_true` (a fused `CmpF` + `JumpIf*`; the 0/1 result is
    /// not materialized).
    BrCmpF {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        a: FReg,
        /// Right operand.
        b: FReg,
        /// Jump on `true` (`JumpIfTrue`) or on `false` (`JumpIfFalse`).
        on_true: bool,
        /// Branch target.
        target: Pc,
    },
    /// Compare two I registers and jump (fused `CmpI` + `JumpIf*`).
    BrCmpI {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        a: IReg,
        /// Right operand.
        b: IReg,
        /// Jump on `true` or on `false`.
        on_true: bool,
        /// Branch target.
        target: Pc,
    },
    /// `reg += 1; jump target` — the loop back-edge pair.
    IncJump {
        /// The induction register.
        r: IReg,
        /// The loop header.
        target: Pc,
    },
    /// `dst = a * b + c` with two roundings (fused `MulF` + `AddF`, not
    /// an FMA).
    MulAddF(FReg, FReg, FReg, FReg),
    /// `dst = a * b + c`, wrapping (fused `MulI` + `AddI`).
    MulAddI(IReg, IReg, IReg, IReg),

    // ---- output ----
    /// Append a boxed value to the output buffer.
    OutPush(VReg),
    /// A fused whole-loop kernel over an f64 source (see [`crate::fuse`]).
    FusedLoop(crate::fuse::KernelRef),
    /// A vectorized whole-loop batch program over a typed source
    /// (see [`crate::batch`]).
    BatchLoop(crate::batch::BatchRef),
    /// Terminate returning an f64.
    HaltF(FReg),
    /// Terminate returning an i64.
    HaltI(IReg),
    /// Terminate returning a boolean.
    HaltB(IReg),
    /// Terminate returning a boxed value.
    HaltV(VReg),
    /// Terminate returning the output buffer as a sequence.
    HaltOut,
}

/// Which execution tier a source loop landed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopTier {
    /// Compiled to a [`Instr::BatchLoop`] column-at-a-time program.
    Vectorized,
    /// Compiled to a [`Instr::FusedLoop`] whole-loop kernel.
    Fused,
    /// Compiled to plain element-at-a-time bytecode.
    Scalar,
}

impl std::fmt::Display for LoopTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LoopTier::Vectorized => "vectorized",
            LoopTier::Fused => "fused",
            LoopTier::Scalar => "scalar",
        })
    }
}

/// Why the vectorizer refused a loop.
///
/// Structured counterpart of the old free-form fallback strings:
/// `Display` reproduces those strings byte-for-byte (the EXPLAIN text
/// and JSON forms are stable across the conversion), while
/// [`FallbackReason::code`] gives a coarse machine-readable category.
#[derive(Clone, Debug, PartialEq)]
pub enum FallbackReason {
    /// The loop header is not a scan over a prepared source column.
    NotSourceLoop,
    /// The source's element type has no unboxed batch lane.
    BoxedSource(Ty),
    /// A loop-local declaration has a boxed type.
    BoxedLocal(Ty),
    /// A declaration's type disagrees with its initializer's lane.
    DeclLaneMismatch(Ty),
    /// A cast with no batch kernel.
    CastUnsupported(Ty),
    /// A statement form with no batch equivalent (payload from
    /// `stmt_kind`).
    Statement(&'static str),
    /// An expression form with no batch equivalent (payload from
    /// `expr_kind`).
    Expression(&'static str),
    /// An operator with no batch kernel on the given lane.
    Operator {
        /// The operator symbol.
        op: &'static str,
        /// The lane it was applied on (`"f64"` / `"i64"`).
        lane: &'static str,
    },
    /// A unary operator applied on a lane it has no kernel for.
    UnaryWrongLane(&'static str),
    /// A compile-time resource budget was exceeded (payload names the
    /// budget: `"f64 slot"`, `"parameter"`, `"accumulator"`, …).
    Budget(&'static str),
    /// A trapping op under a conditional branch: lane-wise select
    /// evaluates both branches on every lane, the scalar semantics only
    /// one.
    TrapUnderConditional,
    /// A trapping op in a short-circuit right operand: eager batch
    /// evaluation would trap on lanes the scalar semantics never
    /// reaches.
    TrapUnderShortCircuit,
    /// A grouped fold ignores its value operand, but dropping it would
    /// erase a trap the scalar semantics produces.
    DroppedValueMayTrap,
    /// An accumulator was read inside a value pipeline.
    AccumulatorInPipeline(String),
    /// A free variable is not an unboxed scalar register.
    NotUnboxedScalar(String),
    /// An assigned variable is not an unboxed f64/i64 accumulator.
    NotUnboxedAccumulator(String),
    /// A sink name with no compiled sink (indicates a codegen bug).
    UnknownSink(String),
    /// Operand lanes disagree (payload names the construct:
    /// `"comparison"`, `"arithmetic"`, `"fold"`, …).
    LaneMismatch(&'static str),
    /// A loop/statement shape the batcher does not recognize; the
    /// payload is the full message.
    Shape(&'static str),
}

impl FallbackReason {
    /// A coarse kebab-case category for machine consumption (JSON
    /// explain output groups on this).
    pub fn code(&self) -> &'static str {
        match self {
            FallbackReason::NotSourceLoop
            | FallbackReason::UnknownSink(_)
            | FallbackReason::Shape(_) => "loop-shape",
            FallbackReason::BoxedSource(_)
            | FallbackReason::BoxedLocal(_)
            | FallbackReason::NotUnboxedScalar(_)
            | FallbackReason::NotUnboxedAccumulator(_)
            | FallbackReason::AccumulatorInPipeline(_) => "boxed-value",
            FallbackReason::DeclLaneMismatch(_) | FallbackReason::LaneMismatch(_) => {
                "lane-mismatch"
            }
            FallbackReason::CastUnsupported(_)
            | FallbackReason::Expression(_)
            | FallbackReason::Operator { .. }
            | FallbackReason::UnaryWrongLane(_) => "unsupported-expression",
            FallbackReason::Statement(_) => "unsupported-statement",
            FallbackReason::Budget(_) => "budget",
            FallbackReason::TrapUnderConditional
            | FallbackReason::TrapUnderShortCircuit
            | FallbackReason::DroppedValueMayTrap => "trap-semantics",
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::NotSourceLoop => f.write_str("loop is not over a source column"),
            FallbackReason::BoxedSource(ty) => {
                write!(f, "source element type {ty} is boxed")
            }
            FallbackReason::BoxedLocal(ty) => write!(f, "loop-local of boxed type {ty}"),
            FallbackReason::DeclLaneMismatch(ty) => {
                write!(f, "declaration of type {ty} got the wrong lane")
            }
            FallbackReason::CastUnsupported(ty) => write!(f, "cast to {ty} not vectorizable"),
            FallbackReason::Statement(kind) => {
                write!(f, "statement not batch-eligible: {kind}")
            }
            FallbackReason::Expression(kind) => {
                write!(f, "expression not vectorizable: {kind}")
            }
            FallbackReason::Operator { op, lane } => {
                write!(f, "operator {op} not vectorizable on {lane}")
            }
            FallbackReason::UnaryWrongLane(op) => write!(f, "unary {op} on the wrong lane"),
            FallbackReason::Budget(what) => write!(f, "{what} budget exceeded"),
            FallbackReason::TrapUnderConditional => {
                f.write_str("trapping op under a conditional branch")
            }
            FallbackReason::TrapUnderShortCircuit => {
                f.write_str("trapping op under a short-circuit operand")
            }
            FallbackReason::DroppedValueMayTrap => {
                f.write_str("dropped group value could trap")
            }
            FallbackReason::AccumulatorInPipeline(name) => {
                write!(f, "accumulator `{name}` read inside a value pipeline")
            }
            FallbackReason::NotUnboxedScalar(name) => {
                write!(f, "variable `{name}` is not an unboxed scalar")
            }
            FallbackReason::NotUnboxedAccumulator(name) => {
                write!(f, "assigned variable `{name}` is not an unboxed f64/i64 accumulator")
            }
            FallbackReason::UnknownSink(name) => write!(f, "unknown sink `{name}`"),
            FallbackReason::LaneMismatch(what) => write!(f, "{what} lane mismatch"),
            FallbackReason::Shape(msg) => f.write_str(msg),
        }
    }
}

/// The compiler's tier decision for one loop, in compilation order
/// (outer loops before the loops nested inside them).
#[derive(Clone, Debug, PartialEq)]
pub struct LoopPlan {
    /// The tier the loop landed in.
    pub tier: LoopTier,
    /// When the vectorizer was enabled but refused this loop, the exact
    /// reason it gave; `None` for vectorized loops or a disabled tier.
    pub vectorize_fallback: Option<FallbackReason>,
    /// When the cost model (rather than the static tier order) picked
    /// this loop's tier, its rationale — rendered verbatim as the
    /// `chosen-by:` line in `EXPLAIN`. `None` means the static order
    /// decided.
    pub chosen_by: Option<String>,
}

/// The scalar tape exactly as assembled, captured before the backend
/// optimization passes (`hoist_loop_invariant_consts`, `fuse_scalar_pairs`,
/// `shrink_frames`) run. The tape verifier ([`crate::check`]) treats this
/// as the reference semantics and proves the optimized tape equivalent to
/// it; execution never touches it.
#[derive(Clone, Debug)]
pub struct ScalarShadow {
    /// The pre-optimization instructions.
    pub instrs: Vec<Instr>,
    /// F-register frame size before `shrink_frames`.
    pub n_fregs: u32,
    /// I-register frame size before `shrink_frames`.
    pub n_iregs: u32,
    /// V-register frame size before `shrink_frames`.
    pub n_vregs: u32,
}

/// A complete bytecode program.
#[derive(Clone, Debug)]
pub struct Program {
    /// The instructions.
    pub instrs: Vec<Instr>,
    /// Number of F registers.
    pub n_fregs: u32,
    /// Number of I registers.
    pub n_iregs: u32,
    /// Number of V registers.
    pub n_vregs: u32,
    /// Number of sinks.
    pub n_sinks: u32,
    /// Number of loops compiled by the fusion tier.
    pub n_fused: u32,
    /// Number of loops compiled by the vectorized tier.
    pub n_batch: u32,
    /// Why loops (if any) fell back from the vectorized tier, in
    /// compilation order and deduplicated (two loops refused for the
    /// same reason list it once). Empty when everything vectorized or
    /// the tier was disabled.
    pub batch_fallbacks: Vec<FallbackReason>,
    /// Per-lane integer-division trap guards the compiler dropped
    /// because range analysis proved the divisor non-zero.
    pub n_guards_dropped: u32,
    /// Tier decision per compiled loop, in compilation order. The EXPLAIN
    /// facility renders these; counts agree with `n_fused`/`n_batch`.
    pub loop_plans: Vec<LoopPlan>,
    /// Display names of the fused batch kernels the backend installed
    /// (whole-tape shapes first, then peephole pairs), in loop order.
    pub fused_kernels: Vec<String>,
    /// Batch-column slots eliminated by lifetime-driven slot packing,
    /// summed over all vectorized loops.
    pub n_slots_reused: u32,
    /// Loop-invariant constant loads hoisted out of loop bodies.
    pub n_hoisted: u32,
    /// Scalar instruction pairs fused into superinstructions.
    pub n_superinstrs: u32,
    /// Source names in [`SrcId`] order.
    pub source_names: Vec<String>,
    /// UDF names in [`UdfId`] order.
    pub udf_names: Vec<String>,
    /// Result type of the program.
    pub result_ty: Ty,
    /// Pre-optimization reference tape for translation validation, or
    /// `None` for hand-assembled programs (the checker then skips the
    /// scalar-equivalence obligation and checks the tape standalone).
    pub shadow: Option<std::sync::Arc<ScalarShadow>>,
}

impl Program {
    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` for an empty program (never produced by the compiler).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instructions_are_compact() {
        // The interpreter's dispatch cost scales with instruction size;
        // keep the common case within two cache lines.
        assert!(
            std::mem::size_of::<Instr>() <= 48,
            "Instr grew to {} bytes",
            std::mem::size_of::<Instr>()
        );
    }
}
