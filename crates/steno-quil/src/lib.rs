//! QUIL: the Query Intermediate Language of Steno (§4.1).
//!
//! QUIL reduces the many LINQ operators to six fundamental symbols:
//!
//! | QUIL symbol | LINQ operators            | Haskell equivalent |
//! |-------------|---------------------------|--------------------|
//! | `Src`       | source, `Range`, `Repeat` | list constructor   |
//! | `Trans`     | `Select`                  | `map`              |
//! | `Pred`      | `Where`, `Take`, `Skip`…  | `filter`           |
//! | `Sink`      | `GroupBy`, `OrderBy`…     | `foldl`            |
//! | `Agg`       | `Aggregate`, `Min`, `Sum`…| `foldl`            |
//! | (nested)    | `SelectMany`, `Join`      | `concatMap`        |
//! | `Ret`       | —                         | —                  |
//!
//! and constrains their composition with the grammar
//!
//! ```text
//! (query) ::= Src ( Trans | Pred | Sink | (query) )* Agg? Ret
//! ```
//!
//! This crate provides:
//!
//! * [`ir`] — the typed QUIL chain representation ([`QuilChain`]),
//! * [`grammar`] — the finite state machine of Fig. 4 and its pushdown
//!   extension for nested queries (§5.1),
//! * [`lower()`] — lowering from [`QueryExpr`](steno_query::QueryExpr) ASTs
//!   (post-order traversal with overload canonicalization, §3.1),
//! * [`passes`] — the GroupByAggregate operator specialization (§4.3),
//! * [`parallel`] — homomorphic-subquery splitting and partial-aggregation
//!   decomposition for parallel and distributed plans (§6).

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod grammar;
pub mod ir;
pub mod lower;
pub mod parallel;
pub mod passes;
pub mod substitute;

pub use grammar::{Fsm, FsmState, QuilSym, Tok};
pub use ir::{
    AggDesc, AggKind, NestedTrans, OpSpan, PredKind, QuilChain, QuilOp, SinkKind, SinkOp, SrcDesc,
    TransKind,
};
pub use lower::{lower, lower_with, LowerError, LowerOptions};
