/root/repo/target/debug/examples/histogram-0fa55a6ae2e60e79.d: examples/histogram.rs Cargo.toml

/root/repo/target/debug/examples/libhistogram-0fa55a6ae2e60e79.rmeta: examples/histogram.rs Cargo.toml

examples/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
