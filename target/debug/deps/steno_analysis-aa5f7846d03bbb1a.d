/root/repo/target/debug/deps/steno_analysis-aa5f7846d03bbb1a.d: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

/root/repo/target/debug/deps/steno_analysis-aa5f7846d03bbb1a: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

crates/steno-analysis/src/lib.rs:
crates/steno-analysis/src/facts.rs:
crates/steno-analysis/src/lint.rs:
crates/steno-analysis/src/verify.rs:
