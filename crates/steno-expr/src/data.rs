//! Source collections: the data model over which queries run.
//!
//! A [`DataContext`] maps source names (the `xs` in `from x in xs`) to
//! [`Column`]s. Columns are stored type-specialized — a plain `Vec<f64>`
//! for doubles, a flat matrix for rows — because the Src operator in the
//! paper "may be annotated with the collection's run-time type, which
//! enables Steno to produce efficient iteration code" (§4.1).

use std::collections::HashMap;
use std::sync::Arc;

use crate::ty::Ty;
use crate::value::Value;

/// A typed source collection.
#[derive(Clone, Debug)]
pub enum Column {
    /// A column of doubles.
    F64(Arc<Vec<f64>>),
    /// A column of integers.
    I64(Arc<Vec<i64>>),
    /// A column of booleans.
    Bool(Arc<Vec<bool>>),
    /// A collection of fixed-dimension points stored row-major.
    Rows {
        /// Flat row-major storage of `len() * dim` doubles.
        data: Arc<Vec<f64>>,
        /// Dimension of each row. Must be non-zero.
        dim: usize,
    },
    /// A collection of arbitrary boxed values (the generic fallback, which
    /// is what an opaque `IEnumerable` looks like to the optimizer).
    Values(Arc<Vec<Value>>),
}

impl Column {
    /// Builds an `F64` column.
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column::F64(Arc::new(values))
    }

    /// Builds an `I64` column.
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column::I64(Arc::new(values))
    }

    /// Builds a `Bool` column.
    pub fn from_bool(values: Vec<bool>) -> Column {
        Column::Bool(Arc::new(values))
    }

    /// Builds a `Rows` column from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_rows(data: Vec<f64>, dim: usize) -> Column {
        assert!(dim > 0, "row dimension must be non-zero");
        assert!(
            data.len().is_multiple_of(dim),
            "row data length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Column::Rows {
            data: Arc::new(data),
            dim,
        }
    }

    /// Builds a generic `Values` column.
    pub fn from_values(values: Vec<Value>) -> Column {
        Column::Values(Arc::new(values))
    }

    /// The number of elements in the collection.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Rows { data, dim } => data.len() / dim,
            Column::Values(v) => v.len(),
        }
    }

    /// `true` when the collection has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type of the collection.
    pub fn elem_ty(&self) -> Ty {
        match self {
            Column::F64(_) => Ty::F64,
            Column::I64(_) => Ty::I64,
            Column::Bool(_) => Ty::Bool,
            Column::Rows { .. } => Ty::Row,
            Column::Values(v) => v.first().map(Value::ty).unwrap_or(Ty::F64),
        }
    }

    /// Fetches element `i` as a boxed [`Value`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::F64(v) => Value::F64(v[i]),
            Column::I64(v) => Value::I64(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Rows { data, dim } => {
                Value::row(data[i * dim..(i + 1) * dim].to_vec())
            }
            Column::Values(v) => v[i].clone(),
        }
    }

    /// Materializes the whole column as boxed values.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value_at(i)).collect()
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Column {
        Column::from_f64(v)
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Column {
        Column::from_i64(v)
    }
}

impl From<Vec<Value>> for Column {
    fn from(v: Vec<Value>) -> Column {
        Column::from_values(v)
    }
}

/// Named source collections available to a query.
#[derive(Clone, Debug, Default)]
pub struct DataContext {
    sources: HashMap<String, Column>,
}

impl DataContext {
    /// Creates an empty context.
    pub fn new() -> DataContext {
        DataContext::default()
    }

    /// Adds (or replaces) a named source, returning `self` for chaining.
    pub fn with_source(mut self, name: impl Into<String>, column: impl Into<Column>) -> Self {
        self.sources.insert(name.into(), column.into());
        self
    }

    /// Adds (or replaces) a named source in place.
    pub fn insert(&mut self, name: impl Into<String>, column: impl Into<Column>) {
        self.sources.insert(name.into(), column.into());
    }

    /// Looks up a source by name.
    pub fn source(&self, name: &str) -> Option<&Column> {
        self.sources.get(name)
    }

    /// Iterates over `(name, column)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.sources.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// `true` when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_sliced_out_of_flat_storage() {
        let c = Column::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.elem_ty(), Ty::Row);
        assert_eq!(c.value_at(1), Value::row(vec![4.0, 5.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_rows_rejected() {
        let _ = Column::from_rows(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn context_lookup() {
        let ctx = DataContext::new()
            .with_source("xs", vec![1.0, 2.0])
            .with_source("ys", vec![3i64]);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.source("xs").unwrap().len(), 2);
        assert_eq!(ctx.source("ys").unwrap().elem_ty(), Ty::I64);
        assert!(ctx.source("zs").is_none());
    }

    #[test]
    fn to_values_round_trips() {
        let c = Column::from_i64(vec![5, 6]);
        assert_eq!(c.to_values(), vec![Value::I64(5), Value::I64(6)]);
        let empty = Column::from_values(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.elem_ty(), Ty::F64);
    }
}
