/root/repo/target/debug/deps/steno_repro-4e47743f675ccbd6.d: src/lib.rs src/prng.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_repro-4e47743f675ccbd6.rmeta: src/lib.rs src/prng.rs Cargo.toml

src/lib.rs:
src/prng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
