//! Steno: automatic optimization of declarative queries.
//!
//! A Rust reproduction of *Steno: Automatic Optimization of Declarative
//! Queries* (Murray, Isard & Yu, PLDI 2011). Steno translates declarative
//! LINQ-style queries into type-specialized, inlined, loop-based
//! imperative code, eliminating the chains of lazily-evaluated iterators
//! (and their per-element virtual calls) that make declarative code
//! several times slower than hand-optimized loops.
//!
//! # The pipeline
//!
//! ```text
//!  query text ──steno-syntax──► QueryExpr ──steno-quil──► QUIL chain
//!      (or builder / steno!)        │                        │
//!                                   ▼                        ▼
//!                unoptimized: steno-linq interp      steno-codegen (PDA)
//!                (boxed iterator chains, §2)                 │
//!                                                            ▼
//!                                          imperative AST ──steno-vm──► result
//! ```
//!
//! Three execution paths are provided, mirroring the paper's evaluation:
//!
//! * **Unoptimized LINQ** — [`steno_linq`]'s boxed-iterator interpreter
//!   (two virtual calls per element per operator).
//! * **Runtime Steno** — [`Steno::execute`]: lower → specialize →
//!   generate → bytecode, with the one-off cost measured and cached
//!   (§3.3, §7.1).
//! * **Compile-time Steno** — the [`steno!`] macro expands the same
//!   generated loops into your crate at build time (§9).
//!
//! # Quickstart
//!
//! ```
//! use steno::prelude::*;
//!
//! let ctx = DataContext::new().with_source("xs", vec![1.0, 2.0, 3.0, 4.0]);
//! let udfs = UdfRegistry::new();
//! let engine = Steno::new();
//!
//! // Runtime path, from query text:
//! let sum = engine
//!     .execute_text("(from x in xs where x > 1.5 select x * x).sum()", &ctx, &udfs)?;
//! assert_eq!(sum, Value::F64(29.0));
//! # Ok::<(), steno::StenoError>(())
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod engine;
pub mod explain;
pub mod rt;

pub use engine::{ExecutionPath, Steno, StenoError};
pub use explain::{Explain, ExplainPlan};
pub use steno_macros::steno;

/// The commonly-used types, in one import.
pub mod prelude {
    pub use crate::engine::{ExecutionPath, Steno, StenoError};
    pub use crate::explain::{Explain, ExplainPlan};
    pub use steno_cluster::{
        ClusterSpec, DistError, DistributedCollection, FaultPlan, JobReport, RetryPolicy,
        RuntimeConfig, SpeculationPolicy, VertexEngine,
    };
    pub use steno_expr::{Column, DataContext, Expr, Ty, UdfRegistry, Value};
    pub use steno_linq::Enumerable;
    pub use steno_obs::{Collector, MemoryCollector, MetricsSnapshot, NoopCollector};
    pub use steno_query::{GroupResult, Query, QueryExpr};
    pub use steno_macros::steno;
    pub use steno_vm::{
        CompiledQuery, EngineKind, FallbackReason, LoopPlan, LoopTier, QueryProfile,
        StenoOptions, VectorizationPolicy,
    };
    pub use steno_analysis::{Diagnostic, Severity, VerifyError, VerifyReport};
}

// Re-export the component crates for direct access.
pub use steno_analysis as analysis;
pub use steno_cluster as cluster;
pub use steno_obs as obs;
pub use steno_codegen as codegen;
pub use steno_expr as expr;
pub use steno_linq as linq;
pub use steno_query as query;
pub use steno_quil as quil;
pub use steno_syntax as syntax;
pub use steno_vm as vm;
