//! A self-contained micro-benchmark harness with a criterion-shaped API.
//!
//! The build environment is fully offline, so the `criterion` crate is
//! unavailable; this shim implements the small surface the `benches/`
//! files use (`Criterion::benchmark_group`, `BenchmarkGroup::
//! bench_function`, `Bencher::iter`, the `criterion_group!`/
//! `criterion_main!` macros) with plain `std::time` measurement. Results
//! are median-of-samples over auto-calibrated batches, printed one line
//! per benchmark.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// A benchmark identifier rendered as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing a name and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: calibrate a batch size, take samples, report
    /// the median per-iteration time.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.per_iter);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{:>40}  median {:>12?}  best {:>12?}  ({} samples)",
            format!("{}/{id}", self.name),
            median,
            best,
            samples.len()
        );
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; measures the routine under test.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, auto-batching fast routines so each sample spans
    /// at least ~2 ms of wall clock.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fill the floor?
        let floor = Duration::from_millis(2);
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= floor || batch >= 1 << 20 {
                self.per_iter = elapsed / (batch as u32).max(1);
                return;
            }
            batch = batch.saturating_mul(
                ((floor.as_nanos() / elapsed.as_nanos().max(1)) as u64 + 1).clamp(2, 128),
            );
        }
    }
}

/// Measures `routine` like [`Bencher::iter`] (auto-batched ~2 ms
/// samples) and returns the median per-iteration time over `samples`
/// samples. The standalone entry point used by the `fig_*` binaries.
pub fn median_time<O>(samples: usize, mut routine: impl FnMut() -> O) -> Duration {
    let n = samples.max(1);
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        b.iter(&mut routine);
        times.push(b.per_iter);
    }
    times.sort();
    times[times.len() / 2]
}

/// Measures `routine` like [`median_time`] but returns the *minimum*
/// per-iteration time over `samples` samples.
///
/// Used by the `--smoke` regression gate: on a noisy shared machine the
/// minimum is the stable estimate of a routine's floor, where the
/// median still carries scheduler bursts.
pub fn best_time<O>(samples: usize, mut routine: impl FnMut() -> O) -> Duration {
    let n = samples.max(1);
    let mut best = Duration::MAX;
    for _ in 0..n {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        b.iter(&mut routine);
        best = best.min(b.per_iter);
    }
    best
}

/// One machine-readable measurement: a workload run on one engine.
///
/// Serialized (hand-rolled — the environment builds offline, so no
/// `serde`) into `BENCH_vm.json` by [`write_bench_json`] for the
/// driver's ≥2× vectorization acceptance check.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Workload name, e.g. `sum_of_squares`.
    pub workload: String,
    /// Engine name, e.g. `vm_scalar`, `vm_vectorized`, `linq`, `hand`.
    pub engine: String,
    /// Input size in elements.
    pub elements: usize,
    /// Median per-element cost in nanoseconds.
    pub ns_per_elem: f64,
    /// Median throughput in elements per second.
    pub elements_per_sec: f64,
    /// Noise ceiling: the worst per-run ns/elem this row was observed to
    /// produce while the *baseline* was collected (multi-run baselines
    /// only; `None` for single-run records). The smoke gate treats a
    /// measurement at or below this as machine noise, not a regression —
    /// the unchanged binary itself has produced it.
    pub ns_per_elem_noise: Option<f64>,
}

impl BenchRecord {
    /// Builds a record from a median per-iteration wall time over
    /// `elements` inputs. Zero-duration medians (sub-tick clocks) are
    /// clamped to 1 ns to keep the derived rates finite.
    pub fn from_wall(
        workload: impl Into<String>,
        engine: impl Into<String>,
        elements: usize,
        median: Duration,
    ) -> BenchRecord {
        let nanos = (median.as_nanos() as f64).max(1.0);
        let ns_per_elem = nanos / (elements as f64).max(1.0);
        BenchRecord {
            workload: workload.into(),
            engine: engine.into(),
            elements,
            ns_per_elem,
            elements_per_sec: 1e9 / ns_per_elem,
            ns_per_elem_noise: None,
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders records as a JSON array (stable field order, one object per
/// line) without any external dependency.
pub fn render_bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let noise = r
            .ns_per_elem_noise
            .map(|n| format!(", \"ns_per_elem_noise\": {n:.4}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"engine\": \"{}\", \"elements\": {}, \
             \"ns_per_elem\": {:.4}, \"elements_per_sec\": {:.1}{}}}{}\n",
            json_escape(&r.workload),
            json_escape(&r.engine),
            r.elements,
            r.ns_per_elem,
            r.elements_per_sec,
            noise,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Writes records to `path` as JSON (see [`render_bench_json`]).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(path: impl AsRef<Path>, records: &[BenchRecord]) -> io::Result<()> {
    fs::write(path, render_bench_json(records))
}

/// Merges `records` into the bench JSON at `path`: rows belonging to a
/// workload re-measured here replace that workload's old rows, while
/// rows from other producers (`BENCH_vm.json` is shared between the
/// `fig_*` binaries) survive untouched. A missing or unparseable file
/// degrades to a plain write.
///
/// # Errors
///
/// Propagates filesystem errors from the final write.
pub fn merge_bench_json(path: impl AsRef<Path>, records: &[BenchRecord]) -> io::Result<()> {
    let path = path.as_ref();
    let mut merged: Vec<BenchRecord> = fs::read_to_string(path)
        .ok()
        .and_then(|s| parse_bench_json(&s).ok())
        .unwrap_or_default();
    let ours: std::collections::HashSet<&str> =
        records.iter().map(|r| r.workload.as_str()).collect();
    merged.retain(|r| !ours.contains(r.workload.as_str()));
    merged.extend(records.iter().cloned());
    write_bench_json(path, &merged)
}

/// Looks up the `hand` row's ns/elem for `workload` in `records`.
pub fn hand_ns(records: &[BenchRecord], workload: &str) -> Option<f64> {
    records
        .iter()
        .find(|r| r.workload == workload && r.engine == "hand")
        .map(|r| r.ns_per_elem)
}

/// The `--smoke` regression gate shared by the `fig_*` binaries.
///
/// A row passes when *either* comparison against the checked-in
/// baseline (`BENCH_VM_BASELINE`, default `BENCH_vm.json`) is within
/// `tolerance`:
///
/// * **absolute** — the row's ns/elem vs the baseline's ns/elem. Valid
///   when the runner is as fast as the baseline machine; over-strict
///   when it is merely slower.
/// * **hand-relative** — the row's cost divided by the same run's
///   `hand` row, vs the same quotient in the baseline. The hand-written
///   loops are reference code this crate never touches, so the quotient
///   cancels machine speed; it skews only when the runner's compute/
///   memory balance differs from the baseline machine's.
///
/// A real code regression moves the engine row and neither reference,
/// so it fails both comparisons.
///
/// One escape hatch remains: rows whose baseline carries a
/// `ns_per_elem_noise` ceiling (the worst per-run value the *unchanged*
/// baseline binary produced across the baseline's measurement runs)
/// also pass when the measured value is at or below that ceiling. The
/// baseline's `ns_per_elem` is a floor across many runs; on a shared
/// box the scalar-interpreter rows swing ~2x between quiet and loaded
/// phases, so "within tolerance of the floor" is unattainable during a
/// loaded phase even with no code change. A measurement the baseline
/// binary itself was observed to produce is machine noise by
/// construction, not a regression.
///
/// Baseline rows for workloads not in `records` are ignored, so each
/// binary gates only the rows it produces.
///
/// # Errors
///
/// Returns the failing rows (empty on success) so the caller can
/// re-measure once before failing the build.
pub fn smoke_gate(records: &[BenchRecord], tolerance: f64) -> Result<(), Vec<String>> {
    let baseline_path =
        std::env::var("BENCH_VM_BASELINE").unwrap_or_else(|_| "BENCH_vm.json".to_string());
    let baseline = fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("smoke gate needs the baseline {baseline_path}: {e}"));
    let baseline = parse_bench_json(&baseline)
        .unwrap_or_else(|e| panic!("baseline {baseline_path} must parse: {e}"));
    println!(
        "\n== smoke gate (tolerance {tolerance:.2}x vs {baseline_path}, \
         absolute or hand-relative) =="
    );
    let mut failures = Vec::new();
    for r in records {
        if r.engine == "hand" {
            continue;
        }
        let Some(b) = baseline
            .iter()
            .find(|b| b.workload == r.workload && b.engine == r.engine)
        else {
            continue;
        };
        let (Some(rh), Some(bh)) = (hand_ns(records, &r.workload), hand_ns(&baseline, &r.workload))
        else {
            continue;
        };
        let abs_ratio = r.ns_per_elem / b.ns_per_elem;
        let rel_ratio = (r.ns_per_elem / rh) / (b.ns_per_elem / bh);
        let ratio = abs_ratio.min(rel_ratio);
        let within_noise = b
            .ns_per_elem_noise
            .is_some_and(|ceiling| r.ns_per_elem <= ceiling);
        let pass = ratio <= tolerance || within_noise;
        let verdict = if pass {
            if ratio <= tolerance {
                "ok"
            } else {
                "ok (within baseline noise)"
            }
        } else {
            "FAIL"
        };
        println!(
            "{:>22} / {:>14}  abs {abs_ratio:>5.2}x  hand-rel {rel_ratio:>5.2}x  {verdict}",
            r.workload, r.engine
        );
        if !pass {
            failures.push(format!(
                "{}/{} regressed (abs {abs_ratio:.2}x, hand-relative {rel_ratio:.2}x, \
                 both over {tolerance:.2}x{})",
                r.workload,
                r.engine,
                b.ns_per_elem_noise
                    .map(|c| format!(
                        "; {:.2} ns/elem over the {c:.2} observed-noise ceiling",
                        r.ns_per_elem
                    ))
                    .unwrap_or_default()
            ));
        }
    }
    if failures.is_empty() {
        println!("smoke gate passed: no engine regressed past tolerance");
        Ok(())
    } else {
        Err(failures)
    }
}

/// Parses the JSON emitted by [`render_bench_json`] back into records.
///
/// The inverse guarantees `BENCH_vm.json` stays machine-readable: any
/// drift between writer and reader fails the round-trip test below.
///
/// # Errors
///
/// Returns a message naming the malformed element when `input` is not a
/// valid record array.
pub fn parse_bench_json(input: &str) -> Result<Vec<BenchRecord>, String> {
    let v = steno_obs::json::parse(input).map_err(|e| e.to_string())?;
    let arr = v.as_array().ok_or("bench JSON must be an array")?;
    let mut records = Vec::with_capacity(arr.len());
    for (i, obj) in arr.iter().enumerate() {
        let str_field = |name: &str| -> Result<String, String> {
            obj.get(name)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("record {i}: missing string field {name:?}"))
        };
        let num_field = |name: &str| -> Result<f64, String> {
            obj.get(name)
                .and_then(|f| f.as_f64())
                .ok_or_else(|| format!("record {i}: missing number field {name:?}"))
        };
        records.push(BenchRecord {
            workload: str_field("workload")?,
            engine: str_field("engine")?,
            elements: num_field("elements")? as usize,
            ns_per_elem: num_field("ns_per_elem")?,
            elements_per_sec: num_field("elements_per_sec")?,
            ns_per_elem_noise: obj.get("ns_per_elem_noise").and_then(|f| f.as_f64()),
        });
    }
    Ok(records)
}

/// Collects benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trips() {
        let records = vec![
            BenchRecord::from_wall(
                "sum_of_squares",
                "vm_vectorized",
                1_000_000,
                Duration::from_micros(750),
            ),
            BenchRecord {
                workload: "join \"quoted\"".to_string(),
                engine: "linq".to_string(),
                elements: 4096,
                ns_per_elem: 12.5,
                elements_per_sec: 8e7,
                ns_per_elem_noise: Some(19.75),
            },
        ];
        let json = render_bench_json(&records);
        let parsed = parse_bench_json(&json).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            assert_eq!(p.workload, r.workload);
            assert_eq!(p.engine, r.engine);
            assert_eq!(p.elements, r.elements);
            // Rendering rounds to 4 (ns) / 1 (rate) decimal places.
            assert!((p.ns_per_elem - r.ns_per_elem).abs() < 1e-3);
            assert!((p.elements_per_sec - r.elements_per_sec).abs() < 1.0);
            match (p.ns_per_elem_noise, r.ns_per_elem_noise) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-3),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(parse_bench_json("{}").is_err());
        assert!(parse_bench_json("[{\"workload\": \"w\"}]").is_err());
        assert!(parse_bench_json("[").is_err());
    }

    #[test]
    fn empty_record_list_round_trips() {
        assert!(parse_bench_json(&render_bench_json(&[])).unwrap().is_empty());
    }

    #[test]
    fn merge_replaces_own_workloads_and_keeps_others() {
        let dir = std::env::temp_dir().join("steno_bench_merge_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_merge.json");
        let old = vec![
            BenchRecord::from_wall("kept", "vm_scalar", 10, Duration::from_micros(10)),
            BenchRecord::from_wall("replaced", "vm_scalar", 10, Duration::from_micros(50)),
        ];
        write_bench_json(&path, &old).unwrap();
        let new = vec![
            BenchRecord::from_wall("replaced", "vm_scalar", 10, Duration::from_micros(20)),
            BenchRecord::from_wall("added", "hand", 10, Duration::from_micros(5)),
        ];
        merge_bench_json(&path, &new).unwrap();
        let merged = parse_bench_json(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.len(), 3);
        assert!(merged.iter().any(|r| r.workload == "kept"));
        let replaced: Vec<_> = merged.iter().filter(|r| r.workload == "replaced").collect();
        assert_eq!(replaced.len(), 1);
        assert!((replaced[0].ns_per_elem - 2000.0).abs() < 1e-6);
        assert!(merged.iter().any(|r| r.workload == "added"));
        fs::remove_file(&path).ok();
    }
}
