/root/repo/target/debug/examples/cartesian-a909fea45d19bc38.d: examples/cartesian.rs

/root/repo/target/debug/examples/cartesian-a909fea45d19bc38: examples/cartesian.rs

examples/cartesian.rs:
