/root/repo/target/release/deps/fig13-905979a3bf12a0b7.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-905979a3bf12a0b7: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
