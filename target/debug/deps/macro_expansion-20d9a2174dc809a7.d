/root/repo/target/debug/deps/macro_expansion-20d9a2174dc809a7.d: tests/macro_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_expansion-20d9a2174dc809a7.rmeta: tests/macro_expansion.rs Cargo.toml

tests/macro_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
