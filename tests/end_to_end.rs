//! Cross-crate integration: the paper's workloads through every executor
//! — unoptimized iterators, the runtime Steno pipeline (with fallback),
//! and query text — agreeing on results.

use steno::prelude::*;
use steno_linq::interp;

fn ctx() -> DataContext {
    DataContext::new()
        .with_source("xs", (0..500).map(|i| (i as f64) * 0.25 - 30.0).collect::<Vec<_>>())
        .with_source("ns", (0..100i64).collect::<Vec<_>>())
        .with_source("ys", vec![0.5f64, -1.5, 2.0, 4.0])
}

#[track_caller]
fn agree(text: &str) {
    let c = ctx();
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let (q, _) = steno::syntax::parse_query(text).expect("parse");
    let via_interp = interp::execute(&q, &c, &udfs).expect("interp");
    let (via_engine, _) = engine.execute_traced(&q, &c, &udfs).expect("engine");
    assert_eq!(via_interp.key(), via_engine.key(), "query: {text}");
}

#[test]
fn paper_running_example() {
    agree("from x in ns where x % 2 == 0 select x * x");
}

#[test]
fn microbenchmark_shapes() {
    agree("(from x in xs select x).sum()");
    agree("(from x in xs select x * x).sum()");
    agree("(from x in xs from y in ys select x * y).sum()");
    agree("xs.group_by(|x| x.floor()).select(|kv| (kv.0, kv.1.count()))");
}

#[test]
fn comprehension_clauses() {
    agree("from x in xs where x > 0.0 orderby x descending select x + 1.0");
    agree("from x in ns group x * x by x % 7");
    agree("(from x in ns select x).skip(20).take(30).sum()");
    agree("xs.take_while(|x| x < 50.0).count()");
    agree("xs.skip_while(|x| x < 0.0).min()");
}

#[test]
fn aggregates_via_text() {
    agree("xs.min()");
    agree("xs.max()");
    agree("xs.average()");
    agree("xs.count(|x| x > 0.0)");
    agree("xs.any(|x| x > 90.0)");
    agree("xs.all(|x| x > -100.0)");
    agree("ns.aggregate(1, |acc, x| acc * (x % 5 + 1))");
    agree("xs.first()");
}

#[test]
fn nested_queries_via_text() {
    agree("xs.select(|x| ys.count(|y| y > x)).sum()");
    agree("(from x in ys from y in ys select x + y).to_array().count()");
    agree("ns.where(|x| ns.any(|y| y == x + 50)).count()");
}

#[test]
fn sinks_via_text() {
    agree("ns.select(|x| x % 9).distinct().order_by(|x| x)");
    agree("from kv in (from x in ns group x by x % 4) where kv.0 > 0 select kv.0");
}

#[test]
fn fallback_handles_unsupported_shapes() {
    // Concat is outside QUIL: the engine must still answer, via the
    // unoptimized executor.
    let c = ctx();
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let q = Query::source("xs").concat(Query::source("ys")).count().build();
    let (v, path) = engine.execute_traced(&q, &c, &udfs).unwrap();
    assert_eq!(v, Value::I64(504));
    assert_eq!(path, ExecutionPath::Fallback);
}

#[test]
fn generated_code_matches_figures() {
    // The even-squares query generates exactly the loop of §2's
    // hand-optimized example: guard, transform, yield.
    let c = ctx();
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let (q, _) =
        steno::syntax::parse_query("from x in ns where x % 2 == 0 select x * x").unwrap();
    let compiled = engine.compile(&q, (&c).into(), &udfs).unwrap();
    assert_eq!(compiled.quil(), "Src Pred Trans Ret");
    let src = compiled.rust_source();
    let guard = src.find("continue").expect("predicate guard");
    let transform = src.find("(elem_0 * elem_0)").expect("inlined transform");
    let push = src.find("__out.push").expect("yield");
    assert!(guard < transform && transform < push, "statement order:\n{src}");
}

#[test]
fn udfs_flow_through_the_whole_pipeline() {
    let mut udfs = UdfRegistry::new();
    udfs.register("clamp01", vec![Ty::F64], Ty::F64, |args| {
        Value::F64(args[0].as_f64().unwrap().clamp(0.0, 1.0))
    });
    let c = ctx();
    let engine = Steno::new();
    let (q, _) = steno::syntax::parse_query("xs.select(|x| clamp01(x)).sum()").unwrap();
    let via_interp = interp::execute(&q, &c, &udfs).unwrap();
    let via_engine = engine.execute(&q, &c, &udfs).unwrap();
    assert_eq!(via_interp.key(), via_engine.key());
}

#[test]
fn cache_survives_across_queries() {
    let c = ctx();
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    for _ in 0..3 {
        engine.execute_text("xs.sum()", &c, &udfs).unwrap();
        engine.execute_text("xs.min()", &c, &udfs).unwrap();
    }
    let (hits, misses) = engine.cache_stats();
    assert_eq!(misses, 2);
    assert_eq!(hits, 4);
}

#[test]
fn join_canonicalizes_to_the_section_5_form_and_executes() {
    // The §5 equi-join example: xs.SelectMany(x => ys.Where(y => x == y)).
    use steno::query::QFn2;
    let people = DataContext::new()
        .with_source("ids", vec![1i64, 2, 3, 4])
        .with_source("owned", vec![1i64, 3, 3, 9]);
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let q = Query::source("ids")
        .join(
            Query::source("owned"),
            "o",
            Expr::var("o"),
            "i",
            Expr::var("i"),
            QFn2::new("o", "i", Expr::var("o") * Expr::liti(10) + Expr::var("i")),
        )
        .build();
    // After canonicalization there is no Join node left.
    assert!(
        q.to_string().contains("SelectMany"),
        "canonical form: {q}"
    );
    let via_interp = interp::execute(&q, &people, &udfs).unwrap();
    let (via_engine, path) = engine.execute_traced(&q, &people, &udfs).unwrap();
    assert_eq!(via_interp.key(), via_engine.key());
    // The canonical form is fully optimizable: no fallback.
    assert_eq!(path, ExecutionPath::Optimized);
    assert_eq!(
        via_engine,
        Value::seq(vec![Value::I64(11), Value::I64(33), Value::I64(33)])
    );
}

#[test]
fn join_via_text_syntax() {
    let ctx = DataContext::new()
        .with_source("a", vec![1i64, 2, 3])
        .with_source("b", vec![2i64, 3, 4]);
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let v = engine
        .execute_text(
            "a.join(b, |o| o % 2, |i| i % 2, |o, i| o * 100 + i).count()",
            &ctx,
            &udfs,
        )
        .unwrap();
    // Keys: a = [1,0,1], b = [0,1,0] → matches: 1×{3}, 2×{2,4}, 3×{3} = 1+2+1
    assert_eq!(v, Value::I64(4));
}
