/root/repo/target/release/examples/codegen_tour-7fd4eae2fd2fbd59.d: examples/codegen_tour.rs

/root/repo/target/release/examples/codegen_tour-7fd4eae2fd2fbd59: examples/codegen_tour.rs

examples/codegen_tour.rs:
