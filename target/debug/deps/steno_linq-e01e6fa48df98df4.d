/root/repo/target/debug/deps/steno_linq-e01e6fa48df98df4.d: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs

/root/repo/target/debug/deps/libsteno_linq-e01e6fa48df98df4.rlib: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs

/root/repo/target/debug/deps/libsteno_linq-e01e6fa48df98df4.rmeta: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs

crates/steno-linq/src/lib.rs:
crates/steno-linq/src/aggregates.rs:
crates/steno-linq/src/enumerable.rs:
crates/steno-linq/src/enumerator.rs:
crates/steno-linq/src/grouping.rs:
crates/steno-linq/src/interp.rs:
crates/steno-linq/src/lookup.rs:
crates/steno-linq/src/sources.rs:
