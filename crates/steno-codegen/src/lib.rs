//! The Steno code generator: QUIL chains → imperative loop programs.
//!
//! This crate implements §4.2 and §5.2 of the paper. The generated code is
//! held as a statement structure with three insertion pointers — the loop
//! prelude (α), the loop body (μ) and the loop postlude (ω) of Fig. 5 —
//! managed by a pushdown automaton whose stack holds `(α, μ, ω)` triples
//! (Fig. 9). Each QUIL symbol drives one transition:
//!
//! * `Src` inserts a new type-specialized loop and pushes fresh pointers;
//! * `Trans`/`Pred` insert inlined element-wise statements at μ (Fig. 6);
//! * `Agg`/`Sink` insert declarations at α and updates at μ (Fig. 7);
//! * `Ret` emits returns/yields according to the automaton state (Fig. 8),
//!   and for nested queries manipulates the pointer stack (Figs. 10, 11).
//!
//! The result is an [`imp::ImpProgram`] — the analogue of the
//! CodeDOM AST the paper builds — which the `steno-vm` crate compiles to
//! bytecode and the [`printer`] renders as human-readable Rust source (the
//! same code the `steno!` proc macro emits at compile time).

pub mod generate;
pub mod imp;
pub mod printer;

pub use generate::{generate, GenError};
pub use imp::{BlockId, ImpProgram, LoopHeader, SinkDecl, Stmt, Terminal};
pub use printer::render_rust;
