//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§7). See the `fig*` binaries and the criterion benches.
pub mod kmeans;
pub mod micro;
pub mod workloads;
