//! Dryad-style job graphs.
//!
//! DryadLINQ "transforms a LINQ query into a directed acyclic graph of
//! query operators, which Dryad executes as a collection of parallel
//! tasks" (§6). [`JobGraph::from_plan`] builds that DAG for a §6 parallel
//! plan; its `Display` draws the Fig. 12 shape.

use std::fmt;

use steno_quil::parallel::{ParallelPlan, Reduce};

/// A vertex in the job graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vertex {
    /// Stage name (`Map`, `Agg*`, `Merge`, ...).
    pub stage: String,
    /// Which partition this vertex processes, if stage-parallel.
    pub partition: Option<usize>,
}

/// A directed acyclic graph of vertices; edges are channels.
#[derive(Clone, Debug, Default)]
pub struct JobGraph {
    /// The vertices, topologically ordered.
    pub vertices: Vec<Vertex>,
    /// Edges as `(from, to)` vertex indices.
    pub edges: Vec<(usize, usize)>,
}

impl JobGraph {
    /// Builds the job graph of a parallel plan over `partitions` inputs.
    pub fn from_plan(plan: &ParallelPlan, partitions: usize) -> JobGraph {
        let mut g = JobGraph::default();
        let map_stage = if plan.map_chain.agg.is_some() {
            // Fig. 12: the map vertex includes the partial aggregate.
            "Map+Agg_i"
        } else if plan
            .map_chain
            .ops
            .last()
            .is_some_and(|op| matches!(op, steno_quil::ir::QuilOp::Sink(_)))
        {
            "Map+Sink_i"
        } else {
            "Map"
        };
        let maps: Vec<usize> = (0..partitions)
            .map(|p| {
                g.vertices.push(Vertex {
                    stage: map_stage.to_string(),
                    partition: Some(p),
                });
                g.vertices.len() - 1
            })
            .collect();
        let reduce_stage = match &plan.reduce {
            Reduce::Concat => "Concat",
            Reduce::CombinePartials(_) => "Agg*",
            Reduce::MergeGroupedPartials { .. } => "GroupMerge",
            Reduce::MergeSorted { .. } => "SortedMerge",
            Reduce::SerialRest { .. } => "SerialRest",
        };
        g.vertices.push(Vertex {
            stage: reduce_stage.to_string(),
            partition: None,
        });
        let reduce_idx = g.vertices.len() - 1;
        for m in maps {
            g.edges.push((m, reduce_idx));
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` for a graph with no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

impl fmt::Display for JobGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Draw stage-parallel vertices on one line, then the reducer.
        let maps: Vec<&Vertex> = self
            .vertices
            .iter()
            .filter(|v| v.partition.is_some())
            .collect();
        let reducers: Vec<&Vertex> = self
            .vertices
            .iter()
            .filter(|v| v.partition.is_none())
            .collect();
        for v in &maps {
            // A vertex without a partition index renders as a bare
            // stage: `[Map]` rather than panicking on the missing index.
            match v.partition {
                Some(p) => write!(f, "[{}_{p}] ", v.stage)?,
                None => write!(f, "[{}] ", v.stage)?,
            }
        }
        writeln!(f)?;
        for _ in &maps {
            write!(f, "   \\   ")?;
        }
        writeln!(f)?;
        for v in reducers {
            write!(f, "      [{}]", v.stage)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::{Expr, Ty, UdfRegistry};
    use steno_query::typing::SourceTypes;
    use steno_query::Query;
    use steno_quil::{lower, parallel};

    #[test]
    fn figure_12_shape() {
        // Src-Trans-Agg over 3 partitions: three Map+Agg_i vertices
        // feeding one Agg*.
        let srcs = SourceTypes::new().with("xs", Ty::F64);
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let chain = lower(&q, &srcs, &UdfRegistry::new()).unwrap();
        let plan = parallel::plan(&chain);
        let g = JobGraph::from_plan(&plan, 3);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edges.len(), 3);
        assert!(g.vertices[0].stage.contains("Agg_i"));
        assert_eq!(g.vertices[3].stage, "Agg*");
        let drawn = g.to_string();
        assert!(drawn.contains("[Map+Agg_i_0]"));
        assert!(drawn.contains("[Agg*]"));
    }

    #[test]
    fn partitionless_vertices_render_without_an_index() {
        // A hand-built graph whose "map side" vertex has no partition
        // index must display as a bare stage, not panic.
        let g = JobGraph {
            vertices: vec![
                Vertex {
                    stage: "Map".into(),
                    partition: None,
                },
                Vertex {
                    stage: "Concat".into(),
                    partition: None,
                },
            ],
            edges: vec![(0, 1)],
        };
        let drawn = g.to_string();
        assert!(drawn.contains("[Map]") || drawn.contains("[Concat]"), "{drawn}");
    }

    #[test]
    fn concat_plans_have_concat_reducers() {
        let srcs = SourceTypes::new().with("xs", Ty::F64);
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
            .build();
        let chain = lower(&q, &srcs, &UdfRegistry::new()).unwrap();
        let g = JobGraph::from_plan(&parallel::plan(&chain), 2);
        assert_eq!(g.vertices.last().unwrap().stage, "Concat");
        assert_eq!(g.vertices[0].stage, "Map");
    }
}
