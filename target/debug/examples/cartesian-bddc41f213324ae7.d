/root/repo/target/debug/examples/cartesian-bddc41f213324ae7.d: examples/cartesian.rs

/root/repo/target/debug/examples/cartesian-bddc41f213324ae7: examples/cartesian.rs

examples/cartesian.rs:
