/root/repo/target/debug/examples/explain_profile-ed169de009b6db3e.d: examples/explain_profile.rs

/root/repo/target/debug/examples/explain_profile-ed169de009b6db3e: examples/explain_profile.rs

examples/explain_profile.rs:
