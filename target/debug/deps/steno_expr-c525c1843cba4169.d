/root/repo/target/debug/deps/steno_expr-c525c1843cba4169.d: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs

/root/repo/target/debug/deps/steno_expr-c525c1843cba4169: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs

crates/steno-expr/src/lib.rs:
crates/steno-expr/src/data.rs:
crates/steno-expr/src/error.rs:
crates/steno-expr/src/eval.rs:
crates/steno-expr/src/expr.rs:
crates/steno-expr/src/subst.rs:
crates/steno-expr/src/ty.rs:
crates/steno-expr/src/typecheck.rs:
crates/steno-expr/src/udf.rs:
crates/steno-expr/src/value.rs:
