//! `fig_adaptive`: the feedback-directed optimization ablation, and the
//! producer of the `adaptive_*` rows in `BENCH_vm.json`.
//!
//! Two workloads, both deliberately spelled so that *static* compilation
//! is pessimal and only observed behavior can fix the plan:
//!
//! * `adaptive_filter_reorder` — a UDF pipeline whose first filter is an
//!   expensive degree-15 polynomial score that keeps everything and
//!   whose second is a one-comparison cut that keeps ~2%. The UDF pins
//!   the loop to the scalar tier (batch compute is dense, so predicate
//!   order is *all* that matters there), and the rewrite pass — fed the
//!   selectivities measured on a 512-element sample — moves the cheap
//!   selective cut first. Rows: `vm_static` (rewrites off),
//!   `vm_adaptive` (feedback-directed), `hand` (the optimal-order loop).
//! * `adaptive_drift` — a pipeline of the same score against an
//!   *opposing* range cut (`x < cut`), under a workload shift. The plan
//!   is first optimized against a regime where the polynomial score is
//!   the selective filter and the cut drops nothing (so text order is
//!   correct *for that data*, and the cost×selectivity rank agrees),
//!   then the input drifts past the cut: now the score passes
//!   everything and the one-comparison cut rejects everything — the
//!   cached plan pays the degree-15 polynomial per element for nothing.
//!   Rows: `vm_stale` (the pre-drift plan on post-drift data — exactly
//!   what a cache serves until the drift detector fires), `vm_reopt`
//!   (the plan the re-optimizer installs), `hand`.
//!
//! Both workloads assert the feedback-directed plan is at least 2x the
//! pessimal one — the acceptance bar — and that the static/adaptive
//! results agree exactly before anything is timed. Results merge into
//! `BENCH_vm.json` (the `fig_vectorized` rows survive). `--smoke` runs
//! the short deterministic mode and the shared regression gate, same as
//! `fig_vectorized`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bench::harness::{best_time, median_time, merge_bench_json, smoke_gate, BenchRecord};
use bench::workloads::{scaled, uniform_doubles};
use steno_expr::{DataContext, Expr, Ty, UdfRegistry, Value};
use steno_query::{Query, QueryExpr};
use steno_vm::query::CompileFeedback;
use steno_vm::{CompiledQuery, StenoOptions};

const SAMPLES: usize = 7;
const SMOKE_SAMPLES: usize = 5;
const SMOKE_TOLERANCE: f64 = 1.25;
/// The acceptance bar: the feedback-directed plan must beat the
/// pessimal static plan by at least this factor.
const MIN_SPEEDUP: f64 = 2.0;

static SMOKE: AtomicBool = AtomicBool::new(false);

fn bench_time<O>(routine: impl FnMut() -> O) -> Duration {
    if SMOKE.load(Ordering::Relaxed) {
        best_time(SMOKE_SAMPLES, routine)
    } else {
        median_time(SAMPLES, routine)
    }
}

/// Coefficients of the expensive score polynomial, low degree first.
/// All positive, so the score is strictly increasing on x >= 0 and the
/// drift workload can steer its selectivity purely through the input
/// range.
const POLY: [f64; 16] = [
    0.11, 0.07, 0.13, 0.05, 0.17, 0.03, 0.19, 0.02, 0.23, 0.08, 0.29, 0.04, 0.31, 0.06, 0.37,
    0.09,
];

/// The score as an expression over `x`, in Horner form: 30 florps per
/// element, versus one comparison for the cheap cut.
fn poly_expr() -> Expr {
    let mut e = Expr::litf(POLY[POLY.len() - 1]);
    for &c in POLY.iter().rev().skip(1) {
        e = e * Expr::var("x") + Expr::litf(c);
    }
    e
}

/// The score as a hand loop, in the same Horner order so filter
/// decisions (and therefore sums) match the VM bit-for-bit.
fn poly_eval(x: f64) -> f64 {
    let mut e = POLY[POLY.len() - 1];
    for &c in POLY.iter().rev().skip(1) {
        e = e * x + c;
    }
    e
}

/// One pure UDF in the output position: keeps the loop off the batch
/// tier (dense batch compute is order-insensitive, so the scalar tier
/// is where predicate order shows), and its purity fact is what lets
/// the rewrite pass reorder around it at all.
fn registry() -> UdfRegistry {
    let mut udfs = UdfRegistry::new();
    udfs.register_pure("boost", vec![Ty::F64], Ty::F64, |args: &[Value]| {
        Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0)
    });
    udfs
}

/// `xs.where(score(x) > lo).where(x > cut).select(boost(x)).sum()` —
/// expensive unselective filter first: the pessimal spelling.
fn pipeline(score_floor: f64, cut: f64) -> QueryExpr {
    Query::source("xs")
        .where_(poly_expr().gt(Expr::litf(score_floor)), "x")
        .where_(Expr::var("x").gt(Expr::litf(cut)), "x")
        .select(Expr::call("boost", vec![Expr::var("x")]), "x")
        .sum()
        .build()
}

/// The drift pipeline spells the cheap cut `x < cut`. Both predicates
/// of [`pipeline`] are monotone *increasing* in `x`, so the score
/// filter's survivors always pass any cut below the score threshold —
/// the conditioned selectivity estimator could never observe the second
/// filter rejecting, and no drift could make the cached order pessimal.
/// An opposing cut lets the input shift starve one filter while feeding
/// the other.
fn pipeline_lt(score_floor: f64, cut: f64) -> QueryExpr {
    Query::source("xs")
        .where_(poly_expr().gt(Expr::litf(score_floor)), "x")
        .where_(Expr::var("x").lt(Expr::litf(cut)), "x")
        .select(Expr::call("boost", vec![Expr::var("x")]), "x")
        .sum()
        .build()
}

fn compile_static(q: &QueryExpr, ctx: &DataContext, udfs: &UdfRegistry) -> CompiledQuery {
    let opts = StenoOptions {
        rewrites: false,
        ..StenoOptions::default()
    };
    CompiledQuery::compile_tuned(q, ctx.into(), udfs, opts).expect("compile static")
}

/// Feedback-directed compile: the rewrite pass sees selectivities
/// sampled from `sample` — which is also how the drift workload builds
/// its "stale" plan, by sampling the *pre-drift* regime.
fn compile_feedback(q: &QueryExpr, sample: &DataContext, udfs: &UdfRegistry) -> CompiledQuery {
    let fb = CompileFeedback {
        sample_ctx: Some(sample),
        loop_stats: None,
    };
    CompiledQuery::compile_tuned_feedback(q, sample.into(), udfs, StenoOptions::default(), fb)
        .expect("compile feedback")
}

fn applied(c: &CompiledQuery, rule: &str) -> bool {
    c.rewrite_log().iter().any(|ev| ev.applied && ev.rule == rule)
}

struct Row {
    engine: &'static str,
    median: Duration,
}

/// Prints the rows (speedups relative to the first, pessimal row) and
/// pushes their records.
fn report(workload: &str, n: usize, rows: Vec<Row>, records: &mut Vec<BenchRecord>) {
    println!("\n== {workload} ({n} elements) ==");
    let base_ns = rows[0].median.as_nanos() as f64;
    let base_engine = rows[0].engine;
    for row in rows {
        let rec = BenchRecord::from_wall(workload, row.engine, n, row.median);
        let vs = base_ns / (row.median.as_nanos() as f64).max(1.0);
        println!(
            "{:>12}  {:>12?}  {:>8.3} ns/elem  {:>12.0} elem/s  ({:>5.2}x vs {base_engine})",
            row.engine, row.median, rec.ns_per_elem, rec.elements_per_sec, vs
        );
        records.push(rec);
    }
}

/// Asserts the acceptance speedup between two engines of a workload.
fn assert_speedup(records: &[BenchRecord], workload: &str, slow: &str, fast: &str) {
    let ns = |engine: &str| {
        records
            .iter()
            .find(|r| r.workload == workload && r.engine == engine)
            .map(|r| r.ns_per_elem)
            .expect("record")
    };
    let speedup = ns(slow) / ns(fast);
    println!("{workload}: {fast} is {speedup:.2}x {slow}");
    assert!(
        speedup >= MIN_SPEEDUP,
        "{workload}: {fast} must be at least {MIN_SPEEDUP}x {slow}, got {speedup:.2}x"
    );
}

/// Pessimal static filter order vs the feedback-reordered plan.
fn adaptive_filter_reorder(records: &mut Vec<BenchRecord>) {
    let n = scaled(1_000_000);
    let data = uniform_doubles(n, 11); // [0, 1)
    let ctx = DataContext::new().with_source("xs", data.clone());
    let udfs = registry();
    // Score floor 0.0: every element passes (all coefficients are
    // positive). Cut 0.98: ~2% pass.
    let cut = 0.98;
    let q = pipeline(0.0, cut);

    let stat = compile_static(&q, &ctx, &udfs);
    let adap = compile_feedback(&q, &ctx, &udfs);
    assert_eq!(
        stat.engine(),
        adap.engine(),
        "both plans must land on the same tier for the comparison to be about plan shape"
    );
    assert!(
        applied(&adap, "reorder-filters"),
        "feedback must reorder the pessimal filters: {:?}",
        adap.rewrite_log()
    );

    let expect = {
        let mut s = 0.0;
        for &x in &data {
            if x > cut && poly_eval(x) > 0.0 {
                s += x * 2.0;
            }
        }
        s
    };
    for c in [&stat, &adap] {
        assert_eq!(c.run(&ctx, &udfs).expect("run"), Value::F64(expect));
    }

    let rows = vec![
        Row {
            engine: "vm_static",
            median: bench_time(|| stat.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_adaptive",
            median: bench_time(|| adap.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "hand",
            median: bench_time(|| {
                let mut s = 0.0;
                for &x in &data {
                    if x > cut && poly_eval(x) > 0.0 {
                        s += x * 2.0;
                    }
                }
                s
            }),
        },
    ];
    report("adaptive_filter_reorder", n, rows, records);
}

/// Workload drift: the plan optimized for the pre-drift regime served
/// on post-drift data, vs the plan the re-optimizer installs.
fn adaptive_drift(records: &mut Vec<BenchRecord>) {
    let n = scaled(1_000_000);
    // Pre-drift regime: x in [2, 3) — the score cut keeps ~2% and the
    // `x < 3.0` cut keeps everything, so the expensive-but-selective
    // score filter is genuinely the right one to run first. The
    // cost-aware rank agrees: 63/(1−0.02) ≈ 64 for the score versus
    // 3/(1−1.0) → unbounded for a filter that drops nothing.
    let pre: Vec<f64> = uniform_doubles(n, 12).iter().map(|x| x + 2.0).collect();
    // Post-drift regime: x in [4, 5) — the score (strictly increasing)
    // now keeps everything and the cut keeps nothing: the selectivities
    // have swapped and the cached score-first plan pays the degree-15
    // polynomial on every element before the one-comparison cut drops it.
    let post: Vec<f64> = pre.iter().map(|x| x + 2.0).collect();
    let pre_ctx = DataContext::new().with_source("xs", pre);
    let post_ctx = DataContext::new().with_source("xs", post.clone());
    let udfs = registry();
    // Score floor p(2.98): keeps ~2% of [2, 3), all of [4, 5) — the
    // score is strictly increasing. Cut 3.0: keeps all of [2, 3) and
    // nothing of [4, 5).
    let floor = poly_eval(2.98);
    let range_cut = 3.0;
    let q = pipeline_lt(floor, range_cut);

    let stale = compile_feedback(&q, &pre_ctx, &udfs);
    let reopt = compile_feedback(&q, &post_ctx, &udfs);
    assert!(
        !applied(&stale, "reorder-filters"),
        "pre-drift the text order is already optimal: {:?}",
        stale.rewrite_log()
    );
    assert!(
        applied(&reopt, "reorder-filters"),
        "post-drift the re-optimizer must reorder: {:?}",
        reopt.rewrite_log()
    );

    let expect = {
        let mut s = 0.0;
        for &x in &post {
            if x < range_cut && poly_eval(x) > floor {
                s += x * 2.0;
            }
        }
        s
    };
    for c in [&stale, &reopt] {
        assert_eq!(c.run(&post_ctx, &udfs).expect("run"), Value::F64(expect));
    }

    let rows = vec![
        Row {
            engine: "vm_stale",
            median: bench_time(|| stale.run(&post_ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_reopt",
            median: bench_time(|| reopt.run(&post_ctx, &udfs).expect("run")),
        },
        Row {
            engine: "hand",
            median: bench_time(|| {
                let mut s = 0.0;
                for &x in &post {
                    if x < range_cut && poly_eval(x) > floor {
                        s += x * 2.0;
                    }
                }
                s
            }),
        },
    ];
    report("adaptive_drift", n, rows, records);
}

fn measure() -> Vec<BenchRecord> {
    let mut records = Vec::new();
    adaptive_filter_reorder(&mut records);
    adaptive_drift(&mut records);
    records
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        SMOKE.store(true, Ordering::Relaxed);
        if std::env::var("BENCH_VM_JSON").is_err() {
            std::env::set_var("BENCH_VM_JSON", "target/BENCH_adaptive_smoke.json");
        }
    }
    println!("Feedback-directed optimization ablation (adaptive_* rows of BENCH_vm.json)");
    let records = measure();

    let path = std::env::var("BENCH_VM_JSON").unwrap_or_else(|_| "BENCH_vm.json".to_string());
    merge_bench_json(&path, &records).expect("write bench JSON");
    println!("\nmerged {} records into {path}", records.len());

    assert_speedup(&records, "adaptive_filter_reorder", "vm_static", "vm_adaptive");
    assert_speedup(&records, "adaptive_drift", "vm_stale", "vm_reopt");

    if smoke {
        // Same retry discipline as fig_vectorized: contention comes in
        // phases, so a failing gate backs off, re-measures, and gates on
        // the per-row floor across attempts.
        let mut merged = records;
        for attempt in 0.. {
            match smoke_gate(&merged, SMOKE_TOLERANCE) {
                Ok(()) => break,
                Err(failures) if attempt < 2 => {
                    eprintln!(
                        "smoke gate: {} row(s) over tolerance; backing off and re-measuring \
                         (attempt {}/3)",
                        failures.len(),
                        attempt + 2
                    );
                    std::thread::sleep(Duration::from_secs(60));
                    let retry = measure();
                    for r in &mut merged {
                        if let Some(t) = retry
                            .iter()
                            .find(|t| t.workload == r.workload && t.engine == r.engine)
                        {
                            if t.ns_per_elem < r.ns_per_elem {
                                *r = t.clone();
                            }
                        }
                    }
                }
                Err(failures) => {
                    for f in &failures {
                        eprintln!("smoke gate: {f}");
                    }
                    std::process::exit(1);
                }
            }
        }
    }
}
