/root/repo/target/debug/deps/end_to_end-59b2b39f392c8e2e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-59b2b39f392c8e2e: tests/end_to_end.rs

tests/end_to_end.rs:
