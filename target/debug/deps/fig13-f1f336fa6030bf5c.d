/root/repo/target/debug/deps/fig13-f1f336fa6030bf5c.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-f1f336fa6030bf5c: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
