//! The distributed k-means workload of §7.2.
//!
//! "Each iteration comprises two steps: 1. In parallel, for each data
//! point (nested Select), compute the distance to each centroid (Select),
//! and choose the cluster with the closest centroid (Aggregate). Then
//! group these results by cluster ID (GroupBy) and compute partial sums
//! of the points in each cluster (Aggregate). 2. Group the partial sums
//! from each partition by cluster ID (GroupBy), add them together
//! (Aggregate), and compute the new cluster centroids by taking the mean
//! (Select)."
//!
//! Step 1 is the distributed query built by [`assignment_query`]; its
//! grouped partial sums decompose across partitions exactly as §6
//! describes (per-partition `GroupByAggregate`, per-key merge). Step 2 is
//! the cheap driver-side recomputation in [`recompute_centroids`].

use crate::prng::SplitMix64;
use steno_expr::{Column, Expr, Ty, UdfRegistry, Value};
use steno_query::{GroupResult, Query, QueryExpr};

/// Generates `n` points of dimension `dim` clustered around `k` centers
/// (row-major).
pub fn clustered_points(n: usize, dim: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.range_f64(-10.0, 10.0)).collect())
        .collect();
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let c = &centers[rng.index(k)];
        for coord in c.iter().take(dim) {
            data.push(coord + rng.range_f64(-1.0, 1.0));
        }
    }
    data
}

/// Initial centroids as a broadcast column of `(id, centroid)` pairs.
pub fn centroid_column(centroids: &[Vec<f64>]) -> Column {
    Column::from_values(
        centroids
            .iter()
            .enumerate()
            .map(|(i, c)| Value::pair(Value::I64(i as i64), Value::row(c.clone())))
            .collect(),
    )
}

/// The user-defined functions of the workload: squared Euclidean distance
/// and vector sum/zero (the paper's queries freely call .NET methods; these
/// are the equivalent opaque user functions).
pub fn kmeans_udfs(dim: usize) -> UdfRegistry {
    let mut udfs = UdfRegistry::new();
    udfs.register("dist2", vec![Ty::Row, Ty::Row], Ty::F64, |args| {
        let a = args[0].as_row().expect("row");
        let b = args[1].as_row().expect("row");
        let mut s = 0.0;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            s += d * d;
        }
        Value::F64(s)
    });
    udfs.register("vadd", vec![Ty::Row, Ty::Row], Ty::Row, |args| {
        let a = args[0].as_row().expect("row");
        let b = args[1].as_row().expect("row");
        Value::row(a.iter().zip(b.iter()).map(|(x, y)| x + y).collect())
    });
    udfs.register("vzero", vec![], Ty::Row, move |_| {
        Value::row(vec![0.0; dim])
    });
    udfs
}

/// Step 1 of a k-means iteration as one declarative query over the
/// partitioned `points`, with `centroids` broadcast:
///
/// ```text
/// points
///   .Select(p => argmin over centroids by dist2(p, c))   // nested query
///   .Select(best => (clusterId, p))
///   .GroupBy(x => x.0, x => x.1,
///            (k, g) => (k, g.Aggregate((0⃗, 0), (acc, p) => (acc.0+p, acc.1+1))))
/// ```
///
/// The result is `(clusterId, (pointSum, count))` per cluster; the
/// aggregation declares an associative combiner, so the distributed
/// planner ships per-partition partial sums only (§6).
pub fn assignment_query() -> QueryExpr {
    let p = || Expr::var("p");
    // Nested: fold over centroids carrying ((id, p), bestDist).
    let nearest = Query::source("centroids")
        .select(
            Expr::mk_pair(
                Expr::var("c").field(0),
                Expr::call("dist2", vec![p(), Expr::var("c").field(1)]),
            ),
            "c",
        )
        .aggregate(
            Expr::mk_pair(
                Expr::mk_pair(Expr::liti(-1), p()),
                Expr::litf(f64::INFINITY),
            ),
            "best",
            "cur",
            Expr::if_(
                Expr::var("cur").field(1).lt(Expr::var("best").field(1)),
                Expr::mk_pair(
                    Expr::mk_pair(Expr::var("cur").field(0), p()),
                    Expr::var("cur").field(1),
                ),
                Expr::var("best"),
            ),
        );
    // Per-cluster partial sums with an associative combiner.
    let partial_sum = Query::over(Expr::var("g")).aggregate_assoc(
        Expr::mk_pair(Expr::call("vzero", vec![]), Expr::liti(0)),
        "acc",
        "pt",
        Expr::mk_pair(
            Expr::call("vadd", vec![Expr::var("acc").field(0), Expr::var("pt")]),
            Expr::var("acc").field(1) + Expr::liti(1),
        ),
        steno_query::QFn2::new(
            "a",
            "b",
            Expr::mk_pair(
                Expr::call("vadd", vec![Expr::var("a").field(0), Expr::var("b").field(0)]),
                Expr::var("a").field(1) + Expr::var("b").field(1),
            ),
        ),
    );
    Query::source("points")
        .select_query(nearest, "p")
        .select(Expr::var("kv").field(0), "kv")
        .group_by_elem_result(
            Expr::var("x").field(0),
            Expr::var("x").field(1),
            "x",
            GroupResult::keyed("k", "g", partial_sum.build()),
        )
        .build()
}

/// Step 2: new centroids from `(clusterId, (pointSum, count))` rows,
/// keeping the previous centroid for empty clusters.
pub fn recompute_centroids(result: &Value, previous: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut out = previous.to_vec();
    let rows = result.as_seq().expect("grouped result");
    for row in rows {
        let (k, agg) = row.as_pair().expect("(id, agg)");
        let id = k.as_i64().expect("cluster id") as usize;
        let (sum, count) = agg.as_pair().expect("(sum, count)");
        let n = count.as_i64().expect("count");
        if n > 0 {
            let s = sum.as_row().expect("sum row");
            out[id] = s.iter().map(|x| x / n as f64).collect();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_cluster::{execute_distributed, ClusterSpec, DistributedCollection, VertexEngine};
    use steno_expr::DataContext;
    use steno_linq::interp;

    #[test]
    fn assignment_assigns_points_to_nearest_centroid() {
        // Two well-separated clusters in 2-D.
        let points = vec![
            0.1, 0.0, 0.0, 0.2, -0.1, 0.1, // near (0, 0)
            9.9, 10.1, 10.0, 9.8, // near (10, 10)
        ];
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let ctx = DataContext::new()
            .with_source("points", Column::from_rows(points, 2))
            .with_source("centroids", centroid_column(&centroids));
        let udfs = kmeans_udfs(2);
        let q = assignment_query();
        let result = interp::execute(&q, &ctx, &udfs).unwrap();
        let rows = result.as_seq().unwrap();
        assert_eq!(rows.len(), 2);
        let (k0, agg0) = rows[0].as_pair().unwrap();
        assert_eq!(k0.as_i64(), Some(0));
        assert_eq!(agg0.as_pair().unwrap().1.as_i64(), Some(3));
        let (k1, agg1) = rows[1].as_pair().unwrap();
        assert_eq!(k1.as_i64(), Some(1));
        assert_eq!(agg1.as_pair().unwrap().1.as_i64(), Some(2));
    }

    #[test]
    fn distributed_iteration_matches_serial_and_both_engines_agree() {
        let dim = 3;
        let n = 240;
        let k = 4;
        let data = clustered_points(n, dim, k, 7);
        let mut rng_centroids: Vec<Vec<f64>> = (0..k)
            .map(|i| data[i * dim..(i + 1) * dim].to_vec())
            .collect();
        let udfs = kmeans_udfs(dim);
        let q = assignment_query();

        // Serial reference.
        let serial_ctx = DataContext::new()
            .with_source("points", Column::from_rows(data.clone(), dim))
            .with_source("centroids", centroid_column(&rng_centroids));
        let serial = interp::execute(&q, &serial_ctx, &udfs).unwrap();

        // Distributed, both engines.
        let input = DistributedCollection::from_rows("points", data, dim, 6);
        let broadcast =
            DataContext::new().with_source("centroids", centroid_column(&rng_centroids));
        let spec = ClusterSpec { workers: 3 };
        for engine in [VertexEngine::Steno, VertexEngine::Linq] {
            let (got, report) =
                execute_distributed(&q, &input, &broadcast, &udfs, &spec, engine).unwrap();
            assert!(report.partial_aggregation, "plan must use Agg_i (§6)");
            // Cluster counts must agree exactly; sums up to fp tolerance.
            let mut serial_counts: Vec<(i64, i64)> = serial
                .as_seq()
                .unwrap()
                .iter()
                .map(|r| {
                    let (k, a) = r.as_pair().unwrap();
                    (k.as_i64().unwrap(), a.as_pair().unwrap().1.as_i64().unwrap())
                })
                .collect();
            let mut got_counts: Vec<(i64, i64)> = got
                .as_seq()
                .unwrap()
                .iter()
                .map(|r| {
                    let (k, a) = r.as_pair().unwrap();
                    (k.as_i64().unwrap(), a.as_pair().unwrap().1.as_i64().unwrap())
                })
                .collect();
            serial_counts.sort();
            got_counts.sort();
            assert_eq!(serial_counts, got_counts, "engine {engine:?}");
        }

        // One full iteration converges centroids sensibly.
        let new_centroids = recompute_centroids(&serial, &rng_centroids);
        assert_eq!(new_centroids.len(), k);
        rng_centroids = new_centroids;
        assert_eq!(rng_centroids[0].len(), dim);
    }
}
