//! The unoptimized vertex executor: a QUIL chain run through boxed
//! iterator state machines with per-element expression interpretation.
//!
//! This executes *exactly the same plan* as the Steno-compiled vertex —
//! including partial grouped aggregation — but through the lazy iterator
//! machinery of `steno-linq`, paying the virtual-call and interpretation
//! overheads that Steno eliminates. It is the "unoptimized" bar in the
//! distributed k-means experiment (Fig. 14).
//!
//! Environments are threaded through the iterator closures as a shared
//! cell with bind/restore bracketing (a stack discipline), rather than
//! cloned per element — the interpreter models the *iterator* overheads
//! under study, not accidental allocation.

use std::cell::RefCell;
use std::rc::Rc;

use steno_expr::eval::{eval, Env};
use steno_expr::{DataContext, EvalError, Expr, UdfRegistry, Value};
use steno_linq::Enumerable;
use steno_quil::ir::{AggDesc, PredKind, QuilChain, QuilOp, SinkKind, SrcDesc, TransKind};

type EnvCell = Rc<RefCell<Env>>;

/// Applies an aggregate's finish projection.
pub fn finish_agg(agg: &AggDesc, acc: Value, udfs: &UdfRegistry) -> Result<Value, EvalError> {
    match &agg.finish {
        None => Ok(acc),
        Some(f) => {
            let env = Env::new().with(agg.acc_param.clone(), acc);
            eval(f, &env, udfs)
        }
    }
}

/// Combines two partial accumulators with the aggregate's combiner.
///
/// # Panics
///
/// Panics if the aggregate has no combiner (callers check
/// [`AggDesc::is_associative`]).
pub fn combine_agg(
    agg: &AggDesc,
    a: Value,
    b: Value,
    udfs: &UdfRegistry,
) -> Result<Value, EvalError> {
    let combine = agg.combine.as_ref().expect("aggregate has a combiner");
    let env = Env::new()
        .with(agg.acc_param.clone(), a)
        .with(agg.rhs_param.clone(), b);
    eval(combine, &env, udfs)
}

fn value_to_enumerable(v: Value) -> Enumerable<Value> {
    match v {
        Value::Seq(s) => Enumerable::from_vec(s.as_ref().clone()),
        Value::Row(r) => Enumerable::from_vec(r.iter().map(|x| Value::F64(*x)).collect()),
        other => panic!("expected a sequence-shaped value, found {other}"),
    }
}

/// Evaluates `body` with `param` bound to `arg`, restoring any shadowed
/// binding afterwards.
fn eval_with(body: &Expr, param: &str, arg: Value, env: &EnvCell, udfs: &UdfRegistry) -> Value {
    let mut e = env.borrow_mut();
    let shadowed = e.bind_shadowing(param, arg);
    let out = eval(body, &e, udfs).expect("well-typed chain body failed");
    e.restore(param, shadowed);
    out
}

fn src_enumerable(
    src: &SrcDesc,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &EnvCell,
) -> Result<Enumerable<Value>, EvalError> {
    match src {
        SrcDesc::Collection { name, .. } => {
            let col = ctx
                .source(name)
                .ok_or_else(|| EvalError::UnboundVariable(format!("source `{name}`")))?;
            Ok(Enumerable::from_vec(col.to_values()))
        }
        SrcDesc::Range { start, count } => Ok(Enumerable::range(*start, *count).select(Value::I64)),
        SrcDesc::Repeat { value, count } => Ok(Enumerable::repeat(value.clone(), *count)),
        SrcDesc::Expr { expr, .. } => {
            let v = eval(expr, &env.borrow(), udfs)?;
            Ok(value_to_enumerable(v))
        }
    }
}

fn chain_enumerable(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &EnvCell,
) -> Result<Enumerable<Value>, EvalError> {
    let mut e = src_enumerable(&chain.src, ctx, udfs, env)?;
    for op in &chain.ops {
        e = apply_op(e, op, ctx, udfs, env)?;
    }
    Ok(e)
}

fn apply_op(
    input: Enumerable<Value>,
    op: &QuilOp,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &EnvCell,
) -> Result<Enumerable<Value>, EvalError> {
    let ctx = ctx.clone();
    let udfs = udfs.clone();
    let env = Rc::clone(env);
    Ok(match op {
        QuilOp::Trans { param, kind, .. } => match kind.clone() {
            TransKind::Expr(body) => {
                let param = param.clone();
                input.select(move |v| eval_with(&body, &param, v, &env, &udfs))
            }
            TransKind::Nested(nested) => {
                let param = param.clone();
                if nested.chain.is_scalar() {
                    // One scalar per element, optionally wrapped.
                    input.select(move |v| {
                        let shadowed = env.borrow_mut().bind_shadowing(&param, v);
                        let agg = execute_chain_cell(&nested.chain, &ctx, &udfs, &env)
                            .expect("nested chain failed");
                        let out = match &nested.wrap {
                            None => agg,
                            Some((p, w)) => eval_with(w, p, agg, &env, &udfs),
                        };
                        env.borrow_mut().restore(&param, shadowed);
                        out
                    })
                } else {
                    // Splice (SelectMany). The binding must stay live
                    // while the inner enumerator is pulled; the select
                    // over the (eagerly materialized) inner results makes
                    // the bracketing safe.
                    input.select_many(move |v| {
                        let shadowed = env.borrow_mut().bind_shadowing(&param, v);
                        let inner = chain_enumerable(&nested.chain, &ctx, &udfs, &env)
                            .expect("nested chain failed");
                        let items = inner.to_vec();
                        env.borrow_mut().restore(&param, shadowed);
                        Enumerable::from_vec(items)
                    })
                }
            }
        },
        QuilOp::Pred { param, kind, .. } => match kind.clone() {
            PredKind::Expr(body) => {
                let param = param.clone();
                input.where_(move |v| {
                    eval_with(&body, &param, v, &env, &udfs)
                        .as_bool()
                        .expect("predicate must yield bool")
                })
            }
            PredKind::Nested(chain) => {
                let param = param.clone();
                input.where_(move |v| {
                    let shadowed = env.borrow_mut().bind_shadowing(&param, v);
                    let out = execute_chain_cell(&chain, &ctx, &udfs, &env)
                        .expect("nested predicate failed")
                        .as_bool()
                        .expect("nested predicate must yield bool");
                    env.borrow_mut().restore(&param, shadowed);
                    out
                })
            }
            PredKind::Take(n) => input.take(n),
            PredKind::Skip(n) => input.skip(n),
            PredKind::TakeWhile(body) => {
                let param = param.clone();
                input.take_while(move |v| {
                    eval_with(&body, &param, v, &env, &udfs)
                        .as_bool()
                        .expect("predicate must yield bool")
                })
            }
            PredKind::SkipWhile(body) => {
                let param = param.clone();
                input.skip_while(move |v| {
                    eval_with(&body, &param, v, &env, &udfs)
                        .as_bool()
                        .expect("predicate must yield bool")
                })
            }
        },
        QuilOp::Sink(sink) => {
            let sink = sink.clone();
            match sink.kind.clone() {
                SinkKind::GroupBy { key, elem, .. } => {
                    let param = sink.param.clone();
                    Enumerable::new(move || {
                        let mut index = std::collections::HashMap::new();
                        let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
                        let mut it = input.get_enumerator();
                        while it.move_next() {
                            let item = it.current();
                            let k = eval_with(&key, &param, item.clone(), &env, &udfs);
                            let v = match &elem {
                                Some(sel) => eval_with(sel, &param, item, &env, &udfs),
                                None => item,
                            };
                            let slot = *index.entry(k.key()).or_insert_with(|| {
                                groups.push((k, Vec::new()));
                                groups.len() - 1
                            });
                            groups[slot].1.push(v);
                        }
                        let pairs: Vec<Value> = groups
                            .into_iter()
                            .map(|(k, vs)| Value::pair(k, Value::seq(vs)))
                            .collect();
                        Enumerable::from_vec(pairs).get_enumerator()
                    })
                }
                SinkKind::GroupByAggregate {
                    key,
                    elem,
                    agg,
                    key_param,
                    agg_param,
                    result,
                    ..
                } => {
                    let param = sink.param.clone();
                    Enumerable::new(move || {
                        let init =
                            eval(&agg.init, &env.borrow(), &udfs).expect("seed failed");
                        let mut index = std::collections::HashMap::new();
                        let mut entries: Vec<(Value, Value)> = Vec::new();
                        let mut it = input.get_enumerator();
                        while it.move_next() {
                            let item = it.current();
                            let k = eval_with(&key, &param, item.clone(), &env, &udfs);
                            let v = match &elem {
                                Some(sel) => eval_with(sel, &param, item, &env, &udfs),
                                None => item,
                            };
                            let slot = *index.entry(k.key()).or_insert_with(|| {
                                entries.push((k, init.clone()));
                                entries.len() - 1
                            });
                            // acc' = update(acc, v)
                            let mut e = env.borrow_mut();
                            let s1 = e.bind_shadowing(&agg.acc_param, entries[slot].1.clone());
                            let s2 = e.bind_shadowing(&agg.elem_param, v);
                            entries[slot].1 =
                                eval(&agg.update, &e, &udfs).expect("update failed");
                            e.restore(&agg.elem_param, s2);
                            e.restore(&agg.acc_param, s1);
                        }
                        let out: Vec<Value> = entries
                            .into_iter()
                            .map(|(k, acc)| {
                                let fin =
                                    finish_agg(&agg, acc, &udfs).expect("finish failed");
                                let mut e = env.borrow_mut();
                                let s1 = e.bind_shadowing(&key_param, k);
                                let s2 = e.bind_shadowing(&agg_param, fin);
                                let r = eval(&result, &e, &udfs).expect("result failed");
                                e.restore(&agg_param, s2);
                                e.restore(&key_param, s1);
                                r
                            })
                            .collect();
                        Enumerable::from_vec(out).get_enumerator()
                    })
                }
                SinkKind::OrderBy { key, descending } => {
                    let param = sink.param.clone();
                    Enumerable::new(move || {
                        let mut decorated: Vec<(Value, Value)> = Vec::new();
                        let mut it = input.get_enumerator();
                        while it.move_next() {
                            let item = it.current();
                            decorated.push((
                                eval_with(&key, &param, item.clone(), &env, &udfs),
                                item,
                            ));
                        }
                        decorated.sort_by(|(a, _), (b, _)| {
                            let ord = a.cmp_total(b);
                            if descending {
                                ord.reverse()
                            } else {
                                ord
                            }
                        });
                        let items: Vec<Value> =
                            decorated.into_iter().map(|(_, v)| v).collect();
                        Enumerable::from_vec(items).get_enumerator()
                    })
                }
                SinkKind::Distinct => input.distinct_by(|v| v.key()),
                SinkKind::ToVec => {
                    let materialized = input.to_vec();
                    Enumerable::from_vec(materialized)
                }
            }
        }
    })
}

fn execute_chain_cell(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &EnvCell,
) -> Result<Value, EvalError> {
    let stream = chain_enumerable(chain, ctx, udfs, env)?;
    match &chain.agg {
        None => Ok(Value::seq(stream.to_vec())),
        Some(agg) => {
            let mut acc = eval(&agg.init, &env.borrow(), udfs)?;
            let mut it = stream.get_enumerator();
            while it.move_next() {
                let item = it.current();
                let mut e = env.borrow_mut();
                let s1 = e.bind_shadowing(&agg.acc_param, acc);
                let s2 = e.bind_shadowing(&agg.elem_param, item);
                let next = eval(&agg.update, &e, udfs);
                e.restore(&agg.elem_param, s2);
                e.restore(&agg.acc_param, s1);
                drop(e);
                acc = next?;
            }
            finish_agg(agg, acc, udfs)
        }
    }
}

/// Executes a QUIL chain through iterator state machines, with an
/// enclosing scope (nested chains reference outer variables).
///
/// # Errors
///
/// Returns an error for unresolvable sources; data-dependent failures
/// panic, matching `steno_linq::interp`.
pub fn execute_chain_in(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &Env,
) -> Result<Value, EvalError> {
    let cell = Rc::new(RefCell::new(env.clone()));
    execute_chain_cell(chain, ctx, udfs, &cell)
}

/// Executes a QUIL chain with an empty enclosing scope.
///
/// # Errors
///
/// As [`execute_chain_in`].
pub fn execute_chain(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
) -> Result<Value, EvalError> {
    execute_chain_in(chain, ctx, udfs, &Env::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Ty;
    use steno_linq::interp;
    use steno_query::{GroupResult, Query};
    use steno_quil::lower;

    fn ctx() -> DataContext {
        DataContext::new()
            .with_source("xs", vec![1.0, -2.0, 3.0, 4.5])
            .with_source("ns", vec![5i64, 2, 7, 2, 9])
    }

    /// chain-interp == AST interp for a set of plans.
    #[track_caller]
    fn check(q: steno_query::QueryExpr) {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let chain = lower(&q, &(&c).into(), &udfs).unwrap();
        let via_chain = execute_chain(&chain, &c, &udfs).unwrap();
        let via_ast = interp::execute(&q, &c, &udfs).unwrap();
        assert_eq!(via_chain.key(), via_ast.key(), "query {q}");
    }

    #[test]
    fn matches_ast_interpreter() {
        use steno_expr::Expr;
        let x = || Expr::var("x");
        check(Query::source("xs").select(x() * x(), "x").sum().build());
        check(
            Query::source("ns")
                .where_((x() % Expr::liti(2)).eq(Expr::liti(0)), "x")
                .build(),
        );
        check(Query::source("xs").take(2).min().build());
        check(
            Query::source("ns")
                .group_by_result(
                    x() % Expr::liti(3),
                    "x",
                    GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
                )
                .build(),
        );
        check(
            Query::source("xs")
                .select_many(
                    Query::source("xs").select(Expr::var("y") * x(), "y"),
                    "x",
                )
                .sum()
                .build(),
        );
        check(Query::source("xs").order_by(x(), "x").build());
        check(Query::source("ns").distinct().count().build());
        // Same parameter name reused across nesting levels: the
        // bind/restore stack discipline must keep them straight.
        check(
            Query::source("xs")
                .select_many(
                    Query::source("xs").select(Expr::var("x") + Expr::litf(1.0), "x"),
                    "x",
                )
                .sum()
                .build(),
        );
    }

    #[test]
    fn combine_and_finish_helpers() {
        let udfs = UdfRegistry::new();
        let agg = steno_quil::lower::builtin_agg(steno_query::AggOp::Average, &Ty::F64).unwrap();
        // Two partials: (sum, count) = (6, 2) and (4, 2).
        let a = Value::pair(Value::F64(6.0), Value::I64(2));
        let b = Value::pair(Value::F64(4.0), Value::I64(2));
        let merged = combine_agg(&agg, a, b, &udfs).unwrap();
        let fin = finish_agg(&agg, merged, &udfs).unwrap();
        assert_eq!(fin, Value::F64(2.5));
    }
}
