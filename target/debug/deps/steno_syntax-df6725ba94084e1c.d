/root/repo/target/debug/deps/steno_syntax-df6725ba94084e1c.d: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_syntax-df6725ba94084e1c.rlib: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_syntax-df6725ba94084e1c.rmeta: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs Cargo.toml

crates/steno-syntax/src/lib.rs:
crates/steno-syntax/src/lexer.rs:
crates/steno-syntax/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
