//! A tiny deterministic PRNG for examples and tests.
//!
//! The build environment is fully offline, so examples and the
//! property-style tests cannot pull an external RNG crate. SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) is a one-liner with excellent
//! statistical quality for data-generation purposes, and — crucially for
//! reproducibility — the same seed always yields the same workload.

/// A SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index over an empty range");
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// A uniform draw from `lo..hi` (`hi > lo`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span.max(1)) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(c.index(13) < 13);
            let r = c.range_i64(-5, 5);
            assert!((-5..5).contains(&r));
        }
    }
}
