//! The §7.1 break-even model for tier choice.
//!
//! The VM has three execution tiers — batch-vectorized, fused
//! whole-tape kernels, and scalar bytecode — and historically picked
//! between them with a *static* preference order. That order is right
//! for large inputs (batch setup amortizes over many elements) and
//! wrong for small ones (a few hundred elements never pay back the
//! per-loop batch machinery). This module turns measured run facts into
//! an explicit, explainable tier recommendation.

use std::fmt;

/// Observed facts about one loop, gathered by profiled runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoopStats {
    /// Elements flowing into the loop per run (exponentially decayed
    /// mean when fed from a [`crate::PlanStats`]).
    pub elements: f64,
    /// Fraction of batch lanes surviving selection, in `[0, 1]`;
    /// `None` when the loop has no filters or no profile exists yet.
    pub density: Option<f64>,
}

/// The compiler-facing recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierAdvice {
    /// Large enough input: keep the default vectorize-first order.
    PreferVectorized,
    /// Batch setup will not amortize; compile straight to the scalar
    /// tier.
    PreferScalar,
}

impl fmt::Display for TierAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierAdvice::PreferVectorized => write!(f, "vectorized"),
            TierAdvice::PreferScalar => write!(f, "scalar"),
        }
    }
}

/// Below this many *batches* worth of elements, per-loop batch setup
/// (column allocation, selection vectors, kernel dispatch) dominates
/// the dense-kernel win and the scalar tier is faster end to end. Two
/// batches is the measured break-even on the bench corpus: one batch
/// never amortizes, and the gap closes quickly after that.
const MIN_BATCHES_TO_AMORTIZE: f64 = 2.0;

/// Advises a tier for a loop given its observed stats, returning the
/// advice plus a human-readable rationale (surfaced verbatim in
/// `EXPLAIN` as the `chosen-by:` line).
pub fn choose_tier(stats: &LoopStats, batch: usize) -> (TierAdvice, String) {
    let break_even = MIN_BATCHES_TO_AMORTIZE * batch as f64;
    if stats.elements > 0.0 && stats.elements < break_even {
        return (
            TierAdvice::PreferScalar,
            format!(
                "observed ~{:.0} elements < {:.0} break-even: batch setup would not amortize",
                stats.elements, break_even
            ),
        );
    }
    let density_note = match stats.density {
        Some(d) => format!(", density {d:.2}"),
        None => String::new(),
    };
    (
        TierAdvice::PreferVectorized,
        format!(
            "observed ~{:.0} elements ≥ {:.0} break-even{density_note}",
            stats.elements, break_even
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_prefer_scalar() {
        let (advice, why) = choose_tier(
            &LoopStats {
                elements: 100.0,
                density: None,
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferScalar);
        assert!(why.contains("100"), "{why}");
        assert!(why.contains("2048"), "{why}");
    }

    #[test]
    fn large_inputs_prefer_vectorized() {
        let (advice, why) = choose_tier(
            &LoopStats {
                elements: 1_000_000.0,
                density: Some(0.25),
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferVectorized);
        assert!(why.contains("density 0.25"), "{why}");
    }

    #[test]
    fn zero_observation_keeps_default() {
        // No profile yet: do not override the static order.
        let (advice, _) = choose_tier(&LoopStats::default(), 1024);
        assert_eq!(advice, TierAdvice::PreferVectorized);
    }

    #[test]
    fn break_even_boundary_is_inclusive_for_vectorized() {
        let (advice, _) = choose_tier(
            &LoopStats {
                elements: 2048.0,
                density: None,
            },
            1024,
        );
        assert_eq!(advice, TierAdvice::PreferVectorized);
    }
}
