//! Source enumerators: vectors, `Range` and `Repeat`.

use std::rc::Rc;

use crate::enumerable::Enumerable;
use crate::enumerator::Enumerator;

/// Enumerates a shared vector. This is what `GetEnumerator()` on a
/// `List<T>` returns: an index-walking state machine.
pub(crate) struct VecEnumerator<T> {
    data: Rc<Vec<T>>,
    /// Position of the *current* element plus one; `0` means "before
    /// the first element", as in .NET.
    pos: usize,
}

impl<T: Clone> Enumerator for VecEnumerator<T> {
    type Item = T;

    fn move_next(&mut self) -> bool {
        if self.pos < self.data.len() {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn current(&self) -> T {
        assert!(self.pos > 0, "current() called before move_next()");
        self.data[self.pos - 1].clone()
    }
}

/// The `Enumerable.Range(start, count)` generator.
struct RangeEnumerator {
    next: i64,
    remaining: usize,
    started: bool,
}

impl Enumerator for RangeEnumerator {
    type Item = i64;

    fn move_next(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        if self.started {
            self.next += 1;
        }
        self.started = true;
        self.remaining -= 1;
        true
    }

    fn current(&self) -> i64 {
        assert!(self.started, "current() called before move_next()");
        self.next
    }
}

/// The `Enumerable.Repeat(value, count)` generator.
struct RepeatEnumerator<T> {
    value: T,
    remaining: usize,
    started: bool,
}

impl<T: Clone> Enumerator for RepeatEnumerator<T> {
    type Item = T;

    fn move_next(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.started = true;
        self.remaining -= 1;
        true
    }

    fn current(&self) -> T {
        assert!(self.started, "current() called before move_next()");
        self.value.clone()
    }
}

impl<T: Clone + 'static> Enumerable<T> {
    /// Wraps a vector as an enumerable source.
    pub fn from_vec(data: Vec<T>) -> Enumerable<T> {
        Enumerable::from_rc_vec(Rc::new(data))
    }

    /// Wraps a shared vector as an enumerable source without copying.
    pub fn from_rc_vec(data: Rc<Vec<T>>) -> Enumerable<T> {
        Enumerable::new(move || Box::new(VecEnumerator {
            data: Rc::clone(&data),
            pos: 0,
        }))
    }

    /// An empty enumerable.
    pub fn empty() -> Enumerable<T> {
        Enumerable::from_vec(Vec::new())
    }

    /// `Enumerable.Repeat(value, count)`: `count` copies of `value`.
    pub fn repeat(value: T, count: usize) -> Enumerable<T> {
        Enumerable::new(move || {
            Box::new(RepeatEnumerator {
                value: value.clone(),
                remaining: count,
                started: false,
            })
        })
    }
}

impl Enumerable<i64> {
    /// `Enumerable.Range(start, count)`: the integers
    /// `start, start+1, ..., start+count-1`.
    pub fn range(start: i64, count: usize) -> Enumerable<i64> {
        Enumerable::new(move || {
            Box::new(RangeEnumerator {
                next: start,
                remaining: count,
                started: false,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_yields_consecutive_integers() {
        assert_eq!(Enumerable::range(3, 4).to_vec(), vec![3, 4, 5, 6]);
        assert_eq!(Enumerable::range(0, 0).to_vec(), Vec::<i64>::new());
        assert_eq!(Enumerable::range(-2, 3).to_vec(), vec![-2, -1, 0]);
    }

    #[test]
    fn repeat_yields_copies() {
        assert_eq!(Enumerable::repeat(7.5f64, 3).to_vec(), vec![7.5, 7.5, 7.5]);
        assert!(Enumerable::repeat(1, 0).to_vec().is_empty());
    }

    #[test]
    fn vec_source_is_re_enumerable() {
        // A LINQ query can be enumerated many times; each GetEnumerator()
        // call starts a fresh pass over the source.
        let xs = Enumerable::from_vec(vec![1, 2, 3]);
        assert_eq!(xs.to_vec(), vec![1, 2, 3]);
        assert_eq!(xs.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "before move_next")]
    fn current_before_move_next_panics() {
        let xs = Enumerable::from_vec(vec![1]);
        let e = xs.get_enumerator();
        let _ = e.current();
    }
}
