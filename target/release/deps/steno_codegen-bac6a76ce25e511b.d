/root/repo/target/release/deps/steno_codegen-bac6a76ce25e511b.d: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/release/deps/libsteno_codegen-bac6a76ce25e511b.rlib: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/release/deps/libsteno_codegen-bac6a76ce25e511b.rmeta: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

crates/steno-codegen/src/lib.rs:
crates/steno-codegen/src/generate.rs:
crates/steno-codegen/src/imp.rs:
crates/steno-codegen/src/printer.rs:
