/root/repo/target/release/examples/explain_profile-58f35a6663a31910.d: examples/explain_profile.rs

/root/repo/target/release/examples/explain_profile-58f35a6663a31910: examples/explain_profile.rs

examples/explain_profile.rs:
