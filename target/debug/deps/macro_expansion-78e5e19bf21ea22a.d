/root/repo/target/debug/deps/macro_expansion-78e5e19bf21ea22a.d: tests/macro_expansion.rs

/root/repo/target/debug/deps/macro_expansion-78e5e19bf21ea22a: tests/macro_expansion.rs

tests/macro_expansion.rs:
