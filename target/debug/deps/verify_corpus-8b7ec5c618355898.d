/root/repo/target/debug/deps/verify_corpus-8b7ec5c618355898.d: tests/verify_corpus.rs Cargo.toml

/root/repo/target/debug/deps/libverify_corpus-8b7ec5c618355898.rmeta: tests/verify_corpus.rs Cargo.toml

tests/verify_corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
