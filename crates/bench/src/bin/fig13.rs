//! Figure 13 (§7.1): the four sequential microbenchmarks — Sum, SumSq,
//! Cart and Group — as LINQ, Steno including compilation, Steno excluding
//! compilation, and hand-optimized code, normalized to the LINQ time.
//!
//! Paper results: speedups of 3.32× (Sum) to 14.1× (Group); Steno-vs-hand
//! overhead 53% for Sum and <3% for the others; one-off compilation cost
//! ≈69 ms.
//!
//! Scale with `STENO_SCALE` (default 1.0: Sum/SumSq/Group on 10^7
//! doubles; Cart on 10^5 × 10^3 — the paper's 10^7 × 10^3 product is
//! scaled to keep single-core runtime reasonable, see EXPERIMENTS.md).

use bench::micro::{bench_cart, bench_group, bench_sum, bench_sumsq, FourWay};
use bench::workloads::{mixture_of_gaussians, scaled, uniform_doubles};

fn main() {
    let n = scaled(10_000_000);
    let cart_outer = scaled(100_000);
    let cart_inner = 1000;
    println!("Figure 13: sequential microbenchmarks (normalized to LINQ = 1.0)");
    println!(
        "  Sum/SumSq/Group: {n} doubles; Cart: {cart_outer} x {cart_inner}\n"
    );

    let uniform = uniform_doubles(n, 42);
    let gauss = mixture_of_gaussians(n, 43);
    let cart_xs = uniform_doubles(cart_outer, 44);
    let cart_ys = uniform_doubles(cart_inner, 45);

    let mut rows: Vec<FourWay> = Vec::new();
    for pass in 0..2 {
        let r = [
            bench_sum(&uniform),
            bench_sumsq(&uniform),
            bench_cart(&cart_xs, &cart_ys),
            bench_group(&gauss),
        ];
        if pass == 1 {
            rows.extend(r);
        }
    }
    for r in &rows {
        println!("{}", r.row());
    }
    let avg_compile: f64 = rows
        .iter()
        .map(|r| r.steno_compile.as_secs_f64() * 1e3)
        .sum::<f64>()
        / rows.len() as f64;
    println!("\naverage one-off optimization cost: {avg_compile:.2} ms (paper: ~69 ms via csc)");
    println!("paper speedups: Sum 3.32x ... Group 14.1x; worst Steno-vs-hand overhead 53% (Sum)");
}
