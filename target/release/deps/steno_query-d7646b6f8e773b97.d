/root/repo/target/release/deps/steno_query-d7646b6f8e773b97.d: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/release/deps/libsteno_query-d7646b6f8e773b97.rlib: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/release/deps/libsteno_query-d7646b6f8e773b97.rmeta: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

crates/steno-query/src/lib.rs:
crates/steno-query/src/ast.rs:
crates/steno-query/src/builder.rs:
crates/steno-query/src/typing.rs:
