/root/repo/target/release/examples/quickstart-6bb448e3c1194757.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6bb448e3c1194757: examples/quickstart.rs

examples/quickstart.rs:
