/root/repo/target/release/deps/fig_vectorized-465217772def2b1c.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/release/deps/fig_vectorized-465217772def2b1c: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
