//! End-to-end flight-recorder acceptance: a query served through the
//! full admit → queue → compile → execute pipeline that trips an
//! anomaly must leave a complete annotated trace — parent-linked spans
//! for every lifecycle phase plus the query's EXPLAIN JSON — in the
//! engine's flight recorder.

use std::sync::Arc;
use std::time::{Duration, Instant};

use steno::Steno;
use steno_cluster::{FaultKind, FaultPlan};
use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_obs::{Anomaly, FlightRecorder, MemoryCollector, SpanRecord, TraceConfig};
use steno_query::{Query, QueryExpr};
use steno_serve::{QueryRequest, QueryService, ServeConfig, ServeError};

fn sum_query(threshold: f64) -> QueryExpr {
    Query::source("xs")
        .where_(Expr::var("x").gt(Expr::litf(threshold)), "x")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build()
}

fn ctx(n: usize) -> DataContext {
    DataContext::new().with_source("xs", (0..n).map(|i| i as f64).collect::<Vec<_>>())
}

/// Asserts `child` is present and parented under `parent`.
fn assert_child_of(spans: &[SpanRecord], child: &str, parent: &str) {
    let p = spans
        .iter()
        .find(|s| s.name == parent)
        .unwrap_or_else(|| panic!("missing span {parent}"));
    let c = spans
        .iter()
        .find(|s| s.name == child)
        .unwrap_or_else(|| panic!("missing span {child}"));
    assert_eq!(
        c.parent,
        Some(p.id),
        "{child} must be a child of {parent}, got parent {:?}",
        c.parent
    );
}

/// The acceptance scenario: a single worker, a scripted 200ms delay on
/// the first attempt of the first job, a 50ms deadline. The compile
/// completes in budget, the injected delay sleeps the attempt past the
/// deadline, and the VM aborts at its first interrupt poll — *inside* a
/// loop whose span has already opened. Deterministic: no data race, no
/// timing sensitivity beyond 200ms ≫ 50ms.
#[test]
fn deadline_exceeded_query_dumps_a_fully_linked_trace() {
    let recorder = Arc::new(FlightRecorder::new(TraceConfig::default()));
    let engine = Steno::new().with_flight_recorder(recorder.clone());
    let svc = QueryService::start(
        engine,
        ServeConfig {
            workers: 1,
            faults: FaultPlan::none().with(0, 0, FaultKind::Delay(Duration::from_millis(200))),
            ..ServeConfig::default()
        },
    );

    let req = QueryRequest::new("acme", sum_query(0.5), ctx(10_000), UdfRegistry::new())
        .with_deadline(Duration::from_millis(50));
    let err = svc.execute_blocking(req).unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);

    let dumps = recorder.dumps();
    assert_eq!(dumps.len(), 1, "exactly one anomalous trace");
    let trace = &dumps[0];
    assert_eq!(trace.anomaly, Some(Anomaly::DeadlineExceeded));
    assert_eq!(trace.tenant.as_deref(), Some("acme"));

    // The whole lifecycle, parent-linked: request root over admission,
    // queue wait, and dispatch; compile and the attempt under dispatch;
    // the VM run under the attempt; the aborted loop under the run.
    let spans = &trace.spans;
    let root = trace.span("serve.request").expect("serve.request root");
    assert_eq!(root.parent, None, "the request span is the trace root");
    assert_child_of(spans, "serve.admit", "serve.request");
    assert_child_of(spans, "serve.queue", "serve.request");
    assert_child_of(spans, "serve.dispatch", "serve.request");
    assert_child_of(spans, "engine.compile", "serve.dispatch");
    assert_child_of(spans, "serve.attempt", "serve.dispatch");
    assert_child_of(spans, "vm.run", "serve.attempt");
    assert_child_of(spans, "vm.loop", "vm.run");

    // Annotations survive: the queue span carries its measured wait,
    // the attempt carries the scripted delay, the root the outcome.
    assert!(trace.span("serve.queue").unwrap().note("wait_ns").is_some());
    assert!(trace
        .span("serve.attempt")
        .unwrap()
        .note("injected_delay_ns")
        .is_some());
    assert_eq!(
        trace.span("serve.request").unwrap().note("outcome").map(ToString::to_string),
        Some("deadline-exceeded".to_string())
    );

    // EXPLAIN rides along, as valid JSON.
    let explain = trace.explain_json.as_deref().expect("EXPLAIN attached");
    steno_obs::json::parse(explain).expect("EXPLAIN JSON parses");
    assert!(explain.contains("\"optimized\": true"), "{explain}");
    assert!(explain.contains("\"quil\""), "{explain}");

    // The rendered dump is the operator-facing artifact.
    let dump = recorder.last_dump().expect("a rendered dump");
    for needle in ["serve.request", "serve.queue", "vm.loop", "explain:"] {
        assert!(dump.contains(needle), "dump missing {needle}:\n{dump}");
    }
}

/// A clean query under a zero slow-query threshold still dumps (the
/// threshold comparison is `>=`), with EXPLAIN attached — and the
/// service's per-tenant metric families record the outcome.
#[test]
fn slow_query_threshold_and_tenant_families() {
    let metrics = Arc::new(MemoryCollector::new());
    let recorder = Arc::new(FlightRecorder::new(TraceConfig {
        slow_query: Some(Duration::ZERO),
        ..TraceConfig::default()
    }));
    let engine = Steno::new()
        .with_collector(metrics.clone())
        .with_flight_recorder(recorder.clone());
    let svc = QueryService::start(engine, ServeConfig::default());

    let start = Instant::now();
    svc.execute_blocking(QueryRequest::new(
        "zeta",
        sum_query(0.5),
        ctx(1_000),
        UdfRegistry::new(),
    ))
    .unwrap();
    assert!(start.elapsed() < Duration::from_secs(5));

    let dumps = recorder.dumps();
    assert_eq!(dumps.len(), 1);
    assert_eq!(dumps[0].anomaly, Some(Anomaly::SlowQuery));
    assert!(dumps[0].explain_json.is_some(), "slow dumps carry EXPLAIN");
    assert!(dumps[0].span("vm.loop").is_some(), "execution spans present");

    assert_eq!(metrics.labeled_counter_value("serve.tenant.submitted", "zeta"), 1);
    assert_eq!(metrics.labeled_counter_value("serve.tenant.completed", "zeta"), 1);
    assert_eq!(metrics.labeled_counter_value("serve.tenant.completed", "acme"), 0);
    let snap = metrics.snapshot();
    assert!(
        snap.labeled_histograms
            .iter()
            .any(|(tenant, h)| tenant == "zeta" && h.name == "serve.tenant.latency_ns"),
        "per-tenant latency family recorded: {:?}",
        snap.labeled_histograms
            .iter()
            .map(|(t, h)| (t.clone(), h.name.clone()))
            .collect::<Vec<_>>()
    );
}
