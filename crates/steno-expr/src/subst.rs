//! Variable substitution and renaming.
//!
//! During nested-loop generation the paper rewrites "all occurrences of `x`
//! in the nested query ... with the current `elem_i` variable name in the
//! outer query" (§5.2). The code generator also renames lambda parameters
//! to its canonical `elem_i` / `agg_j` / `sink_k` names. Both are
//! implemented here as capture-aware substitution over expression trees.

use std::collections::HashSet;

use crate::expr::{Expr, Lambda};

/// Replaces every free occurrence of the variable `name` in `expr` with
/// `replacement`.
///
/// Substitution is *free-variable* substitution: occurrences bound by an
/// enclosing construct are never rewritten. (Expressions themselves have no
/// binders — lambdas bind at the [`Lambda`] level — so within a bare
/// expression every occurrence is free.)
pub fn subst(expr: &Expr, name: &str, replacement: &Expr) -> Expr {
    match expr {
        Expr::Var(v) if v == name => replacement.clone(),
        Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_) => expr.clone(),
        Expr::Bin(op, a, b) => Expr::bin(*op, subst(a, name, replacement), subst(b, name, replacement)),
        Expr::Un(op, a) => Expr::un(*op, subst(a, name, replacement)),
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter().map(|a| subst(a, name, replacement)).collect(),
        ),
        Expr::Field(a, i) => Expr::Field(Box::new(subst(a, name, replacement)), *i),
        Expr::RowIndex(a, i) => Expr::RowIndex(
            Box::new(subst(a, name, replacement)),
            Box::new(subst(i, name, replacement)),
        ),
        Expr::RowLen(a) => Expr::RowLen(Box::new(subst(a, name, replacement))),
        Expr::MkPair(a, b) => Expr::MkPair(
            Box::new(subst(a, name, replacement)),
            Box::new(subst(b, name, replacement)),
        ),
        Expr::If(c, t, e) => Expr::if_(
            subst(c, name, replacement),
            subst(t, name, replacement),
            subst(e, name, replacement),
        ),
        Expr::Cast(ty, a) => Expr::Cast(ty.clone(), Box::new(subst(a, name, replacement))),
    }
}

/// Renames every free occurrence of variable `from` to `to`.
pub fn rename(expr: &Expr, from: &str, to: &str) -> Expr {
    subst(expr, from, &Expr::var(to))
}

/// Instantiates a lambda body by renaming each parameter to the
/// corresponding name in `args`.
///
/// This is how the code generator inlines a transformation or predicate
/// function: the lambda's parameter becomes the current `elem_i` variable
/// (§4.2, Fig. 6).
///
/// # Panics
///
/// Panics if `args.len()` differs from the lambda arity — callers resolve
/// arity during query canonicalization.
pub fn instantiate(lambda: &Lambda, args: &[&str]) -> Expr {
    assert_eq!(
        lambda.arity(),
        args.len(),
        "lambda of arity {} instantiated with {} names",
        lambda.arity(),
        args.len()
    );
    let mut body = lambda.body.clone();
    for ((param, _), arg) in lambda.params.iter().zip(args) {
        body = rename(&body, param, arg);
    }
    body
}

/// Instantiates a lambda body with arbitrary replacement expressions.
///
/// # Panics
///
/// Panics if `args.len()` differs from the lambda arity.
pub fn instantiate_exprs(lambda: &Lambda, args: &[Expr]) -> Expr {
    assert_eq!(lambda.arity(), args.len());
    let mut body = lambda.body.clone();
    for ((param, _), arg) in lambda.params.iter().zip(args) {
        body = subst(&body, param, arg);
    }
    body
}

/// Collects the free variables of an expression.
pub fn free_vars(expr: &Expr) -> HashSet<String> {
    let mut out = HashSet::new();
    expr.visit(&mut |e| {
        if let Expr::Var(name) = e {
            out.insert(name.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Ty;

    #[test]
    fn subst_replaces_all_occurrences() {
        let e = Expr::var("x") * Expr::var("x") + Expr::var("y");
        let s = subst(&e, "x", &Expr::var("elem_0"));
        assert_eq!(s.to_string(), "((elem_0 * elem_0) + y)");
    }

    #[test]
    fn rename_is_subst_with_var() {
        let e = (Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0));
        assert_eq!(rename(&e, "x", "e1").to_string(), "((e1 % 2) == 0)");
        // Renaming an absent variable is the identity.
        assert_eq!(rename(&e, "zz", "e1"), e);
    }

    #[test]
    fn instantiate_inlines_lambda() {
        let sq = Lambda::unary("x", Ty::F64, Expr::var("x") * Expr::var("x"));
        assert_eq!(instantiate(&sq, &["elem_0"]).to_string(), "(elem_0 * elem_0)");
        let acc = Lambda::binary(
            "a",
            Ty::F64,
            "x",
            Ty::F64,
            Expr::var("a") + Expr::var("x"),
        );
        assert_eq!(
            instantiate(&acc, &["agg_1", "elem_0"]).to_string(),
            "(agg_1 + elem_0)"
        );
    }

    #[test]
    fn instantiate_exprs_substitutes_trees() {
        let sq = Lambda::unary("x", Ty::F64, Expr::var("x") * Expr::var("x"));
        let arg = Expr::var("p").row_index(Expr::liti(0));
        assert_eq!(
            instantiate_exprs(&sq, &[arg]).to_string(),
            "(p[0] * p[0])"
        );
    }

    #[test]
    fn free_vars_collects_names() {
        let e = Expr::call("f", vec![Expr::var("a"), Expr::var("b") + Expr::var("a")]);
        let fv = free_vars(&e);
        assert_eq!(fv.len(), 2);
        assert!(fv.contains("a") && fv.contains("b"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let sq = Lambda::unary("x", Ty::F64, Expr::var("x"));
        let _ = instantiate(&sq, &["a", "b"]);
    }
}
