//! Runtime sink state: the intermediate collections of §4.1.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use steno_expr::value::ValueKey;
use steno_expr::Value;

/// An FxHash-style multiplicative hasher for sink indexes. Grouping pays
/// one hash per element, so the default SipHash would dominate the very
/// overhead Steno removes; this is the type-specialized hashing a real
/// code generator would emit. (No cryptographic properties — sinks hash
/// trusted query data.)
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0.rotate_left(5) ^ x).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_i64(&mut self, x: i64) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Build-hasher for sink indexes.
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A scalar grouping key, kept unboxed in the specialized table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalarKey {
    /// An f64 key (bit-pattern identity).
    F(f64),
    /// An i64 key.
    I(i64),
    /// A boolean key.
    B(bool),
}

impl ScalarKey {
    /// The 64-bit index image of the key.
    #[inline]
    pub fn bits(self) -> u64 {
        match self {
            ScalarKey::F(x) => x.to_bits(),
            ScalarKey::I(x) => x as u64,
            ScalarKey::B(b) => u64::from(b),
        }
    }

    /// Boxes the key.
    pub fn to_value(self) -> Value {
        match self {
            ScalarKey::F(x) => Value::F64(x),
            ScalarKey::I(x) => Value::I64(x),
            ScalarKey::B(b) => Value::Bool(b),
        }
    }
}

/// Finds (or inserts, seeded with `default`) the entry slot for `key` in
/// a scalar-key f64 grouped-aggregate table. Shared by the fused and
/// vectorized tiers and the scalar interpreter so first-appearance order
/// is defined in exactly one place.
#[inline]
pub fn upsert_sf(
    index: &mut HashMap<u64, usize, FastBuild>,
    entries: &mut Vec<(ScalarKey, f64)>,
    default: f64,
    key: ScalarKey,
) -> usize {
    *index.entry(key.bits()).or_insert_with(|| {
        entries.push((key, default));
        entries.len() - 1
    })
}

/// As [`upsert_sf`] for i64 accumulators.
#[inline]
pub fn upsert_si(
    index: &mut HashMap<u64, usize, FastBuild>,
    entries: &mut Vec<(ScalarKey, i64)>,
    default: i64,
    key: ScalarKey,
) -> usize {
    *index.entry(key.bits()).or_insert_with(|| {
        entries.push((key, default));
        entries.len() - 1
    })
}

/// One sink's runtime state.
#[derive(Clone, Debug)]
pub enum SinkRt {
    /// The `Lookup` multimap of Fig. 7(b): key → bag, in first-appearance
    /// order. Iterating yields `(key, seq)` pairs.
    Group {
        /// key image → slot.
        index: HashMap<ValueKey, usize>,
        /// `(key, values)` in first-appearance order.
        entries: Vec<(Value, Vec<Value>)>,
    },
    /// GroupByAggregate with boxed accumulators (§4.3).
    GroupAggV {
        /// key image → slot.
        index: HashMap<ValueKey, usize>,
        /// `(key, accumulator)` in first-appearance order.
        entries: Vec<(Value, Value)>,
        /// The accumulator seed for new keys.
        default: Value,
        /// Slot of the most recent load (for the paired store).
        last: usize,
    },
    /// GroupByAggregate fast path with unboxed f64 accumulators.
    GroupAggF {
        /// key image → slot.
        index: HashMap<ValueKey, usize>,
        /// `(key, accumulator)` in first-appearance order.
        entries: Vec<(Value, f64)>,
        /// The accumulator seed for new keys.
        default: f64,
        /// Slot of the most recent load.
        last: usize,
    },
    /// Fully scalar GroupByAggregate (§4.3 + §4.2 type specialization):
    /// unboxed scalar keys, unboxed f64 accumulators, fast hashing.
    GroupAggSF {
        /// key bits → slot.
        index: HashMap<u64, usize, FastBuild>,
        /// `(key, accumulator)` in first-appearance order.
        entries: Vec<(ScalarKey, f64)>,
        /// The accumulator seed for new keys.
        default: f64,
        /// Slot of the most recent load.
        last: usize,
    },
    /// As [`SinkRt::GroupAggSF`] with i64 accumulators.
    GroupAggSI {
        /// key bits → slot.
        index: HashMap<u64, usize, FastBuild>,
        /// `(key, accumulator)` in first-appearance order.
        entries: Vec<(ScalarKey, i64)>,
        /// The accumulator seed for new keys.
        default: i64,
        /// Slot of the most recent load.
        last: usize,
    },
    /// GroupByAggregate fast path with unboxed i64 accumulators.
    GroupAggI {
        /// key image → slot.
        index: HashMap<ValueKey, usize>,
        /// `(key, accumulator)` in first-appearance order.
        entries: Vec<(Value, i64)>,
        /// The accumulator seed for new keys.
        default: i64,
        /// Slot of the most recent load.
        last: usize,
    },
    /// The OrderBy buffer: `(key, value)` pairs sorted at seal.
    Sorted {
        /// Buffered pairs.
        items: Vec<(Value, Value)>,
        /// Sort direction.
        descending: bool,
    },
    /// The Distinct buffer: unique elements in first-appearance order.
    Distinct {
        /// Seen key images.
        seen: std::collections::HashSet<ValueKey>,
        /// Unique elements.
        items: Vec<Value>,
    },
    /// A plain materialization buffer.
    Vec {
        /// Elements.
        items: Vec<Value>,
    },
    /// Not yet initialized.
    Empty,
}

impl SinkRt {
    /// Materializes the sink contents for downstream iteration.
    pub fn freeze(&self) -> Vec<Value> {
        match self {
            SinkRt::Group { entries, .. } => entries
                .iter()
                .map(|(k, vs)| Value::pair(k.clone(), Value::seq(vs.clone())))
                .collect(),
            SinkRt::GroupAggV { entries, .. } => entries
                .iter()
                .map(|(k, a)| Value::pair(k.clone(), a.clone()))
                .collect(),
            SinkRt::GroupAggF { entries, .. } => entries
                .iter()
                .map(|(k, a)| Value::pair(k.clone(), Value::F64(*a)))
                .collect(),
            SinkRt::GroupAggI { entries, .. } => entries
                .iter()
                .map(|(k, a)| Value::pair(k.clone(), Value::I64(*a)))
                .collect(),
            SinkRt::GroupAggSF { entries, .. } => entries
                .iter()
                .map(|(k, a)| Value::pair(k.to_value(), Value::F64(*a)))
                .collect(),
            SinkRt::GroupAggSI { entries, .. } => entries
                .iter()
                .map(|(k, a)| Value::pair(k.to_value(), Value::I64(*a)))
                .collect(),
            SinkRt::Sorted { items, .. } => items.iter().map(|(_, v)| v.clone()).collect(),
            SinkRt::Distinct { items, .. } => items.clone(),
            SinkRt::Vec { items } => items.clone(),
            SinkRt::Empty => std::vec::Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_freeze_yields_key_seq_pairs() {
        let mut index = HashMap::new();
        index.insert(Value::I64(1).key(), 0);
        let s = SinkRt::Group {
            index,
            entries: vec![(Value::I64(1), vec![Value::F64(2.0), Value::F64(3.0)])],
        };
        let frozen = s.freeze();
        assert_eq!(
            frozen,
            vec![Value::pair(
                Value::I64(1),
                Value::seq(vec![Value::F64(2.0), Value::F64(3.0)])
            )]
        );
    }

    #[test]
    fn scalar_agg_freeze_boxes_accumulators() {
        let s = SinkRt::GroupAggF {
            index: HashMap::new(),
            entries: vec![(Value::I64(0), 1.5)],
            default: 0.0,
            last: 0,
        };
        assert_eq!(s.freeze(), vec![Value::pair(Value::I64(0), Value::F64(1.5))]);
    }
}
