//! A type checker for expression trees.
//!
//! The paper assumes "the C# compiler has already type-checked the query
//! expression, so Steno does not perform additional type-checking" (§4.1).
//! In this reproduction the query AST is constructed at runtime, so we
//! provide the checker the C# compiler would have been: it is run once per
//! query before optimization, and the Steno VM relies on its verdicts to
//! emit type-specialized bytecode.

use std::collections::HashMap;

use crate::error::TypeError;
use crate::expr::{BinOp, Expr, Lambda, UnOp};
use crate::ty::Ty;
use crate::udf::UdfRegistry;

/// A typing environment: variable name → type.
#[derive(Clone, Debug, Default)]
pub struct TyEnv {
    vars: HashMap<String, Ty>,
}

impl TyEnv {
    /// Creates an empty environment.
    pub fn new() -> TyEnv {
        TyEnv::default()
    }

    /// Binds `name` to `ty`, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, ty: Ty) -> TyEnv {
        self.vars.insert(name.into(), ty);
        self
    }

    /// Binds `name` to `ty` in place.
    pub fn bind(&mut self, name: impl Into<String>, ty: Ty) {
        self.vars.insert(name.into(), ty);
    }

    /// Looks up the type of `name`.
    pub fn lookup(&self, name: &str) -> Option<&Ty> {
        self.vars.get(name)
    }
}

fn mismatch(context: impl Into<String>, expected: impl Into<String>, found: Ty) -> TypeError {
    TypeError::Mismatch {
        context: context.into(),
        expected: expected.into(),
        found,
    }
}

/// Infers the type of `expr` under `env`, or reports the first error.
///
/// # Errors
///
/// Returns a [`TypeError`] if the tree references unbound variables,
/// applies operators to incompatible operand types, calls an unregistered
/// UDF, or casts between unsupported types.
pub fn infer(expr: &Expr, env: &TyEnv, udfs: &UdfRegistry) -> Result<Ty, TypeError> {
    match expr {
        Expr::Var(name) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(name.clone())),
        Expr::LitF64(_) => Ok(Ty::F64),
        Expr::LitI64(_) => Ok(Ty::I64),
        Expr::LitBool(_) => Ok(Ty::Bool),
        Expr::Bin(op, a, b) => {
            let ta = infer(a, env, udfs)?;
            let tb = infer(b, env, udfs)?;
            let ctx = format!("operator {}", op.symbol());
            if op.is_arithmetic() {
                if !ta.is_numeric() {
                    return Err(mismatch(ctx, "numeric", ta));
                }
                if ta != tb {
                    return Err(mismatch(ctx, ta.to_string(), tb));
                }
                Ok(ta)
            } else if op.is_comparison() {
                if ta != tb {
                    return Err(mismatch(ctx, ta.to_string(), tb));
                }
                // Eq/Ne apply to any matching scalars; ordering requires
                // an ordered scalar type.
                if matches!(op, BinOp::Eq | BinOp::Ne) || ta.is_numeric() || ta == Ty::Bool {
                    Ok(Ty::Bool)
                } else {
                    Err(mismatch(ctx, "ordered scalar", ta))
                }
            } else {
                // Logical.
                if ta != Ty::Bool {
                    return Err(mismatch(&ctx, "bool", ta));
                }
                if tb != Ty::Bool {
                    return Err(mismatch(ctx, "bool", tb));
                }
                Ok(Ty::Bool)
            }
        }
        Expr::Un(op, a) => {
            let ta = infer(a, env, udfs)?;
            match op {
                UnOp::Neg => {
                    if ta.is_numeric() {
                        Ok(ta)
                    } else {
                        Err(mismatch("operator -", "numeric", ta))
                    }
                }
                UnOp::Not => {
                    if ta == Ty::Bool {
                        Ok(Ty::Bool)
                    } else {
                        Err(mismatch("operator !", "bool", ta))
                    }
                }
                UnOp::Abs => {
                    if ta.is_numeric() {
                        Ok(ta)
                    } else {
                        Err(mismatch("abs", "numeric", ta))
                    }
                }
                UnOp::Sqrt | UnOp::Floor => {
                    if ta == Ty::F64 {
                        Ok(Ty::F64)
                    } else {
                        Err(mismatch(op.symbol(), "f64", ta))
                    }
                }
            }
        }
        Expr::Call(name, args) => {
            let udf = udfs
                .get(name)
                .ok_or_else(|| TypeError::BadCall(format!("`{name}` is not registered")))?;
            if udf.params.len() != args.len() {
                return Err(TypeError::BadCall(format!(
                    "`{name}` expects {} arguments, got {}",
                    udf.params.len(),
                    args.len()
                )));
            }
            for (i, (arg, expected)) in args.iter().zip(&udf.params).enumerate() {
                let found = infer(arg, env, udfs)?;
                if &found != expected {
                    return Err(mismatch(
                        format!("argument {i} of `{name}`"),
                        expected.to_string(),
                        found,
                    ));
                }
            }
            Ok(udf.ret.clone())
        }
        Expr::Field(a, i) => {
            let ta = infer(a, env, udfs)?;
            match (ta, i) {
                (Ty::Pair(x, _), 0) => Ok(*x),
                (Ty::Pair(_, y), 1) => Ok(*y),
                (other, _) => Err(mismatch(format!("projection .{i}"), "pair", other)),
            }
        }
        Expr::RowIndex(a, i) => {
            let ta = infer(a, env, udfs)?;
            if ta != Ty::Row {
                return Err(mismatch("row indexing", "row", ta));
            }
            let ti = infer(i, env, udfs)?;
            if ti != Ty::I64 {
                return Err(mismatch("row index", "i64", ti));
            }
            Ok(Ty::F64)
        }
        Expr::RowLen(a) => {
            let ta = infer(a, env, udfs)?;
            if ta != Ty::Row {
                return Err(mismatch("row length", "row", ta));
            }
            Ok(Ty::I64)
        }
        Expr::MkPair(a, b) => Ok(Ty::pair(infer(a, env, udfs)?, infer(b, env, udfs)?)),
        Expr::If(c, t, e) => {
            let tc = infer(c, env, udfs)?;
            if tc != Ty::Bool {
                return Err(mismatch("if condition", "bool", tc));
            }
            let tt = infer(t, env, udfs)?;
            let te = infer(e, env, udfs)?;
            if tt != te {
                return Err(mismatch("if branches", tt.to_string(), te));
            }
            Ok(tt)
        }
        Expr::Cast(ty, a) => {
            let ta = infer(a, env, udfs)?;
            match (&ta, ty) {
                (Ty::F64, Ty::I64)
                | (Ty::I64, Ty::F64)
                | (Ty::F64, Ty::F64)
                | (Ty::I64, Ty::I64) => Ok(ty.clone()),
                _ => Err(TypeError::BadCast(ta, ty.clone())),
            }
        }
    }
}

/// Checks a lambda body under its parameter bindings and returns the body
/// type.
///
/// # Errors
///
/// Propagates any [`TypeError`] found in the body.
pub fn infer_lambda(lambda: &Lambda, env: &TyEnv, udfs: &UdfRegistry) -> Result<Ty, TypeError> {
    let mut inner = env.clone();
    for (name, ty) in &lambda.params {
        inner.bind(name.clone(), ty.clone());
    }
    infer(&lambda.body, &inner, udfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_x(ty: Ty) -> TyEnv {
        TyEnv::new().with("x", ty)
    }

    #[test]
    fn arithmetic_is_homogeneous() {
        let udfs = UdfRegistry::new();
        let e = Expr::var("x") + Expr::litf(1.0);
        assert_eq!(infer(&e, &env_x(Ty::F64), &udfs), Ok(Ty::F64));
        assert!(infer(&e, &env_x(Ty::I64), &udfs).is_err());
    }

    #[test]
    fn comparisons_produce_bool() {
        let udfs = UdfRegistry::new();
        let e = (Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0));
        assert_eq!(infer(&e, &env_x(Ty::I64), &udfs), Ok(Ty::Bool));
    }

    #[test]
    fn unbound_variable_reported() {
        let udfs = UdfRegistry::new();
        assert_eq!(
            infer(&Expr::var("nope"), &TyEnv::new(), &udfs),
            Err(TypeError::UnboundVariable("nope".into()))
        );
    }

    #[test]
    fn udf_arity_and_types_checked() {
        let mut udfs = UdfRegistry::new();
        udfs.register("dist", vec![Ty::Row, Ty::Row], Ty::F64, |_| {
            crate::Value::F64(0.0)
        });
        let env = TyEnv::new().with("p", Ty::Row).with("q", Ty::Row);
        let good = Expr::call("dist", vec![Expr::var("p"), Expr::var("q")]);
        assert_eq!(infer(&good, &env, &udfs), Ok(Ty::F64));
        let bad_arity = Expr::call("dist", vec![Expr::var("p")]);
        assert!(matches!(infer(&bad_arity, &env, &udfs), Err(TypeError::BadCall(_))));
        let bad_ty = Expr::call("dist", vec![Expr::var("p"), Expr::litf(0.0)]);
        assert!(infer(&bad_ty, &env, &udfs).is_err());
        let unknown = Expr::call("nope", vec![]);
        assert!(matches!(infer(&unknown, &env, &udfs), Err(TypeError::BadCall(_))));
    }

    #[test]
    fn pairs_rows_and_conditionals() {
        let udfs = UdfRegistry::new();
        let env = TyEnv::new()
            .with("kv", Ty::pair(Ty::I64, Ty::F64))
            .with("p", Ty::Row);
        assert_eq!(infer(&Expr::var("kv").field(0), &env, &udfs), Ok(Ty::I64));
        assert_eq!(infer(&Expr::var("kv").field(1), &env, &udfs), Ok(Ty::F64));
        assert_eq!(
            infer(&Expr::var("p").row_index(Expr::liti(0)), &env, &udfs),
            Ok(Ty::F64)
        );
        assert_eq!(infer(&Expr::var("p").row_len(), &env, &udfs), Ok(Ty::I64));
        let cond = Expr::if_(Expr::litb(true), Expr::litf(1.0), Expr::litf(2.0));
        assert_eq!(infer(&cond, &env, &udfs), Ok(Ty::F64));
        let bad = Expr::if_(Expr::litb(true), Expr::litf(1.0), Expr::liti(2));
        assert!(infer(&bad, &env, &udfs).is_err());
    }

    #[test]
    fn casts_between_numeric_scalars_only() {
        let udfs = UdfRegistry::new();
        let env = env_x(Ty::F64);
        assert_eq!(infer(&Expr::var("x").cast(Ty::I64), &env, &udfs), Ok(Ty::I64));
        assert!(matches!(
            infer(&Expr::litb(true).cast(Ty::F64), &env, &udfs),
            Err(TypeError::BadCast(..))
        ));
    }

    #[test]
    fn lambda_binds_parameters() {
        let udfs = UdfRegistry::new();
        let l = Lambda::binary("acc", Ty::F64, "x", Ty::F64, Expr::var("acc") + Expr::var("x"));
        assert_eq!(infer_lambda(&l, &TyEnv::new(), &udfs), Ok(Ty::F64));
    }
}
