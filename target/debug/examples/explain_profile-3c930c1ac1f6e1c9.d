/root/repo/target/debug/examples/explain_profile-3c930c1ac1f6e1c9.d: examples/explain_profile.rs

/root/repo/target/debug/examples/explain_profile-3c930c1ac1f6e1c9: examples/explain_profile.rs

examples/explain_profile.rs:
