/root/repo/target/debug/examples/codegen_tour-a48ad99c31f90aef.d: examples/codegen_tour.rs

/root/repo/target/debug/examples/codegen_tour-a48ad99c31f90aef: examples/codegen_tour.rs

examples/codegen_tour.rs:
