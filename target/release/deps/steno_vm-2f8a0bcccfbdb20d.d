/root/repo/target/release/deps/steno_vm-2f8a0bcccfbdb20d.d: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/release/deps/libsteno_vm-2f8a0bcccfbdb20d.rlib: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/release/deps/libsteno_vm-2f8a0bcccfbdb20d.rmeta: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

crates/steno-vm/src/lib.rs:
crates/steno-vm/src/batch.rs:
crates/steno-vm/src/compile.rs:
crates/steno-vm/src/fuse.rs:
crates/steno-vm/src/exec.rs:
crates/steno-vm/src/instr.rs:
crates/steno-vm/src/interrupt.rs:
crates/steno-vm/src/kernels.rs:
crates/steno-vm/src/prepared.rs:
crates/steno-vm/src/profile.rs:
crates/steno-vm/src/query.rs:
crates/steno-vm/src/sink.rs:
