/root/repo/target/debug/examples/histogram-955574d87f8847cd.d: examples/histogram.rs Cargo.toml

/root/repo/target/debug/examples/libhistogram-955574d87f8847cd.rmeta: examples/histogram.rs Cargo.toml

examples/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
