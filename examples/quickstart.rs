//! Quickstart: the paper's running example through every execution path.
//!
//! ```text
//! var evenSquares = from x in xs.WithSteno()
//!                   where x % 2 == 0
//!                   select x * x;
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use steno::prelude::*;
use steno::steno;

fn main() -> Result<(), StenoError> {
    let numbers: Vec<i64> = (0..20).collect();

    // ---- 1. The unoptimized LINQ substrate: lazy boxed iterators. ----
    let xs = Enumerable::from_vec(numbers.clone());
    let via_linq: Vec<i64> = xs.where_(|x| x % 2 == 0).select(|x| x * x).to_vec();
    println!("LINQ iterators:   {via_linq:?}");

    // ---- 2. Runtime Steno: query text -> QUIL -> generated loops. ----
    let ctx = DataContext::new().with_source("xs", numbers.clone());
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let via_steno = engine.execute_text(
        "from x in xs where x % 2 == 0 select x * x",
        &ctx,
        &udfs,
    )?;
    println!("Steno (runtime):  {via_steno}");

    // Peek at what the optimizer generated (the paper's Fig. 5-8 code).
    let (query, _) =
        steno::syntax::parse_query("from x in xs where x % 2 == 0 select x * x").unwrap();
    let compiled = engine.compile(&query, (&ctx).into(), &udfs)?;
    println!("\nQUIL: {}", compiled.quil());
    println!("generated imperative code:\n{}", compiled.rust_source());
    println!("one-off optimization cost: {:?}", compiled.compile_time());

    // ---- 3. Compile-time Steno: the same loops, emitted by a macro. ----
    let via_macro: Vec<i64> =
        steno!(from x: i64 in numbers where x % 2 == 0 select x * x);
    println!("Steno (macro):    {via_macro:?}");

    assert_eq!(via_linq, via_macro);
    Ok(())
}
