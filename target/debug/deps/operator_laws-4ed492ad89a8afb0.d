/root/repo/target/debug/deps/operator_laws-4ed492ad89a8afb0.d: crates/steno-linq/tests/operator_laws.rs Cargo.toml

/root/repo/target/debug/deps/liboperator_laws-4ed492ad89a8afb0.rmeta: crates/steno-linq/tests/operator_laws.rs Cargo.toml

crates/steno-linq/tests/operator_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
