/root/repo/target/debug/deps/fig01_sumsq-da72efe7b5ffc741.d: crates/bench/benches/fig01_sumsq.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_sumsq-da72efe7b5ffc741.rmeta: crates/bench/benches/fig01_sumsq.rs Cargo.toml

crates/bench/benches/fig01_sumsq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
