/root/repo/target/debug/deps/fig13_micro-accfb2a06a57bb83.d: crates/bench/benches/fig13_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_micro-accfb2a06a57bb83.rmeta: crates/bench/benches/fig13_micro.rs Cargo.toml

crates/bench/benches/fig13_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
