/root/repo/target/debug/examples/histogram-3b1fbec422ad2bdd.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-3b1fbec422ad2bdd: examples/histogram.rs

examples/histogram.rs:
