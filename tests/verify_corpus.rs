//! Differential verification of the optimizer: every query shape the
//! test suites compile is re-checked by the independent plan verifier
//! in `steno-analysis`, which re-typechecks the optimized QUIL chain
//! and re-derives the homomorphism facts the parallel planner relies
//! on. The verifier shares no code with the optimizer's own typing or
//! `is_homomorphic()` logic, so agreement here is evidence against
//! whole classes of optimizer bugs, not just the ones we thought to
//! test for.

use steno::prelude::*;
use steno_query::typing::SourceTypes;

fn ctx() -> DataContext {
    DataContext::new()
        .with_source(
            "xs",
            (0..500).map(|i| (i as f64) * 0.25 - 30.0).collect::<Vec<_>>(),
        )
        .with_source("ns", (1..100i64).collect::<Vec<_>>())
        .with_source("ys", vec![0.5f64, -1.5, 2.0, 4.0])
}

/// Every text query the end-to-end suite runs, plus shapes from the VM
/// differential suites: filters, transforms, folds, grouping, ordering,
/// pagination, nesting, cross products, casts, and guarded division.
const CORPUS: &[&str] = &[
    // end_to_end.rs shapes
    "from x in ns where x % 2 == 0 select x * x",
    "(from x in xs select x).sum()",
    "(from x in xs select x * x).sum()",
    "(from x in xs from y in ys select x * y).sum()",
    "xs.group_by(|x| x.floor()).select(|kv| (kv.0, kv.1.count()))",
    "from x in xs where x > 0.0 orderby x descending select x + 1.0",
    "from x in ns group x * x by x % 7",
    "(from x in ns select x).skip(20).take(30).sum()",
    "xs.take_while(|x| x < 50.0).count()",
    "xs.skip_while(|x| x < 0.0).min()",
    "xs.min()",
    "xs.max()",
    "xs.average()",
    "xs.count(|x| x > 0.0)",
    "xs.any(|x| x > 90.0)",
    "xs.all(|x| x > -100.0)",
    "ns.aggregate(1, |acc, x| acc * (x % 5 + 1))",
    "xs.first()",
    "xs.select(|x| ys.count(|y| y > x)).sum()",
    "(from x in ys from y in ys select x + y).to_array().count()",
    "ns.where(|x| ns.any(|y| y == x + 50)).count()",
    "ns.select(|x| x % 9).distinct().order_by(|x| x)",
    "from kv in (from x in ns group x by x % 4) where kv.0 > 0 select kv.0",
    // vectorized-differential shapes
    "ns.where(|x| x % 3 == 0).select(|x| x * x).sum()",
    "xs.where(|x| x > 0.0).select(|x| x + 1.5).sum()",
    "ns.select(|x| 840 / x).sum()",
    "ns.where(|x| x != 0).select(|x| 60 / x).sum()",
    "xs.order_by(|x| x).take(3).sum()",
    "xs.skip(2).take(3).count()",
];

/// Shapes the text parser cannot spell (if-expressions), built with the
/// query builder: the guard-elimination workloads.
fn builder_corpus() -> Vec<QueryExpr> {
    let x = || Expr::var("x");
    let collatz = Expr::if_(
        (x() % Expr::liti(2)).eq(Expr::liti(0)),
        x() / Expr::liti(2),
        Expr::liti(3) * x() + Expr::liti(1),
    );
    vec![
        Query::source("ns")
            .select(collatz, "x")
            .sum_by(Expr::var("y"), "y")
            .build(),
        Query::source("xs")
            .select(
                Expr::if_(
                    x().gt(Expr::litf(0.0)),
                    x() * Expr::litf(2.0),
                    x() - Expr::litf(1.0),
                ),
                "x",
            )
            .sum()
            .build(),
    ]
}

/// The whole corpus passes the independent verifier, and the verifier
/// really looked at every operator (non-trivial `ops_checked`).
#[test]
fn verifier_accepts_every_compiled_corpus_query() {
    let c = ctx();
    let udfs = UdfRegistry::new();
    let engine = Steno::new().with_verify(false); // verify explicitly below
    let mut queries: Vec<QueryExpr> = CORPUS
        .iter()
        .map(|text| steno::syntax::parse_query(text).expect("parse").0)
        .collect();
    queries.extend(builder_corpus());
    let mut total_ops = 0;
    for q in &queries {
        let compiled = match engine.compile(q, SourceTypes::from(&c), &udfs) {
            Ok(compiled) => compiled,
            // Shapes outside QUIL are the fallback path's problem, not
            // the verifier's.
            Err(_) => continue,
        };
        let report = steno_analysis::verify(compiled.chain(), &udfs)
            .unwrap_or_else(|e| panic!("verifier rejected `{q}`: {e}"));
        total_ops += report.ops_checked;
    }
    assert!(
        total_ops >= CORPUS.len(),
        "verifier barely looked at anything: {total_ops} ops"
    );
}

/// The facade's built-in verification accepts the corpus too: compiling
/// through a `with_verify(true)` engine must never error on valid
/// queries, and the answers must match an unverified engine exactly.
#[test]
fn verifying_engine_agrees_with_unverified_engine() {
    let c = ctx();
    let udfs = UdfRegistry::new();
    let verified = Steno::new().with_verify(true);
    let plain = Steno::new().with_verify(false);
    for text in CORPUS {
        let a = verified.execute_text(text, &c, &udfs);
        let b = plain.execute_text(text, &c, &udfs);
        match (a, b) {
            (Ok(va), Ok(vb)) => assert_eq!(va.key(), vb.key(), "query: {text}"),
            (Err(e), Ok(_)) => panic!("verified engine alone failed `{text}`: {e}"),
            (Ok(_), Err(e)) => panic!("unverified engine alone failed `{text}`: {e}"),
            (Err(_), Err(_)) => {} // both reject (e.g. genuinely ill-typed)
        }
    }
}

/// Lints never panic on the corpus, and their diagnostics carry the
/// operator spans added for this purpose.
#[test]
fn lints_run_clean_over_the_corpus() {
    let c = ctx();
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    for text in CORPUS {
        let (q, _) = steno::syntax::parse_query(text).expect("parse");
        let Ok(compiled) = engine.compile(&q, SourceTypes::from(&c), &udfs) else {
            continue;
        };
        for diag in steno_analysis::run_default_lints(compiled.chain(), &udfs) {
            // Rendering must embed the lint name so CI logs are greppable.
            assert!(diag.to_string().contains(diag.lint), "{diag}");
        }
    }
}

/// Debug builds verify by default — the CI configuration the issue asks
/// for. (Release builds default off; `with_verify(true)` re-enables.)
#[test]
fn debug_builds_verify_by_default() {
    assert_eq!(Steno::new().verify_enabled(), cfg!(debug_assertions));
}
