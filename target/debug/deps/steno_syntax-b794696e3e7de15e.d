/root/repo/target/debug/deps/steno_syntax-b794696e3e7de15e.d: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

/root/repo/target/debug/deps/steno_syntax-b794696e3e7de15e: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

crates/steno-syntax/src/lib.rs:
crates/steno-syntax/src/lexer.rs:
crates/steno-syntax/src/parser.rs:
