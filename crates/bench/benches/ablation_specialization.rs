//! The §4.3 ablation: GroupByAggregate specialization on vs off.
//!
//! With the specialization the sink stores one accumulator per key; with
//! it off, the plan materializes every group's bag and reduces it
//! afterwards ("we can save memory by storing per-key partial aggregates
//! instead of the group of values").

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_query::{GroupResult, Query};
use steno_quil::LowerOptions;
use steno_vm::query::StenoOptions;
use steno_vm::CompiledQuery;

fn specialization(c: &mut Criterion) {
    let n = 300_000;
    let data = bench::workloads::mixture_of_gaussians(n, 43);
    let ctx = DataContext::new().with_source("xs", data);
    let udfs = UdfRegistry::new();
    let q = Query::source("xs")
        .group_by_result(
            Expr::var("x").floor(),
            "x",
            GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
        )
        .build();

    let specialized = CompiledQuery::compile(&q, (&ctx).into(), &udfs).unwrap();
    let naive = CompiledQuery::compile_tuned(
        &q,
        (&ctx).into(),
        &udfs,
        StenoOptions {
            lower: LowerOptions {
                specialize_group_aggregate: false,
            },
            ..StenoOptions::default()
        },
    )
    .unwrap();
    // The plans genuinely differ.
    assert!(specialized.quil().contains("GroupByAggregate"));
    assert!(!naive.quil().contains("GroupByAggregate"));
    // And agree on the answer.
    assert_eq!(
        specialized.run(&ctx, &udfs).unwrap().key(),
        naive.run(&ctx, &udfs).unwrap().key()
    );

    let mut group = c.benchmark_group("ablation_group_by_aggregate");
    group.sample_size(10);
    group.bench_function("naive_group_then_reduce", |b| {
        b.iter(|| std::hint::black_box(naive.run(&ctx, &udfs).unwrap()))
    });
    group.bench_function("specialized_sink", |b| {
        b.iter(|| std::hint::black_box(specialized.run(&ctx, &udfs).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, specialization);
criterion_main!(benches);
