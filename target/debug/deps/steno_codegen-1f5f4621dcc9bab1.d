/root/repo/target/debug/deps/steno_codegen-1f5f4621dcc9bab1.d: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_codegen-1f5f4621dcc9bab1.rmeta: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs Cargo.toml

crates/steno-codegen/src/lib.rs:
crates/steno-codegen/src/generate.rs:
crates/steno-codegen/src/imp.rs:
crates/steno-codegen/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
