/root/repo/target/debug/deps/fig14_kmeans-58c68c182748f14a.d: crates/bench/benches/fig14_kmeans.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_kmeans-58c68c182748f14a.rmeta: crates/bench/benches/fig14_kmeans.rs Cargo.toml

crates/bench/benches/fig14_kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
