//! A tiny deterministic PRNG (SplitMix64) for workload generation.
//!
//! Replaces the external `rand` crate, which the offline build
//! environment cannot fetch. Same seed → same workload, which is all the
//! benchmarks need.

/// A SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}
