//! Typed batch kernels: the data-parallel primitives of the vectorized
//! tier ([`crate::batch`]).
//!
//! Each kernel processes one 1024-lane batch of a single unboxed type
//! (`f64`, `i64`, or `bool`). Compute kernels run **dense** — every lane,
//! selected or not — because pure arithmetic on a dead lane is
//! unobservable and branch-free loops are what the auto-vectorizer eats.
//! Only three kinds of operation consult the selection vector:
//!
//! * **trapping ops** (integer division/remainder), which must fault on
//!   exactly the lanes the scalar reference semantics would evaluate;
//! * **folds** into accumulators, which must consume surviving lanes in
//!   ascending element order so floating-point results stay bit-identical
//!   to sequential execution; and
//! * **effects** (grouped-aggregate upserts, output pushes), for the same
//!   ordering reason.

use crate::batch::BATCH;
use crate::exec::VmError;

/// Fills every lane of a batch with one value (constant broadcast).
#[inline]
pub fn splat<T: Copy>(dst: &mut [T; BATCH], x: T) {
    for d in dst.iter_mut() {
        *d = x;
    }
}

/// `dst[k] = f(a[k])` for the first `len` lanes.
#[inline]
pub fn map1<T: Copy>(dst: &mut [T; BATCH], a: &[T; BATCH], len: usize, f: impl Fn(T) -> T) {
    for k in 0..len {
        dst[k] = f(a[k]);
    }
}

/// `dst[k] = f(a[k], b[k])` for the first `len` lanes.
#[inline]
pub fn map2<T: Copy>(
    dst: &mut [T; BATCH],
    a: &[T; BATCH],
    b: &[T; BATCH],
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    for k in 0..len {
        dst[k] = f(a[k], b[k]);
    }
}

/// Comparison into the boolean bank: `dst[k] = f(a[k], b[k])`.
#[inline]
pub fn cmp2<T: Copy>(
    dst: &mut [bool; BATCH],
    a: &[T; BATCH],
    b: &[T; BATCH],
    len: usize,
    f: impl Fn(T, T) -> bool,
) {
    for k in 0..len {
        dst[k] = f(a[k], b[k]);
    }
}

/// Type conversion between banks: `dst[k] = f(a[k])`.
#[inline]
pub fn convert<A: Copy, B: Copy>(
    dst: &mut [B; BATCH],
    a: &[A; BATCH],
    len: usize,
    f: impl Fn(A) -> B,
) {
    for k in 0..len {
        dst[k] = f(a[k]);
    }
}

/// Lane-wise select: `dst[k] = if mask[k] { t[k] } else { e[k] }`.
#[inline]
pub fn select<T: Copy>(
    dst: &mut [T; BATCH],
    mask: &[bool; BATCH],
    t: &[T; BATCH],
    e: &[T; BATCH],
    len: usize,
) {
    for k in 0..len {
        dst[k] = if mask[k] { t[k] } else { e[k] };
    }
}

// ---------------------------------------------------------------------
// Selection vectors.
// ---------------------------------------------------------------------

/// Builds a selection vector from a mask over a dense (identity) batch.
#[inline]
pub fn filter_dense(sel: &mut Vec<u32>, mask: &[bool; BATCH], len: usize) {
    sel.clear();
    for (k, keep) in mask[..len].iter().enumerate() {
        if *keep {
            sel.push(k as u32);
        }
    }
}

/// Intersects an existing selection vector with a mask (order preserved).
#[inline]
pub fn filter_sel(sel: &mut Vec<u32>, mask: &[bool; BATCH]) {
    sel.retain(|&k| mask[k as usize]);
}

// ---------------------------------------------------------------------
// Trapping integer division.
// ---------------------------------------------------------------------

/// Checks every live divisor lane, in ascending element order, before the
/// division runs — the batch-tier analogue of the scalar interpreter's
/// per-element zero check.
///
/// # Errors
///
/// [`VmError::DivisionByZero`] when any live lane divides by zero, the
/// same error (and the same observable outcome — all partial state is
/// discarded by the caller) the scalar loop would produce.
#[inline]
pub fn check_divisors(
    b: &[i64; BATCH],
    sel: Option<&[u32]>,
    len: usize,
) -> Result<(), VmError> {
    match sel {
        None => {
            for &d in &b[..len] {
                if d == 0 {
                    return Err(VmError::DivisionByZero);
                }
            }
        }
        Some(sel) => {
            for &k in sel {
                if b[k as usize] == 0 {
                    return Err(VmError::DivisionByZero);
                }
            }
        }
    }
    Ok(())
}

/// `dst[k] = f(a[k], b[k])` over the live lanes only (dead lanes may hold
/// zero divisors and must not be touched).
#[inline]
pub fn map2_sel<T: Copy>(
    dst: &mut [T; BATCH],
    a: &[T; BATCH],
    b: &[T; BATCH],
    sel: Option<&[u32]>,
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    match sel {
        None => map2(dst, a, b, len, f),
        Some(sel) => {
            for &k in sel {
                let k = k as usize;
                dst[k] = f(a[k], b[k]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strict folds: surviving lanes in ascending element order, so results
// are bit-identical to sequential execution.
// ---------------------------------------------------------------------

/// Folds live lanes of a batch into a scalar accumulator, in order.
#[inline]
pub fn fold<T: Copy>(
    acc: &mut T,
    v: &[T; BATCH],
    sel: Option<&[u32]>,
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    match sel {
        None => {
            for &x in &v[..len] {
                *acc = f(*acc, x);
            }
        }
        Some(sel) => {
            for &k in sel {
                *acc = f(*acc, v[k as usize]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Aliasing-safe bank kernels.
//
// Slot packing (crate::lifetimes::pack_batch_slots) reuses dead slots,
// so a destination may coincide with any of its sources. These `_any`
// variants take the whole bank plus slot indices and pick a borrow
// strategy per aliasing pattern: disjoint slots split into the tight
// kernels above; aliased slots read every lane before writing it, which
// is exact for lane-wise ops.
// ---------------------------------------------------------------------

/// Two disjoint mutable batches of one bank (`i != j`).
#[inline]
fn pair_mut<T>(bank: &mut [[T; BATCH]], i: usize, j: usize) -> (&mut [T; BATCH], &mut [T; BATCH]) {
    debug_assert_ne!(i, j);
    if i < j {
        let (l, r) = bank.split_at_mut(j);
        (&mut l[i], &mut r[0])
    } else {
        let (l, r) = bank.split_at_mut(i);
        (&mut r[0], &mut l[j])
    }
}

/// `bank[d][k] = f(bank[a][k])`, destination free to alias the source.
#[inline]
pub fn map1_any<T: Copy>(
    bank: &mut [[T; BATCH]],
    d: u8,
    a: u8,
    len: usize,
    f: impl Fn(T) -> T,
) {
    let (d, a) = (d as usize, a as usize);
    if d == a {
        let arr = &mut bank[d];
        for x in arr[..len].iter_mut() {
            *x = f(*x);
        }
    } else {
        let (dst, src) = pair_mut(bank, d, a);
        map1(dst, src, len, f);
    }
}

/// `bank[d][k] = f(bank[a][k], bank[b][k])` under any aliasing pattern.
#[inline]
pub fn map2_any<T: Copy>(
    bank: &mut [[T; BATCH]],
    d: u8,
    a: u8,
    b: u8,
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    let (d, a, b) = (d as usize, a as usize, b as usize);
    if d != a && d != b {
        if a == b {
            let (dst, src) = pair_mut(bank, d, a);
            for k in 0..len {
                dst[k] = f(src[k], src[k]);
            }
        } else {
            let (left, right) = bank.split_at_mut(d);
            let Some((dst, tail)) = right.split_first_mut() else {
                return;
            };
            let src = |i: usize| if i < d { &left[i] } else { &tail[i - d - 1] };
            map2(dst, src(a), src(b), len, f);
        }
    } else if d == a && d == b {
        let arr = &mut bank[d];
        for x in arr[..len].iter_mut() {
            *x = f(*x, *x);
        }
    } else if d == a {
        let (dst, other) = pair_mut(bank, d, b);
        for k in 0..len {
            dst[k] = f(dst[k], other[k]);
        }
    } else {
        let (dst, other) = pair_mut(bank, d, a);
        for k in 0..len {
            dst[k] = f(other[k], dst[k]);
        }
    }
}

/// `bank[d][k] = f(bank[a][k], bank[b][k], bank[c][k])` under any
/// aliasing pattern (the fused multiply-add kernels).
#[inline]
pub fn map3_any<T: Copy>(
    bank: &mut [[T; BATCH]],
    d: u8,
    a: u8,
    b: u8,
    c: u8,
    len: usize,
    f: impl Fn(T, T, T) -> T,
) {
    let (d, a, b, c) = (d as usize, a as usize, b as usize, c as usize);
    if d != a && d != b && d != c {
        let (left, right) = bank.split_at_mut(d);
        let Some((dst, tail)) = right.split_first_mut() else {
            return;
        };
        let src = |i: usize| if i < d { &left[i] } else { &tail[i - d - 1] };
        let (sa, sb, sc) = (src(a), src(b), src(c));
        for k in 0..len {
            dst[k] = f(sa[k], sb[k], sc[k]);
        }
    } else {
        // Aliased destination: per-lane read-then-write.
        #[allow(clippy::needless_range_loop)] // rows may alias; no iterator split
        for k in 0..len {
            let v = f(bank[a][k], bank[b][k], bank[c][k]);
            bank[d][k] = v;
        }
    }
}

/// Selected-lane [`map2_any`] (trapping division after packing): dead
/// lanes are untouched, aliasing handled per lane.
#[inline]
pub fn map2_sel_any<T: Copy>(
    bank: &mut [[T; BATCH]],
    d: u8,
    a: u8,
    b: u8,
    sel: Option<&[u32]>,
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    match sel {
        None => map2_any(bank, d, a, b, len, f),
        Some(sel) => {
            let (d, a, b) = (d as usize, a as usize, b as usize);
            for &k in sel {
                let k = k as usize;
                let v = f(bank[a][k], bank[b][k]);
                bank[d][k] = v;
            }
        }
    }
}

/// Lane-wise select with mask in a *different* bank; destination free to
/// alias either branch slot.
#[inline]
pub fn select_any<T: Copy>(
    bank: &mut [[T; BATCH]],
    d: u8,
    mask: &[bool; BATCH],
    t: u8,
    e: u8,
    len: usize,
) {
    let (d, t, e) = (d as usize, t as usize, e as usize);
    if d != t && d != e {
        let (left, right) = bank.split_at_mut(d);
        let Some((dst, tail)) = right.split_first_mut() else {
            return;
        };
        let src = |i: usize| if i < d { &left[i] } else { &tail[i - d - 1] };
        select(dst, mask, src(t), src(e), len);
    } else {
        for k in 0..len {
            let v = if mask[k] { bank[t][k] } else { bank[e][k] };
            bank[d][k] = v;
        }
    }
}

/// Lane-wise select where mask, branches, and destination all share the
/// boolean bank (`SelB`): per-lane read-then-write, exact under any
/// aliasing pattern.
#[inline]
pub fn select_same_any(
    bank: &mut [[bool; BATCH]],
    d: u8,
    mask: u8,
    t: u8,
    e: u8,
    len: usize,
) {
    let (d, mask, t, e) = (d as usize, mask as usize, t as usize, e as usize);
    #[allow(clippy::needless_range_loop)] // rows may alias; no iterator split
    for k in 0..len {
        let v = if bank[mask][k] { bank[t][k] } else { bank[e][k] };
        bank[d][k] = v;
    }
}

/// Folds `f(acc, a[k], b[k])` over live lanes in ascending order — the
/// fused multiply-reduce kernels, consuming two source columns without
/// materializing their product.
#[inline]
pub fn fold2<T: Copy>(
    acc: &mut T,
    a: &[T; BATCH],
    b: &[T; BATCH],
    sel: Option<&[u32]>,
    len: usize,
    f: impl Fn(T, T, T) -> T,
) {
    match sel {
        None => {
            for k in 0..len {
                *acc = f(*acc, a[k], b[k]);
            }
        }
        Some(sel) => {
            for &k in sel {
                let k = k as usize;
                *acc = f(*acc, a[k], b[k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_from(xs: &[f64]) -> [f64; BATCH] {
        let mut b = [0.0; BATCH];
        b[..xs.len()].copy_from_slice(xs);
        b
    }

    #[test]
    fn fold_is_strict_and_ordered() {
        let v = batch_from(&[1e16, 1.0, -1e16, 1.0]);
        let mut acc = 0.0;
        fold(&mut acc, &v, None, 4, |a, x| a + x);
        // Sequential: ((1e16 + 1) - 1e16) + 1 — order-sensitive.
        let mut expected = 0.0f64;
        for x in [1e16, 1.0, -1e16, 1.0] {
            expected += x;
        }
        assert_eq!(acc.to_bits(), expected.to_bits());
    }

    #[test]
    fn selected_fold_skips_dead_lanes() {
        let v = batch_from(&[1.0, 2.0, 4.0, 8.0]);
        let mut acc = 0.0;
        fold(&mut acc, &v, Some(&[0, 2]), 4, |a, x| a + x);
        assert_eq!(acc, 5.0);
    }

    #[test]
    fn divisor_check_ignores_dead_lanes() {
        let mut b = [1i64; BATCH];
        b[1] = 0;
        assert_eq!(
            check_divisors(&b, None, 4),
            Err(VmError::DivisionByZero)
        );
        assert_eq!(check_divisors(&b, Some(&[0, 2, 3]), 4), Ok(()));
    }

    #[test]
    fn filters_compose_in_order() {
        let mut mask = [false; BATCH];
        mask[0] = true;
        mask[2] = true;
        mask[3] = true;
        let mut sel = Vec::new();
        filter_dense(&mut sel, &mask, 5);
        assert_eq!(sel, vec![0, 2, 3]);
        let mut mask2 = [true; BATCH];
        mask2[2] = false;
        filter_sel(&mut sel, &mask2);
        assert_eq!(sel, vec![0, 3]);
    }
}
