//! The query AST: method-call chains over sources.

use std::fmt;

use steno_expr::{Expr, Value};

/// Where a query's elements come from.
#[derive(Clone, Debug, PartialEq)]
pub enum SourceRef {
    /// A named collection in the [`DataContext`](steno_expr::DataContext)
    /// (the `xs` of `from x in xs`).
    Named(String),
    /// `Enumerable.Range(start, count)`.
    Range {
        /// First integer produced.
        start: i64,
        /// Number of integers produced.
        count: usize,
    },
    /// `Enumerable.Repeat(value, count)`.
    Repeat {
        /// The repeated value.
        value: Value,
        /// Number of copies.
        count: usize,
    },
    /// A source computed from an in-scope expression — how a nested query
    /// iterates over, e.g., the elements of a group (`kv.1`) or a captured
    /// sequence-valued variable.
    Expr(Expr),
}

impl fmt::Display for SourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceRef::Named(name) => write!(f, "{name}"),
            SourceRef::Range { start, count } => write!(f, "Range({start}, {count})"),
            SourceRef::Repeat { value, count } => write!(f, "Repeat({value}, {count})"),
            SourceRef::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// The body of a unary operator function: a plain expression tree, or a
/// nested query (§5: "a nested query may substitute for the transformation
/// and predicate functions").
#[derive(Clone, Debug, PartialEq)]
pub enum QBody {
    /// An expression over the parameter.
    Expr(Expr),
    /// A nested query; the parameter is free inside it.
    Query(Box<QueryExpr>),
}

/// A unary function argument (`x => body`). Parameter types are inferred
/// during lowering from the source element type, as the C# compiler would
/// have established them.
#[derive(Clone, Debug, PartialEq)]
pub struct QFn {
    /// The parameter name.
    pub param: String,
    /// The function body.
    pub body: QBody,
}

impl QFn {
    /// An expression-bodied function `param => expr`.
    pub fn expr(param: impl Into<String>, expr: Expr) -> QFn {
        QFn {
            param: param.into(),
            body: QBody::Expr(expr),
        }
    }

    /// A query-bodied function `param => query`.
    pub fn query(param: impl Into<String>, query: QueryExpr) -> QFn {
        QFn {
            param: param.into(),
            body: QBody::Query(Box::new(query)),
        }
    }
}

impl fmt::Display for QFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            QBody::Expr(e) => write!(f, "|{}| {e}", self.param),
            QBody::Query(q) => write!(f, "|{}| {q}", self.param),
        }
    }
}

/// A binary function argument (`(acc, x) => body`), used by `Aggregate`.
#[derive(Clone, Debug, PartialEq)]
pub struct QFn2 {
    /// First parameter (the accumulator).
    pub param0: String,
    /// Second parameter (the element).
    pub param1: String,
    /// The function body.
    pub body: Expr,
}

impl QFn2 {
    /// Builds a binary function.
    pub fn new(param0: impl Into<String>, param1: impl Into<String>, body: Expr) -> QFn2 {
        QFn2 {
            param0: param0.into(),
            param1: param1.into(),
            body,
        }
    }
}

impl fmt::Display for QFn2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|{}, {}| {}", self.param0, self.param1, self.body)
    }
}

/// The built-in aggregate operators (§4.1's Agg class, Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// `Sum()`.
    Sum,
    /// `Min()`.
    Min,
    /// `Max()`.
    Max,
    /// `Count()`.
    Count,
    /// `Average()`.
    Average,
    /// `Any()` — true if the (already filtered) input is non-empty.
    Any,
    /// `All(p)` is canonicalized to `Select(p).All(identity)` semantics:
    /// conjunction over boolean elements.
    All,
    /// `FirstOrDefault()`.
    First,
}

impl AggOp {
    /// The LINQ method name.
    pub fn method_name(self) -> &'static str {
        match self {
            AggOp::Sum => "Sum",
            AggOp::Min => "Min",
            AggOp::Max => "Max",
            AggOp::Count => "Count",
            AggOp::Average => "Average",
            AggOp::Any => "Any",
            AggOp::All => "All",
            AggOp::First => "FirstOrDefault",
        }
    }
}

/// The `GroupBy` result selector `(key, group) => result`: an aggregation
/// over the group followed by a result expression over the key and the
/// aggregate.
///
/// This factored form is what lets Steno recognize "GroupBy operators with
/// an aggregating result selector" and insert the specialized
/// `GroupByAggregate` sink (§4.3): `agg_query` describes the reduction of
/// one group, and `result` combines it with the key.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupResult {
    /// Name binding the group key in `result`.
    pub key_param: String,
    /// Name binding the group contents; `agg_query`'s source must iterate
    /// it (i.e. be `Source(Expr(Var(group_param)))` at its root).
    pub group_param: String,
    /// The aggregation query over one group (must be scalar-valued).
    pub agg_query: Box<QueryExpr>,
    /// Name binding the aggregate result in `result`.
    pub agg_param: String,
    /// The final per-group expression, over `key_param` and `agg_param`.
    pub result: Expr,
}

impl GroupResult {
    /// The common `(k, g) => (k, agg(g))` selector.
    pub fn keyed(
        key_param: impl Into<String>,
        group_param: impl Into<String>,
        agg_query: QueryExpr,
    ) -> GroupResult {
        let key_param = key_param.into();
        GroupResult {
            key_param: key_param.clone(),
            group_param: group_param.into(),
            agg_query: Box::new(agg_query),
            agg_param: "__agg".into(),
            result: Expr::mk_pair(Expr::var(key_param), Expr::var("__agg")),
        }
    }
}

impl fmt::Display for GroupResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|{}, {}| {{ let {} = {}; {} }}",
            self.key_param, self.group_param, self.agg_param, self.agg_query, self.result
        )
    }
}

/// A query in method-call form.
///
/// Every variant except [`QueryExpr::Source`] has an `input` — the chain
/// is a linked list exactly like the AST of Fig. 3. A query's *result* is
/// a sequence, unless it ends in an aggregate variant, in which case it is
/// a scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryExpr {
    /// The source collection.
    Source(SourceRef),
    /// `Select(f)`.
    Select {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// The transformation function.
        f: QFn,
    },
    /// `Where(p)`.
    Where {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// The predicate.
        p: QFn,
    },
    /// `SelectMany(f)` — `f` yields a subsequence per element.
    SelectMany {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// The subsequence selector.
        f: QFn,
    },
    /// `Take(n)`.
    Take {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// Maximum number of elements.
        count: usize,
    },
    /// `Skip(n)`.
    Skip {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// Number of elements to drop.
        count: usize,
    },
    /// `TakeWhile(p)`.
    TakeWhile {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// The predicate (expression-bodied).
        p: QFn,
    },
    /// `SkipWhile(p)`.
    SkipWhile {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// The predicate (expression-bodied).
        p: QFn,
    },
    /// `GroupBy(key[, elem][, result])`: without a result selector, yields
    /// `(key, seq<elem>)` pairs in key first-appearance order; with one,
    /// applies it to each key and its group (the `reduce()` of MapReduce,
    /// §4.3).
    GroupBy {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// Key selector.
        key: QFn,
        /// Optional element selector applied before grouping.
        elem: Option<QFn>,
        /// Optional result selector `(key, group) => r`.
        result: Option<GroupResult>,
    },
    /// `OrderBy(key)` / `OrderByDescending(key)`.
    OrderBy {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// Sort-key selector (expression-bodied).
        key: QFn,
        /// Sort direction.
        descending: bool,
    },
    /// `Distinct()`.
    Distinct {
        /// Upstream query.
        input: Box<QueryExpr>,
    },
    /// `ToArray()` — the explicit materialization sink of §4.2
    /// (footnote 3).
    ToVec {
        /// Upstream query.
        input: Box<QueryExpr>,
    },
    /// `Concat(other)`.
    Concat {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// The appended query.
        other: Box<QueryExpr>,
    },
    /// `Join(inner, outerKey, innerKey, result)`: equi-join. Canonicalized
    /// (§3.1) into the paper's §5 nested form,
    /// `outer.SelectMany(o => inner.Where(i => ok(o) == ik(i)).Select(i => r(o, i)))`,
    /// which the nested-loop generator then optimizes.
    Join {
        /// The outer side.
        input: Box<QueryExpr>,
        /// The inner side.
        inner: Box<QueryExpr>,
        /// Outer key selector (expression-bodied).
        outer_key: QFn,
        /// Inner key selector (expression-bodied).
        inner_key: QFn,
        /// Result selector `(outer, inner) => r`.
        result: QFn2,
    },
    /// `Aggregate(seed, func[, combine])`: general left fold. `combine`
    /// optionally declares how to merge two partial accumulators, which
    /// marks the fold associative for distributed execution (§6).
    Aggregate {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// Seed expression, evaluated in the enclosing scope.
        seed: Expr,
        /// The fold function `(acc, elem) => acc'`.
        func: QFn2,
        /// Optional combiner `(acc, acc) => acc` for partial aggregation.
        combine: Option<QFn2>,
    },
    /// A built-in aggregate (`Sum`, `Min`, ..., Table 1).
    Agg {
        /// Upstream query.
        input: Box<QueryExpr>,
        /// Which aggregate.
        op: AggOp,
        /// Optional predicate/selector shorthand (`Any(p)`, `Count(p)`,
        /// `Sum(f)`); removed by [`QueryExpr::canonicalize`].
        f: Option<QFn>,
    },
}

impl QueryExpr {
    /// The immediate upstream query, if any.
    pub fn input(&self) -> Option<&QueryExpr> {
        match self {
            QueryExpr::Source(_) => None,
            QueryExpr::Select { input, .. }
            | QueryExpr::Where { input, .. }
            | QueryExpr::SelectMany { input, .. }
            | QueryExpr::Take { input, .. }
            | QueryExpr::Skip { input, .. }
            | QueryExpr::TakeWhile { input, .. }
            | QueryExpr::SkipWhile { input, .. }
            | QueryExpr::GroupBy { input, .. }
            | QueryExpr::OrderBy { input, .. }
            | QueryExpr::Distinct { input }
            | QueryExpr::ToVec { input }
            | QueryExpr::Concat { input, .. }
            | QueryExpr::Join { input, .. }
            | QueryExpr::Aggregate { input, .. }
            | QueryExpr::Agg { input, .. } => Some(input),
        }
    }

    /// `true` if the query produces a scalar (ends in an aggregate).
    pub fn is_scalar(&self) -> bool {
        matches!(self, QueryExpr::Aggregate { .. } | QueryExpr::Agg { .. })
    }

    /// The source at the root of the chain.
    pub fn source(&self) -> &SourceRef {
        match self {
            QueryExpr::Source(s) => s,
            other => match other.input() {
                Some(input) => input.source(),
                // input() returns Some for every non-Source variant.
                None => unreachable!(),
            },
        }
    }

    /// The number of operators in the chain (excluding the source),
    /// not counting nested queries.
    pub fn chain_len(&self) -> usize {
        match self.input() {
            None => 0,
            Some(i) => 1 + i.chain_len(),
        }
    }

    /// Canonicalizes operator overloads (§3.1): rewrites shorthand
    /// aggregates with an inline function — `Any(p)`, `Count(p)`,
    /// `Sum(f)`, `Min(f)`, `Max(f)`, `Average(f)`, `All(p)` — into the
    /// canonical `Where`/`Select` + bare-aggregate form.
    pub fn canonicalize(self) -> QueryExpr {
        match self {
            QueryExpr::Agg {
                input,
                op,
                f: Some(f),
            } => {
                let input = Box::new(input.canonicalize());
                match op {
                    // Any(p) == Where(p).Any(); Count(p) == Where(p).Count()
                    AggOp::Any | AggOp::Count | AggOp::First => QueryExpr::Agg {
                        input: Box::new(QueryExpr::Where { input, p: f }),
                        op,
                        f: None,
                    },
                    // Sum(f) == Select(f).Sum(), etc. All(p) == Select(p).All().
                    AggOp::Sum | AggOp::Min | AggOp::Max | AggOp::Average | AggOp::All => {
                        QueryExpr::Agg {
                            input: Box::new(QueryExpr::Select { input, f }),
                            op,
                            f: None,
                        }
                    }
                }
            }
            QueryExpr::Source(s) => QueryExpr::Source(s),
            QueryExpr::Select { input, f } => QueryExpr::Select {
                input: Box::new(input.canonicalize()),
                f: f.canonicalize(),
            },
            QueryExpr::Where { input, p } => QueryExpr::Where {
                input: Box::new(input.canonicalize()),
                p: p.canonicalize(),
            },
            QueryExpr::SelectMany { input, f } => QueryExpr::SelectMany {
                input: Box::new(input.canonicalize()),
                f: f.canonicalize(),
            },
            QueryExpr::Take { input, count } => QueryExpr::Take {
                input: Box::new(input.canonicalize()),
                count,
            },
            QueryExpr::Skip { input, count } => QueryExpr::Skip {
                input: Box::new(input.canonicalize()),
                count,
            },
            QueryExpr::TakeWhile { input, p } => QueryExpr::TakeWhile {
                input: Box::new(input.canonicalize()),
                p,
            },
            QueryExpr::SkipWhile { input, p } => QueryExpr::SkipWhile {
                input: Box::new(input.canonicalize()),
                p,
            },
            QueryExpr::GroupBy {
                input,
                key,
                elem,
                result,
            } => QueryExpr::GroupBy {
                input: Box::new(input.canonicalize()),
                key,
                elem,
                result: result.map(|r| GroupResult {
                    agg_query: Box::new(r.agg_query.canonicalize()),
                    ..r
                }),
            },
            QueryExpr::OrderBy {
                input,
                key,
                descending,
            } => QueryExpr::OrderBy {
                input: Box::new(input.canonicalize()),
                key,
                descending,
            },
            QueryExpr::Distinct { input } => QueryExpr::Distinct {
                input: Box::new(input.canonicalize()),
            },
            QueryExpr::ToVec { input } => QueryExpr::ToVec {
                input: Box::new(input.canonicalize()),
            },
            QueryExpr::Concat { input, other } => QueryExpr::Concat {
                input: Box::new(input.canonicalize()),
                other: Box::new(other.canonicalize()),
            },
            QueryExpr::Join {
                input,
                inner,
                outer_key,
                inner_key,
                result,
            } => {
                // The §5 rewrite: an equi-join is a SelectMany whose nested
                // query filters the inner side on key equality. Rename the
                // result selector's inner parameter onto the inner binder
                // and its outer parameter onto the SelectMany binder.
                let (QBody::Expr(ok_body), QBody::Expr(ik_body)) =
                    (&outer_key.body, &inner_key.body)
                else {
                    // Nested-query key selectors are left as-is; the
                    // executor falls back for them.
                    return QueryExpr::Join {
                        input: Box::new(input.canonicalize()),
                        inner: Box::new(inner.canonicalize()),
                        outer_key,
                        inner_key,
                        result,
                    };
                };
                let o = outer_key.param.clone();
                let i = inner_key.param.clone();
                let ok = steno_expr::subst::rename(ok_body, &outer_key.param, &o);
                let ik = steno_expr::subst::rename(ik_body, &inner_key.param, &i);
                let body = steno_expr::subst::rename(&result.body, &result.param0, &o);
                let body = steno_expr::subst::rename(&body, &result.param1, &i);
                let nested = QueryExpr::Select {
                    input: Box::new(QueryExpr::Where {
                        input: Box::new(inner.canonicalize()),
                        p: QFn::expr(i.clone(), ok.eq(ik)),
                    }),
                    f: QFn::expr(i, body),
                };
                QueryExpr::SelectMany {
                    input: Box::new(input.canonicalize()),
                    f: QFn {
                        param: o,
                        body: QBody::Query(Box::new(nested)),
                    },
                }
            }
            QueryExpr::Aggregate {
                input,
                seed,
                func,
                combine,
            } => QueryExpr::Aggregate {
                input: Box::new(input.canonicalize()),
                seed,
                func,
                combine,
            },
            QueryExpr::Agg { input, op, f: None } => QueryExpr::Agg {
                input: Box::new(input.canonicalize()),
                op,
                f: None,
            },
        }
    }
}

impl QFn {
    fn canonicalize(self) -> QFn {
        match self.body {
            QBody::Expr(e) => QFn {
                param: self.param,
                body: QBody::Expr(e),
            },
            QBody::Query(q) => QFn {
                param: self.param,
                body: QBody::Query(Box::new(q.canonicalize())),
            },
        }
    }
}

impl fmt::Display for QueryExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryExpr::Source(s) => write!(f, "{s}"),
            QueryExpr::Select { input, f: func } => write!(f, "{input}.Select({func})"),
            QueryExpr::Where { input, p } => write!(f, "{input}.Where({p})"),
            QueryExpr::SelectMany { input, f: func } => {
                write!(f, "{input}.SelectMany({func})")
            }
            QueryExpr::Take { input, count } => write!(f, "{input}.Take({count})"),
            QueryExpr::Skip { input, count } => write!(f, "{input}.Skip({count})"),
            QueryExpr::TakeWhile { input, p } => write!(f, "{input}.TakeWhile({p})"),
            QueryExpr::SkipWhile { input, p } => write!(f, "{input}.SkipWhile({p})"),
            QueryExpr::GroupBy {
                input,
                key,
                elem,
                result,
            } => {
                write!(f, "{input}.GroupBy({key}")?;
                if let Some(e) = elem {
                    write!(f, ", {e}")?;
                }
                if let Some(r) = result {
                    write!(f, ", {r}")?;
                }
                write!(f, ")")
            }
            QueryExpr::OrderBy {
                input,
                key,
                descending,
            } => {
                if *descending {
                    write!(f, "{input}.OrderByDescending({key})")
                } else {
                    write!(f, "{input}.OrderBy({key})")
                }
            }
            QueryExpr::Distinct { input } => write!(f, "{input}.Distinct()"),
            QueryExpr::ToVec { input } => write!(f, "{input}.ToArray()"),
            QueryExpr::Concat { input, other } => write!(f, "{input}.Concat({other})"),
            QueryExpr::Join {
                input,
                inner,
                outer_key,
                inner_key,
                result,
            } => write!(f, "{input}.Join({inner}, {outer_key}, {inner_key}, {result})"),
            QueryExpr::Aggregate {
                input, seed, func, ..
            } => write!(f, "{input}.Aggregate({seed}, {func})"),
            QueryExpr::Agg { input, op, f: func } => match func {
                Some(g) => write!(f, "{input}.{}({g})", op.method_name()),
                None => write!(f, "{input}.{}()", op.method_name()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> QueryExpr {
        QueryExpr::Source(SourceRef::Named("xs".into()))
    }

    #[test]
    fn display_matches_figure_3() {
        let q = QueryExpr::Select {
            input: Box::new(QueryExpr::Where {
                input: Box::new(xs()),
                p: QFn::expr("x", (Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0))),
            }),
            f: QFn::expr("x", Expr::var("x") * Expr::var("x")),
        };
        assert_eq!(
            q.to_string(),
            "xs.Where(|x| ((x % 2) == 0)).Select(|x| (x * x))"
        );
    }

    #[test]
    fn chain_navigation() {
        let q = QueryExpr::Agg {
            input: Box::new(QueryExpr::Select {
                input: Box::new(xs()),
                f: QFn::expr("x", Expr::var("x")),
            }),
            op: AggOp::Sum,
            f: None,
        };
        assert!(q.is_scalar());
        assert_eq!(q.chain_len(), 2);
        assert_eq!(q.source(), &SourceRef::Named("xs".into()));
        assert!(!xs().is_scalar());
    }

    #[test]
    fn canonicalize_rewrites_shorthand_aggregates() {
        // xs.Any(p) == xs.Where(p).Any()
        let p = QFn::expr("x", Expr::var("x").gt(Expr::litf(0.0)));
        let q = QueryExpr::Agg {
            input: Box::new(xs()),
            op: AggOp::Any,
            f: Some(p.clone()),
        };
        let c = q.canonicalize();
        assert_eq!(c.to_string(), "xs.Where(|x| (x > 0.0)).Any()");

        // xs.Sum(f) == xs.Select(f).Sum()
        let q = QueryExpr::Agg {
            input: Box::new(xs()),
            op: AggOp::Sum,
            f: Some(QFn::expr("x", Expr::var("x") * Expr::var("x"))),
        };
        assert_eq!(q.canonicalize().to_string(), "xs.Select(|x| (x * x)).Sum()");
    }

    #[test]
    fn canonicalize_recurses_into_nested_queries() {
        let nested = QueryExpr::Agg {
            input: Box::new(QueryExpr::Source(SourceRef::Named("ys".into()))),
            op: AggOp::Count,
            f: Some(QFn::expr("y", Expr::var("y").eq(Expr::var("x")))),
        };
        let q = QueryExpr::Select {
            input: Box::new(xs()),
            f: QFn::query("x", nested),
        };
        let c = q.canonicalize();
        assert_eq!(
            c.to_string(),
            "xs.Select(|x| ys.Where(|y| (y == x)).Count())"
        );
    }

    #[test]
    fn source_kinds_display() {
        assert_eq!(
            SourceRef::Range { start: 0, count: 5 }.to_string(),
            "Range(0, 5)"
        );
        assert_eq!(
            SourceRef::Repeat {
                value: Value::F64(1.0),
                count: 3
            }
            .to_string(),
            "Repeat(1, 3)"
        );
        assert_eq!(
            SourceRef::Expr(Expr::var("kv").field(1)).to_string(),
            "kv.1"
        );
    }
}
