/root/repo/target/release/examples/quickstart-85b25f0d621699c2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-85b25f0d621699c2: examples/quickstart.rs

examples/quickstart.rs:
