/root/repo/target/debug/examples/codegen_tour-e9c59de03e64e0a6.d: examples/codegen_tour.rs Cargo.toml

/root/repo/target/debug/examples/libcodegen_tour-e9c59de03e64e0a6.rmeta: examples/codegen_tour.rs Cargo.toml

examples/codegen_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
