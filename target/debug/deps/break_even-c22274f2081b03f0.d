/root/repo/target/debug/deps/break_even-c22274f2081b03f0.d: crates/bench/src/bin/break_even.rs

/root/repo/target/debug/deps/break_even-c22274f2081b03f0: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
