/root/repo/target/debug/deps/bench-956a716ad5ef455a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/bench-956a716ad5ef455a: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
