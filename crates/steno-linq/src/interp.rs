//! The unoptimized executor: runs query ASTs through iterator chains.
//!
//! This module instantiates the typed operator layer at
//! [`Value`] and drives it from a
//! [`QueryExpr`], evaluating the expression-tree
//! lambdas per element. It is the executor a DryadLINQ vertex uses when
//! Steno is *not* applied, and the reference implementation against which
//! the Steno VM and macro back ends are differentially tested.
//!
//! # Errors and panics
//!
//! [`execute`] type-checks the query up front and reports structural
//! problems as errors. Data-dependent evaluation failures inside operator
//! closures (integer division by zero, row index out of range) panic, as
//! the equivalent .NET exceptions would unwind through the iterator chain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use steno_expr::eval::{eval, Env};
use steno_expr::{DataContext, EvalError, Ty, UdfRegistry, Value};
use steno_query::typing::{self, SourceTypes};
use steno_query::{AggOp, QBody, QFn, QueryExpr, SourceRef};

use crate::enumerable::Enumerable;

/// Why an interruptible execution was asked to stop (see
/// [`execute_interruptible`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stop {
    /// A deadline expired.
    Deadline,
    /// The caller cancelled the query.
    Cancelled,
}

/// A cancellation probe for the iterator executor: returns `Some` once
/// the caller wants the query aborted. A boxed closure (rather than a
/// concrete interrupt type) keeps this crate free of a dependency on
/// the VM's `Interrupt` — any deadline/cancel source can drive it.
pub type StopProbe = Arc<dyn Fn() -> Option<Stop> + Send + Sync>;

/// Elements enumerated between probe calls. The interpreter costs
/// hundreds of nanoseconds per element, so even a modest stride bounds
/// detection latency to well under a millisecond while keeping the
/// per-element overhead to one shared counter increment.
const INTERP_POLL_STRIDE: u64 = 256;

/// The panic payload [`Poller::tick`] throws to unwind out of the
/// iterator chain. The interpreter's operator closures return plain
/// values (failures panic, per this module's documented convention), so
/// cooperative interruption rides the same unwind path and is caught —
/// and converted back into an error — at the [`execute_interruptible`]
/// boundary.
struct InterruptSignal(Stop);

/// Amortized interrupt polling shared by every operator closure of one
/// execution (the tick counter is behind an `Arc` because [`Rt`] is
/// cloned into each closure).
#[derive(Clone)]
struct Poller {
    probe: StopProbe,
    ticks: Arc<AtomicU64>,
}

impl Poller {
    fn new(probe: StopProbe) -> Poller {
        Poller {
            probe,
            ticks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Counts one element; every [`INTERP_POLL_STRIDE`]-th call asks the
    /// probe and unwinds with [`InterruptSignal`] if it fired.
    fn tick(&self) {
        let n = self.ticks.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(INTERP_POLL_STRIDE) {
            if let Some(stop) = (self.probe)() {
                std::panic::panic_any(InterruptSignal(stop));
            }
        }
    }
}

/// Shared runtime state captured by operator closures.
#[derive(Clone)]
struct Rt {
    ctx: Arc<DataContext>,
    udfs: Arc<UdfRegistry>,
    /// `Some` only under [`execute_interruptible`]: sources are then
    /// instrumented to poll for deadlines/cancellation per element.
    interrupt: Option<Poller>,
}

impl Rt {
    /// Wraps a source enumerable with per-element interrupt polling
    /// when this execution is interruptible; the identity otherwise.
    /// Instrumenting at the sources covers every chain shape — all
    /// operators, including the eagerly-materializing ones (`GroupBy`,
    /// `OrderBy`) and bare aggregates like `Count`, pull their elements
    /// up from a source.
    fn instrument(&self, src: Enumerable<Value>) -> Enumerable<Value> {
        match &self.interrupt {
            None => src,
            Some(poller) => {
                let poller = poller.clone();
                src.select(move |v| {
                    poller.tick();
                    v
                })
            }
        }
    }
}

/// The "default value" conventions this reproduction uses for aggregates
/// over empty sequences (LINQ throws; we return the fold identity so that
/// all back ends agree — see DESIGN.md).
pub fn default_value(ty: &Ty) -> Value {
    match ty {
        Ty::F64 => Value::F64(0.0),
        Ty::I64 => Value::I64(0),
        Ty::Bool => Value::Bool(false),
        Ty::Row => Value::row(Vec::new()),
        Ty::Pair(a, b) => Value::pair(default_value(a), default_value(b)),
        Ty::Seq(_) => Value::seq(Vec::new()),
    }
}

/// The identity element for `Min` over `ty` (positive infinity / `i64::MAX`).
pub fn min_identity(ty: &Ty) -> Value {
    match ty {
        Ty::I64 => Value::I64(i64::MAX),
        _ => Value::F64(f64::INFINITY),
    }
}

/// The identity element for `Max` over `ty` (negative infinity / `i64::MIN`).
pub fn max_identity(ty: &Ty) -> Value {
    match ty {
        Ty::I64 => Value::I64(i64::MIN),
        _ => Value::F64(f64::NEG_INFINITY),
    }
}

fn ty_env_of(env: &Env) -> steno_expr::typecheck::TyEnv {
    let mut te = steno_expr::typecheck::TyEnv::new();
    for (name, value) in env.iter() {
        te.bind(name, value.ty());
    }
    te
}

/// Converts a sequence-shaped value into an enumerable.
fn value_to_enumerable(v: Value) -> Enumerable<Value> {
    match v {
        Value::Seq(s) => Enumerable::from_vec(s.as_ref().clone()),
        Value::Row(r) => Enumerable::from_vec(r.iter().map(|x| Value::F64(*x)).collect()),
        other => panic!("expected a sequence-shaped value, found {other}"),
    }
}

fn apply_qfn(f: &QFn, arg: Value, rt: &Rt, env: &Env) -> Value {
    let mut inner = env.clone();
    inner.bind(f.param.clone(), arg);
    match &f.body {
        QBody::Expr(e) => eval(e, &inner, &rt.udfs).expect("well-typed query body failed"),
        QBody::Query(q) => {
            execute_in(q, rt, &inner).expect("well-typed nested query failed")
        }
    }
}

fn enumerable_of(q: &QueryExpr, rt: &Rt, env: &Env) -> Result<Enumerable<Value>, EvalError> {
    match q {
        QueryExpr::Source(s) => {
            let base = match s {
                SourceRef::Named(name) => {
                    let col = rt
                        .ctx
                        .source(name)
                        .ok_or_else(|| EvalError::UnboundVariable(format!("source `{name}`")))?;
                    Enumerable::from_vec(col.to_values())
                }
                SourceRef::Range { start, count } => {
                    Enumerable::range(*start, *count).select(Value::I64)
                }
                SourceRef::Repeat { value, count } => Enumerable::repeat(value.clone(), *count),
                SourceRef::Expr(e) => value_to_enumerable(eval(e, env, &rt.udfs)?),
            };
            Ok(rt.instrument(base))
        }
        QueryExpr::Select { input, f } => {
            let src = enumerable_of(input, rt, env)?;
            let f = f.clone();
            let rt = rt.clone();
            let env = env.clone();
            Ok(src.select(move |v| apply_qfn(&f, v, &rt, &env)))
        }
        QueryExpr::Where { input, p } => {
            let src = enumerable_of(input, rt, env)?;
            let p = p.clone();
            let rt = rt.clone();
            let env = env.clone();
            Ok(src.where_(move |v| {
                apply_qfn(&p, v, &rt, &env)
                    .as_bool()
                    .expect("predicate must yield bool")
            }))
        }
        QueryExpr::SelectMany { input, f } => {
            let src = enumerable_of(input, rt, env)?;
            let f = f.clone();
            let rt = rt.clone();
            let env = env.clone();
            Ok(src.select_many(move |v| {
                // A nested sequence-valued query; materialized per element,
                // then enumerated — the iterator-of-iterators of §5.
                match &f.body {
                    QBody::Query(q) => {
                        let mut inner = env.clone();
                        inner.bind(f.param.clone(), v);
                        enumerable_of(q, &rt, &inner)
                            .expect("well-typed nested query failed")
                    }
                    QBody::Expr(_) => value_to_enumerable(apply_qfn(&f, v, &rt, &env)),
                }
            }))
        }
        QueryExpr::Take { input, count } => Ok(enumerable_of(input, rt, env)?.take(*count)),
        QueryExpr::Skip { input, count } => Ok(enumerable_of(input, rt, env)?.skip(*count)),
        QueryExpr::TakeWhile { input, p } => {
            let src = enumerable_of(input, rt, env)?;
            let p = p.clone();
            let rt = rt.clone();
            let env = env.clone();
            Ok(src.take_while(move |v| {
                apply_qfn(&p, v, &rt, &env)
                    .as_bool()
                    .expect("predicate must yield bool")
            }))
        }
        QueryExpr::SkipWhile { input, p } => {
            let src = enumerable_of(input, rt, env)?;
            let p = p.clone();
            let rt = rt.clone();
            let env = env.clone();
            Ok(src.skip_while(move |v| {
                apply_qfn(&p, v, &rt, &env)
                    .as_bool()
                    .expect("predicate must yield bool")
            }))
        }
        QueryExpr::GroupBy {
            input,
            key,
            elem,
            result,
        } => {
            let src = enumerable_of(input, rt, env)?;
            let key = key.clone();
            let elem = elem.clone();
            let result = result.clone();
            let rt = rt.clone();
            let env = env.clone();
            // Group eagerly into (key, seq) pairs, preserving key order of
            // first appearance — the Sink of Fig. 7(b).
            Ok(Enumerable::new(move || {
                let mut index = std::collections::HashMap::new();
                let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
                let mut e = src.get_enumerator();
                while e.move_next() {
                    let item = e.current();
                    let k = apply_qfn(&key, item.clone(), &rt, &env);
                    let v = match &elem {
                        Some(sel) => apply_qfn(sel, item, &rt, &env),
                        None => item,
                    };
                    let slot = *index.entry(k.key()).or_insert_with(|| {
                        groups.push((k, Vec::new()));
                        groups.len() - 1
                    });
                    groups[slot].1.push(v);
                }
                let pairs: Vec<Value> = match &result {
                    // Plain GroupBy: (key, group) pairs.
                    None => groups
                        .into_iter()
                        .map(|(k, vs)| Value::pair(k, Value::seq(vs)))
                        .collect(),
                    // Result-selector overload: aggregate each group, then
                    // apply the result expression to (key, aggregate).
                    Some(r) => groups
                        .into_iter()
                        .map(|(k, vs)| {
                            let mut genv = env.clone();
                            genv.bind(r.group_param.clone(), Value::seq(vs));
                            let agg = execute_in(&r.agg_query, &rt, &genv)
                                .expect("well-typed group aggregation failed");
                            let mut renv = env.clone();
                            renv.bind(r.key_param.clone(), k);
                            renv.bind(r.agg_param.clone(), agg);
                            eval(&r.result, &renv, &rt.udfs)
                                .expect("well-typed group result failed")
                        })
                        .collect(),
                };
                Enumerable::from_vec(pairs).get_enumerator()
            }))
        }
        QueryExpr::OrderBy {
            input,
            key,
            descending,
        } => {
            let src = enumerable_of(input, rt, env)?;
            let key = key.clone();
            let rt = rt.clone();
            let env = env.clone();
            let descending = *descending;
            // Decorate-sort-undecorate to evaluate each key once.
            Ok(Enumerable::new(move || {
                let mut decorated: Vec<(Value, Value)> = Vec::new();
                let mut e = src.get_enumerator();
                while e.move_next() {
                    let item = e.current();
                    decorated.push((apply_qfn(&key, item.clone(), &rt, &env), item));
                }
                decorated.sort_by(|(ka, _), (kb, _)| {
                    let ord = ka.cmp_total(kb);
                    if descending {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                let items: Vec<Value> = decorated.into_iter().map(|(_, v)| v).collect();
                Enumerable::from_vec(items).get_enumerator()
            }))
        }
        QueryExpr::Distinct { input } => {
            Ok(enumerable_of(input, rt, env)?.distinct_by(|v| v.key()))
        }
        QueryExpr::ToVec { input } => {
            let materialized = enumerable_of(input, rt, env)?.to_vec();
            Ok(Enumerable::from_vec(materialized))
        }
        QueryExpr::Concat { input, other } => {
            Ok(enumerable_of(input, rt, env)?.concat(&enumerable_of(other, rt, env)?))
        }
        QueryExpr::Join { .. } => {
            // Execute through the canonical §5 rewrite (hash-join quality
            // is not this executor's concern; it is the unoptimized
            // baseline).
            let canon = q.clone().canonicalize();
            if matches!(canon, QueryExpr::Join { .. }) {
                return Err(EvalError::TypeMismatch(
                    "Join with nested-query key selectors is unsupported".into(),
                ));
            }
            enumerable_of(&canon, rt, env)
        }
        QueryExpr::Aggregate { .. } | QueryExpr::Agg { .. } => Err(EvalError::TypeMismatch(
            "scalar query used where a sequence was expected".into(),
        )),
    }
}

fn add(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => Value::F64(x + y),
        (Value::I64(x), Value::I64(y)) => Value::I64(x.wrapping_add(*y)),
        _ => panic!("sum over non-numeric elements"),
    }
}

fn execute_in(q: &QueryExpr, rt: &Rt, env: &Env) -> Result<Value, EvalError> {
    match q {
        QueryExpr::Aggregate {
            input, seed, func, ..
        } => {
            let src = enumerable_of(input, rt, env)?;
            let mut acc = eval(seed, env, &rt.udfs)?;
            let mut e = src.get_enumerator();
            while e.move_next() {
                let mut inner = env.clone();
                inner.bind(func.param0.clone(), acc);
                inner.bind(func.param1.clone(), e.current());
                acc = eval(&func.body, &inner, &rt.udfs)?;
            }
            Ok(acc)
        }
        QueryExpr::Agg { input, op, f } => {
            debug_assert!(f.is_none(), "run canonicalize() before execution");
            let src = enumerable_of(input, rt, env)?;
            // Element type decides the identity conventions for empty input.
            let elem_ty = typing::elem_ty(
                input,
                &SourceTypes::from(rt.ctx.as_ref()),
                &ty_env_of(env),
                &rt.udfs,
            )
            .map_err(|e| EvalError::TypeMismatch(e.to_string()))?;
            match op {
                AggOp::Sum => {
                    Ok(src.aggregate(default_value(&elem_ty), |a, x| add(&a, &x)))
                }
                AggOp::Count => Ok(Value::I64(src.count() as i64)),
                AggOp::Min => Ok(src.aggregate(min_identity(&elem_ty), |a, x| {
                    if x.cmp_total(&a).is_lt() {
                        x
                    } else {
                        a
                    }
                })),
                AggOp::Max => Ok(src.aggregate(max_identity(&elem_ty), |a, x| {
                    if x.cmp_total(&a).is_gt() {
                        x
                    } else {
                        a
                    }
                })),
                AggOp::Average => {
                    let (n, s) = src.aggregate((0i64, 0.0f64), |(n, s), x| {
                        (n + 1, s + x.as_f64().expect("average over non-numeric"))
                    });
                    Ok(Value::F64(s / n as f64))
                }
                AggOp::Any => Ok(Value::Bool(src.any(|_| true))),
                AggOp::All => Ok(Value::Bool(
                    src.all(|v| v.as_bool().expect("All over non-boolean")),
                )),
                AggOp::First => Ok(src
                    .first()
                    .unwrap_or_else(|| default_value(&elem_ty))),
            }
        }
        _ => {
            let src = enumerable_of(q, rt, env)?;
            Ok(Value::seq(src.to_vec()))
        }
    }
}

/// Executes a query over the given data context through unoptimized
/// iterator chains.
///
/// The query is type-checked first; run [`QueryExpr::canonicalize`] (or
/// build with [`steno_query::Query::build`]) before calling.
///
/// # Errors
///
/// Returns an error if the query is ill-typed or references unknown
/// sources.
pub fn execute(
    q: &QueryExpr,
    ctx: &DataContext,
    udfs: &UdfRegistry,
) -> Result<Value, EvalError> {
    typing::check_with_context(q, ctx, udfs)
        .map_err(|e| EvalError::TypeMismatch(e.to_string()))?;
    let rt = Rt {
        ctx: Arc::new(ctx.clone()),
        udfs: Arc::new(udfs.clone()),
        interrupt: None,
    };
    execute_in(q, &rt, &Env::new())
}

/// As [`execute`], polling `probe` cooperatively so deadlines and
/// cancellation can stop the iterator chains mid-run — the non-VM
/// analogue of the VM's back-edge interrupt polling. Detection latency
/// is bounded by the polling stride (a few hundred elements at
/// interpreter speeds).
///
/// # Errors
///
/// As [`execute`], plus [`EvalError::Interrupted`] once the probe fires
/// (`deadline: true` for [`Stop::Deadline`]). Panics raised by operator
/// closures (the module's convention for data-dependent failures) still
/// unwind through unchanged.
pub fn execute_interruptible(
    q: &QueryExpr,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    probe: StopProbe,
) -> Result<Value, EvalError> {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    typing::check_with_context(q, ctx, udfs)
        .map_err(|e| EvalError::TypeMismatch(e.to_string()))?;
    // Check once up front so an already-expired deadline never starts
    // the query at all.
    if let Some(stop) = probe() {
        return Err(EvalError::Interrupted {
            deadline: stop == Stop::Deadline,
        });
    }
    let rt = Rt {
        ctx: Arc::new(ctx.clone()),
        udfs: Arc::new(udfs.clone()),
        interrupt: Some(Poller::new(probe)),
    };
    match catch_unwind(AssertUnwindSafe(|| execute_in(q, &rt, &Env::new()))) {
        Ok(result) => result,
        Err(payload) => match payload.downcast::<InterruptSignal>() {
            Ok(signal) => Err(EvalError::Interrupted {
                deadline: signal.0 == Stop::Deadline,
            }),
            // Not ours: data-dependent failures keep their documented
            // panic behavior.
            Err(other) => resume_unwind(other),
        },
    }
}

/// Executes a query with outer-scope bindings (used for nested queries and
/// by the distributed runtime for per-partition subqueries).
///
/// # Errors
///
/// As [`execute`]; the query is *not* re-type-checked.
pub fn execute_with_env(
    q: &QueryExpr,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &Env,
) -> Result<Value, EvalError> {
    let rt = Rt {
        ctx: Arc::new(ctx.clone()),
        udfs: Arc::new(udfs.clone()),
        interrupt: None,
    };
    execute_in(q, &rt, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;
    use steno_query::Query;

    fn ctx() -> DataContext {
        DataContext::new()
            .with_source("xs", vec![1.0, 2.0, 3.0, 4.0])
            .with_source("ns", vec![1i64, 2, 3, 4, 5, 6])
    }

    fn run(q: &QueryExpr) -> Value {
        execute(q, &ctx(), &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn even_squares() {
        let q = Query::source("ns")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .build();
        assert_eq!(
            run(&q),
            Value::seq(vec![Value::I64(4), Value::I64(16), Value::I64(36)])
        );
    }

    #[test]
    fn sum_of_squares() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        assert_eq!(run(&q), Value::F64(30.0));
    }

    #[test]
    fn aggregates() {
        let q = Query::source("ns").count().build();
        assert_eq!(run(&q), Value::I64(6));
        let q = Query::source("ns").min().build();
        assert_eq!(run(&q), Value::I64(1));
        let q = Query::source("ns").max().build();
        assert_eq!(run(&q), Value::I64(6));
        let q = Query::source("xs").average().build();
        assert_eq!(run(&q), Value::F64(2.5));
        let q = Query::source("ns")
            .any_by(Expr::var("x").gt(Expr::liti(5)), "x")
            .build();
        assert_eq!(run(&q), Value::Bool(true));
        let q = Query::source("ns")
            .all_by(Expr::var("x").gt(Expr::liti(0)), "x")
            .build();
        assert_eq!(run(&q), Value::Bool(true));
        let q = Query::source("ns").first().build();
        assert_eq!(run(&q), Value::I64(1));
    }

    #[test]
    fn empty_aggregate_conventions() {
        let empty = DataContext::new().with_source("e", Vec::<f64>::new());
        let udfs = UdfRegistry::new();
        let sum = Query::source("e").sum().build();
        assert_eq!(execute(&sum, &empty, &udfs).unwrap(), Value::F64(0.0));
        let min = Query::source("e").min().build();
        assert_eq!(
            execute(&min, &empty, &udfs).unwrap(),
            Value::F64(f64::INFINITY)
        );
        let first = Query::source("e").first().build();
        assert_eq!(execute(&first, &empty, &udfs).unwrap(), Value::F64(0.0));
    }

    #[test]
    fn cartesian_product_via_nested_query() {
        // xs.SelectMany(x => ns.Select(n => x * n)).Sum() — §5's shape.
        let q = Query::source("ns")
            .select_many(
                Query::source("ns").select(Expr::var("x") * Expr::var("y"), "y"),
                "x",
            )
            .sum()
            .build();
        // sum_{x,y in 1..=6} x*y = 21 * 21
        assert_eq!(run(&q), Value::I64(441));
    }

    #[test]
    fn nested_scalar_query_in_select() {
        // ns.Select(x => xs.Count()) — nested query with scalar result.
        let q = Query::source("ns")
            .take(2)
            .select_query(Query::source("xs").count(), "x")
            .build();
        assert_eq!(run(&q), Value::seq(vec![Value::I64(4), Value::I64(4)]));
    }

    #[test]
    fn nested_query_uses_outer_variable() {
        // ns.Where(x => ns.Any(y => y == x + 5)) keeps only x = 1
        let q = Query::source("ns")
            .where_(Expr::var("x").le(Expr::liti(1)), "x")
            .select_query(
                Query::source("ns")
                    .count_by(Expr::var("y").gt(Expr::var("x")), "y"),
                "x",
            )
            .build();
        assert_eq!(run(&q), Value::seq(vec![Value::I64(5)]));
    }

    #[test]
    fn group_by_yields_pairs_in_first_key_order() {
        let q = Query::source("ns")
            .group_by(Expr::var("x") % Expr::liti(3), "x")
            .build();
        let out = run(&q);
        let seq = out.as_seq().unwrap();
        assert_eq!(seq.len(), 3);
        let (k0, g0) = seq[0].as_pair().unwrap();
        assert_eq!(*k0, Value::I64(1));
        assert_eq!(*g0, Value::seq(vec![Value::I64(1), Value::I64(4)]));
    }

    #[test]
    fn group_by_then_aggregate_groups() {
        // The GROUP BY ... aggregate pattern of §4.3: per-key sums.
        let q = Query::source("ns")
            .group_by(Expr::var("x") % Expr::liti(2), "x")
            .select(
                Expr::mk_pair(
                    Expr::var("kv").field(0),
                    Expr::var("kv").field(1), // placeholder, replaced below
                ),
                "kv",
            )
            .build();
        // Instead of expression-level seq support, aggregate via nested query:
        let q2 = Query::source("ns")
            .group_by(Expr::var("x") % Expr::liti(2), "x")
            .select_query(
                Query::over(Expr::var("kv").field(1)).sum(),
                "kv",
            )
            .build();
        let _ = q; // the pair-of-seq shape itself is exercised above
        assert_eq!(
            run(&q2),
            Value::seq(vec![Value::I64(9), Value::I64(12)])
        );
    }

    #[test]
    fn order_take_skip_distinct() {
        let ctx = DataContext::new().with_source("v", vec![3i64, 1, 2, 3, 1]);
        let udfs = UdfRegistry::new();
        let q = Query::source("v")
            .distinct()
            .order_by(Expr::var("x"), "x")
            .build();
        assert_eq!(
            execute(&q, &ctx, &udfs).unwrap(),
            Value::seq(vec![Value::I64(1), Value::I64(2), Value::I64(3)])
        );
        let q = Query::source("v")
            .order_by_desc(Expr::var("x"), "x")
            .take(2)
            .build();
        assert_eq!(
            execute(&q, &ctx, &udfs).unwrap(),
            Value::seq(vec![Value::I64(3), Value::I64(3)])
        );
        let q = Query::source("v").skip(3).build();
        assert_eq!(
            execute(&q, &ctx, &udfs).unwrap(),
            Value::seq(vec![Value::I64(3), Value::I64(1)])
        );
    }

    #[test]
    fn take_while_skip_while_and_concat() {
        let q = Query::source("ns")
            .take_while(Expr::var("x").lt(Expr::liti(4)), "x")
            .concat(Query::source("ns").skip_while(Expr::var("x").lt(Expr::liti(6)), "x"))
            .build();
        assert_eq!(
            run(&q),
            Value::seq(vec![
                Value::I64(1),
                Value::I64(2),
                Value::I64(3),
                Value::I64(6)
            ])
        );
    }

    #[test]
    fn range_and_repeat_sources() {
        let udfs = UdfRegistry::new();
        let q = Query::range(5, 3).sum().build();
        assert_eq!(
            execute(&q, &DataContext::new(), &udfs).unwrap(),
            Value::I64(18)
        );
        let q = Query::repeat(2.5f64, 4).sum().build();
        assert_eq!(
            execute(&q, &DataContext::new(), &udfs).unwrap(),
            Value::F64(10.0)
        );
    }

    #[test]
    fn generic_aggregate_fold() {
        let q = Query::source("ns")
            .aggregate(
                Expr::liti(1),
                "acc",
                "x",
                Expr::var("acc") * Expr::var("x"),
            )
            .build();
        assert_eq!(run(&q), Value::I64(720));
    }

    #[test]
    fn ill_typed_query_is_rejected() {
        let q = Query::source("xs")
            .where_(Expr::var("x") + Expr::litf(1.0), "x")
            .build();
        assert!(execute(&q, &ctx(), &UdfRegistry::new()).is_err());
        let q = Query::source("missing").count().build();
        assert!(execute(&q, &ctx(), &UdfRegistry::new()).is_err());
    }

    #[test]
    fn to_vec_materializes() {
        let q = Query::source("ns").to_vec().count().build();
        assert_eq!(run(&q), Value::I64(6));
    }

    #[test]
    fn inert_probe_matches_plain_execution() {
        let q = Query::source("ns")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let probe: StopProbe = Arc::new(|| None);
        assert_eq!(
            execute_interruptible(&q, &ctx(), &UdfRegistry::new(), probe).unwrap(),
            run(&q)
        );
    }

    #[test]
    fn prefired_probe_stops_before_execution() {
        let q = Query::source("ns").sum().build();
        let probe: StopProbe = Arc::new(|| Some(Stop::Deadline));
        assert_eq!(
            execute_interruptible(&q, &ctx(), &UdfRegistry::new(), probe),
            Err(EvalError::Interrupted { deadline: true })
        );
        let probe: StopProbe = Arc::new(|| Some(Stop::Cancelled));
        assert_eq!(
            execute_interruptible(&q, &ctx(), &UdfRegistry::new(), probe),
            Err(EvalError::Interrupted { deadline: false })
        );
    }

    #[test]
    fn mid_run_cancellation_stops_the_iterator_chain() {
        use std::sync::atomic::{AtomicU64, Ordering};

        // The probe fires on its third call: well into the enumeration
        // of a 100k-element chain, long before it completes. The probe
        // call count also proves the stride amortization — polling per
        // element would have asked tens of thousands of times.
        let calls = Arc::new(AtomicU64::new(0));
        let probe: StopProbe = {
            let calls = Arc::clone(&calls);
            Arc::new(move || {
                if calls.fetch_add(1, Ordering::Relaxed) >= 3 {
                    Some(Stop::Cancelled)
                } else {
                    None
                }
            })
        };
        let big = DataContext::new()
            .with_source("big", (0..100_000i64).collect::<Vec<_>>());
        let q = Query::source("big")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        assert_eq!(
            execute_interruptible(&q, &big, &UdfRegistry::new(), probe),
            Err(EvalError::Interrupted { deadline: false })
        );
        let asked = calls.load(Ordering::Relaxed);
        assert!(asked >= 4, "probe must be polled mid-run, asked {asked}");
        assert!(asked < 100, "polling must be stride-amortized, asked {asked}");
    }

    #[test]
    fn interruption_reaches_eager_and_aggregate_operators() {
        // GroupBy materializes eagerly and Count never runs a per-element
        // lambda; both must still observe cancellation because polling
        // is instrumented at the sources they drain.
        let big = DataContext::new()
            .with_source("big", (0..50_000i64).collect::<Vec<_>>());
        let fire_late = || -> StopProbe {
            use std::sync::atomic::{AtomicU64, Ordering};
            let calls = Arc::new(AtomicU64::new(0));
            Arc::new(move || {
                if calls.fetch_add(1, Ordering::Relaxed) >= 2 {
                    Some(Stop::Deadline)
                } else {
                    None
                }
            })
        };
        let grouped = Query::source("big")
            .group_by(Expr::var("x") % Expr::liti(7), "x")
            .build();
        assert_eq!(
            execute_interruptible(&grouped, &big, &UdfRegistry::new(), fire_late()),
            Err(EvalError::Interrupted { deadline: true })
        );
        let counted = Query::source("big").count().build();
        assert_eq!(
            execute_interruptible(&counted, &big, &UdfRegistry::new(), fire_late()),
            Err(EvalError::Interrupted { deadline: true })
        );
    }

    #[test]
    fn foreign_panics_still_unwind_through() {
        // Data-dependent failures keep the module's documented panic
        // convention: only the poller's own signal is converted.
        let q = Query::source("ns")
            .select(Expr::var("x") / Expr::liti(0), "x")
            .sum()
            .build();
        let probe: StopProbe = Arc::new(|| None);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_interruptible(&q, &ctx(), &UdfRegistry::new(), probe)
        }));
        assert!(outcome.is_err(), "division by zero must still panic");
    }

    #[test]
    fn rows_iterate_as_floats() {
        let ctx = DataContext::new().with_source(
            "pts",
            steno_expr::Column::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2),
        );
        // pts.SelectMany(p => p).Sum(): flatten coordinates.
        let q = Query::source("pts")
            .select_many_expr(Expr::var("p"), "p")
            .sum()
            .build();
        assert_eq!(
            execute(&q, &ctx, &UdfRegistry::new()).unwrap(),
            Value::F64(10.0)
        );
    }
}
