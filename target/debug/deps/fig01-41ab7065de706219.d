/root/repo/target/debug/deps/fig01-41ab7065de706219.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-41ab7065de706219.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
