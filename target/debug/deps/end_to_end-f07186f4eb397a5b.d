/root/repo/target/debug/deps/end_to_end-f07186f4eb397a5b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f07186f4eb397a5b: tests/end_to_end.rs

tests/end_to_end.rs:
