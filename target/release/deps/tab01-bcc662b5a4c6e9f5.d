/root/repo/target/release/deps/tab01-bcc662b5a4c6e9f5.d: crates/bench/src/bin/tab01.rs

/root/repo/target/release/deps/tab01-bcc662b5a4c6e9f5: crates/bench/src/bin/tab01.rs

crates/bench/src/bin/tab01.rs:
