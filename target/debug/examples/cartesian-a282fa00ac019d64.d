/root/repo/target/debug/examples/cartesian-a282fa00ac019d64.d: examples/cartesian.rs

/root/repo/target/debug/examples/cartesian-a282fa00ac019d64: examples/cartesian.rs

examples/cartesian.rs:
