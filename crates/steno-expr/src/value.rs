//! Runtime values shared by the LINQ interpreter and the Steno VM.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::ty::Ty;

/// A dynamically-typed runtime value.
///
/// The baseline LINQ interpreter and the Steno bytecode VM exchange data in
/// this representation. Compound values use [`Arc`] so that cloning an
/// element while it flows through an iterator chain is cheap, mirroring
/// reference semantics in the CLR.
#[derive(Clone, Debug)]
pub enum Value {
    /// A 64-bit float.
    F64(f64),
    /// A 64-bit signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A data point: fixed-dimension vector of floats.
    Row(Arc<Vec<f64>>),
    /// A pair, e.g. `(key, value)`.
    Pair(Arc<(Value, Value)>),
    /// A sequence of values (nested query result, group contents, ...).
    Seq(Arc<Vec<Value>>),
}

impl Value {
    /// Builds a [`Value::Row`] from a vector of floats.
    pub fn row(values: Vec<f64>) -> Value {
        Value::Row(Arc::new(values))
    }

    /// Builds a [`Value::Pair`].
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Arc::new((a, b)))
    }

    /// Builds a [`Value::Seq`].
    pub fn seq(values: Vec<Value>) -> Value {
        Value::Seq(Arc::new(values))
    }

    /// The runtime type of this value.
    ///
    /// Compound element types are inferred from the first element; an empty
    /// sequence reports `seq<f64>` by convention.
    pub fn ty(&self) -> Ty {
        match self {
            Value::F64(_) => Ty::F64,
            Value::I64(_) => Ty::I64,
            Value::Bool(_) => Ty::Bool,
            Value::Row(_) => Ty::Row,
            Value::Pair(p) => Ty::pair(p.0.ty(), p.1.ty()),
            Value::Seq(s) => Ty::seq(s.first().map(Value::ty).unwrap_or(Ty::F64)),
        }
    }

    /// Extracts an `f64`, converting from `I64` if necessary.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Extracts an `i64` (no implicit conversion from `F64`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the row contents.
    pub fn as_row(&self) -> Option<&[f64]> {
        match self {
            Value::Row(r) => Some(r),
            _ => None,
        }
    }

    /// Borrows the pair contents.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// Borrows the sequence contents.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A total ordering usable as a sort key (`OrderBy`, `Min`, `Max`).
    ///
    /// Floats order with `f64::total_cmp`; values of different shapes order
    /// by discriminant so sorting heterogeneous data is deterministic.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::F64(_) => 0,
                Value::I64(_) => 1,
                Value::Bool(_) => 2,
                Value::Row(_) => 3,
                Value::Pair(_) => 4,
                Value::Seq(_) => 5,
            }
        }
        match (self, other) {
            (Value::F64(a), Value::F64(b)) => a.total_cmp(b),
            (Value::I64(a), Value::I64(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Row(a), Value::Row(b)) => {
                let mut it = a.iter().zip(b.iter());
                loop {
                    match it.next() {
                        Some((x, y)) => match x.total_cmp(y) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        },
                        None => return a.len().cmp(&b.len()),
                    }
                }
            }
            (Value::Pair(a), Value::Pair(b)) => a
                .0
                .cmp_total(&b.0)
                .then_with(|| a.1.cmp_total(&b.1)),
            (Value::Seq(a), Value::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cmp_total(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A hashable key image of this value, for use in grouping sinks.
    ///
    /// `F64` keys are hashed by bit pattern (as .NET's `Double.GetHashCode`
    /// does), so `-0.0` and `0.0` are distinct keys while `NaN` equals
    /// itself.
    pub fn key(&self) -> ValueKey {
        match self {
            Value::F64(x) => ValueKey::F64(x.to_bits()),
            Value::I64(x) => ValueKey::I64(*x),
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Row(r) => ValueKey::Row(r.iter().map(|x| x.to_bits()).collect()),
            Value::Pair(p) => ValueKey::Pair(Box::new((p.0.key(), p.1.key()))),
            Value::Seq(s) => ValueKey::Seq(s.iter().map(Value::key).collect()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::F64(a), Value::F64(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Row(a), Value::Row(b)) => a == b,
            (Value::Pair(a), Value::Pair(b)) => a.0 == b.0 && a.1 == b.1,
            (Value::Seq(a), Value::Seq(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F64(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Row(r) => {
                write!(f, "[")?;
                for (i, x) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Pair(p) => write!(f, "({}, {})", p.0, p.1),
            Value::Seq(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Value {
        Value::I64(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// A hashable, equality-comparable image of a [`Value`], used as a grouping
/// key in hash sinks (`GroupBy`, `Join`, `Distinct`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// Bit pattern of an `f64` key.
    F64(u64),
    /// Integer key.
    I64(i64),
    /// Boolean key.
    Bool(bool),
    /// Row key (bit patterns).
    Row(Vec<u64>),
    /// Pair key.
    Pair(Box<(ValueKey, ValueKey)>),
    /// Sequence key.
    Seq(Vec<ValueKey>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::F64(1.0).as_i64(), None);
    }

    #[test]
    fn equality_is_structural() {
        let a = Value::pair(Value::I64(1), Value::seq(vec![Value::F64(2.0)]));
        let b = Value::pair(Value::I64(1), Value::seq(vec![Value::F64(2.0)]));
        assert_eq!(a, b);
        let c = Value::pair(Value::I64(2), Value::seq(vec![Value::F64(2.0)]));
        assert_ne!(a, c);
    }

    #[test]
    fn total_order_on_floats() {
        let mut v = [Value::F64(2.0), Value::F64(f64::NAN), Value::F64(-1.0)];
        v.sort_by(Value::cmp_total);
        assert_eq!(v[0], Value::F64(-1.0));
        assert_eq!(v[1], Value::F64(2.0));
        assert!(matches!(v[2], Value::F64(x) if x.is_nan()));
    }

    #[test]
    fn rows_order_lexicographically() {
        let a = Value::row(vec![1.0, 2.0]);
        let b = Value::row(vec![1.0, 3.0]);
        let c = Value::row(vec![1.0]);
        assert_eq!(a.cmp_total(&b), Ordering::Less);
        assert_eq!(c.cmp_total(&a), Ordering::Less);
        assert_eq!(a.cmp_total(&a), Ordering::Equal);
    }

    #[test]
    fn keys_distinguish_nan_and_zero_signs() {
        assert_ne!(Value::F64(0.0).key(), Value::F64(-0.0).key());
        assert_eq!(Value::F64(f64::NAN).key(), Value::F64(f64::NAN).key());
    }

    #[test]
    fn display_round_trip_shapes() {
        let v = Value::pair(Value::I64(1), Value::row(vec![1.0, 2.0]));
        assert_eq!(v.to_string(), "(1, [1, 2])");
        assert_eq!(Value::seq(vec![]).to_string(), "{}");
    }

    #[test]
    fn runtime_types() {
        assert_eq!(Value::F64(0.0).ty(), Ty::F64);
        assert_eq!(
            Value::pair(Value::I64(0), Value::Bool(true)).ty(),
            Ty::pair(Ty::I64, Ty::Bool)
        );
        assert_eq!(Value::seq(vec![Value::I64(1)]).ty(), Ty::seq(Ty::I64));
    }
}
