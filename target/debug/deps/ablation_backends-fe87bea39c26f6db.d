/root/repo/target/debug/deps/ablation_backends-fe87bea39c26f6db.d: crates/bench/benches/ablation_backends.rs Cargo.toml

/root/repo/target/debug/deps/libablation_backends-fe87bea39c26f6db.rmeta: crates/bench/benches/ablation_backends.rs Cargo.toml

crates/bench/benches/ablation_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
