//! `fig_vectorized`: the batch-vectorization ablation (§9's MonetDB/X100
//! direction), and the producer of `BENCH_vm.json`.
//!
//! Each workload runs on four engines:
//!
//! * `linq` — the unoptimized boxed-iterator chains (§2's baseline),
//! * `vm_scalar` — the bytecode VM with fusion and vectorization off
//!   (per-instruction dispatch over unboxed registers),
//! * `vm_fused` — the scalar whole-loop fusion tier,
//! * `vm_vectorized` — the typed column-batch engine (the default), and
//! * `hand` — the hand-written Rust loop, as the floor.
//!
//! Results print as a table and are written to `BENCH_vm.json`
//! (workload, engine, elements, ns/elem, elements/sec). Scale the
//! element counts with `STENO_SCALE`; set `BENCH_VM_JSON` to redirect
//! the output path.
//!
//! `--smoke` runs a short deterministic mode for CI: fewer samples with
//! min-of-samples timing (the floor is far more stable than the median
//! on a shared runner), results written to a scratch path (the
//! checked-in `BENCH_vm.json` is the *baseline*, not the output), and a
//! regression gate that fails the process if any engine regresses more
//! than 25% against that baseline, both in absolute ns/elem and
//! normalized by each workload's `hand` row, with per-row
//! observed-noise ceilings as the final escape hatch (see
//! [`smoke_gate`] for why all three); a failing gate backs off and
//! re-measures before failing, so a single scheduler burst cannot
//! break the build. Element counts stay at full scale — shrinking them
//! makes the streaming workloads cache-resident, which speeds `hand`
//! up ~2x and skews the normalization against every CPU-bound engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bench::harness::{best_time, median_time, merge_bench_json, smoke_gate, BenchRecord};
use bench::workloads::{scaled, uniform_doubles};
use steno_expr::{DataContext, Expr, UdfRegistry, Value};
use steno_linq::Enumerable;
use steno_query::{Query, QueryExpr};
use steno_vm::query::StenoOptions;
use steno_vm::{CompiledQuery, EngineKind, VectorizationPolicy};

const SAMPLES: usize = 7;
const SMOKE_SAMPLES: usize = 5;
/// Allowed hand-normalized ratio vs the checked-in baseline before the
/// smoke gate fails.
const SMOKE_TOLERANCE: f64 = 1.25;

static SMOKE: AtomicBool = AtomicBool::new(false);

/// Times one engine row: median-of-samples normally, min-of-samples in
/// smoke mode (the floor is the reproducible statistic on a noisy CI
/// runner — the median still carries scheduler bursts).
fn bench_time<O>(routine: impl FnMut() -> O) -> Duration {
    if SMOKE.load(Ordering::Relaxed) {
        best_time(SMOKE_SAMPLES, routine)
    } else {
        median_time(SAMPLES, routine)
    }
}

fn opts(fusion: bool, vectorize: VectorizationPolicy) -> StenoOptions {
    StenoOptions {
        fusion,
        vectorize,
        ..StenoOptions::default()
    }
}

/// Compiles `q` three ways and checks the engines landed where expected.
fn compile_tiers(
    q: &QueryExpr,
    ctx: &DataContext,
    udfs: &UdfRegistry,
) -> (CompiledQuery, CompiledQuery, CompiledQuery) {
    let scalar = CompiledQuery::compile_tuned(
        q,
        ctx.into(),
        udfs,
        opts(false, VectorizationPolicy::Off),
    )
    .expect("compile scalar");
    let fused =
        CompiledQuery::compile_tuned(q, ctx.into(), udfs, opts(true, VectorizationPolicy::Off))
            .expect("compile fused");
    let vectorized =
        CompiledQuery::compile_tuned(q, ctx.into(), udfs, opts(true, VectorizationPolicy::Auto))
            .expect("compile vectorized");
    assert_eq!(scalar.engine(), EngineKind::Scalar);
    assert_eq!(fused.engine(), EngineKind::Scalar);
    assert_eq!(
        vectorized.engine(),
        EngineKind::Vectorized,
        "workload must vectorize; fallbacks: {:?}",
        vectorized.batch_fallbacks()
    );
    (scalar, fused, vectorized)
}

struct Row {
    engine: &'static str,
    median: Duration,
}

fn report(workload: &str, n: usize, rows: Vec<Row>, records: &mut Vec<BenchRecord>) {
    println!("\n== {workload} ({n} elements) ==");
    let scalar_ns = rows
        .iter()
        .find(|r| r.engine == "vm_scalar")
        .map(|r| r.median.as_nanos() as f64)
        .unwrap_or(f64::NAN);
    for row in rows {
        let rec = BenchRecord::from_wall(workload, row.engine, n, row.median);
        let vs = scalar_ns / (row.median.as_nanos() as f64).max(1.0);
        println!(
            "{:>14}  {:>12?}  {:>8.3} ns/elem  {:>12.0} elem/s  ({:>5.2}x vs vm_scalar)",
            row.engine, row.median, rec.ns_per_elem, rec.elements_per_sec, vs
        );
        records.push(rec);
    }
}

/// Sum of squares of 10^6 doubles — the acceptance workload.
fn sum_of_squares(records: &mut Vec<BenchRecord>) {
    let n = scaled(1_000_000);
    let data = uniform_doubles(n, 42);
    let ctx = DataContext::new().with_source("xs", data.clone());
    let udfs = UdfRegistry::new();
    let q = Query::source("xs")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let (scalar, fused, vectorized) = compile_tiers(&q, &ctx, &udfs);

    // All engines agree before any of them is timed.
    let expect = {
        let mut s = 0.0;
        for &x in &data {
            s += x * x;
        }
        s
    };
    for c in [&scalar, &fused, &vectorized] {
        assert_eq!(c.run(&ctx, &udfs).expect("run"), Value::F64(expect));
    }

    let xs = Enumerable::from_vec(data.clone());
    let rows = vec![
        Row {
            engine: "linq",
            median: bench_time(|| xs.select(|x| x * x).sum()),
        },
        Row {
            engine: "vm_scalar",
            median: bench_time(|| scalar.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_fused",
            median: bench_time(|| fused.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_vectorized",
            median: bench_time(|| vectorized.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "hand",
            median: bench_time(|| {
                let mut s = 0.0;
                for &x in &data {
                    s += x * x;
                }
                s
            }),
        },
    ];
    report("sum_of_squares", n, rows, records);
}

/// Filtered sum: `xs.Where(x > 0.5).Select(x * 2).Sum()` — exercises the
/// selection-vector path.
fn filtered_sum(records: &mut Vec<BenchRecord>) {
    let n = scaled(1_000_000);
    let data = uniform_doubles(n, 7);
    let ctx = DataContext::new().with_source("xs", data.clone());
    let udfs = UdfRegistry::new();
    let q = Query::source("xs")
        .where_(Expr::var("x").gt(Expr::litf(0.5)), "x")
        .select(Expr::var("x") * Expr::litf(2.0), "x")
        .sum()
        .build();
    let (scalar, fused, vectorized) = compile_tiers(&q, &ctx, &udfs);

    let expect = {
        let mut s = 0.0;
        for &x in &data {
            if x > 0.5 {
                s += x * 2.0;
            }
        }
        s
    };
    for c in [&scalar, &fused, &vectorized] {
        assert_eq!(c.run(&ctx, &udfs).expect("run"), Value::F64(expect));
    }

    let xs = Enumerable::from_vec(data.clone());
    let rows = vec![
        Row {
            engine: "linq",
            median: bench_time(|| {
                xs.where_(|x| x > 0.5).select(|x| x * 2.0).sum()
            }),
        },
        Row {
            engine: "vm_scalar",
            median: bench_time(|| scalar.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_fused",
            median: bench_time(|| fused.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_vectorized",
            median: bench_time(|| vectorized.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "hand",
            median: bench_time(|| {
                let mut s = 0.0;
                for &x in &data {
                    if x > 0.5 {
                        s += x * 2.0;
                    }
                }
                s
            }),
        },
    ];
    report("filtered_sum", n, rows, records);
}

/// Integer pipeline: sum of squares of the multiples of 3 — the i64
/// lanes plus a filter.
fn int_even_squares(records: &mut Vec<BenchRecord>) {
    let n = scaled(1_000_000);
    let data: Vec<i64> = (0..n as i64).collect();
    let ctx = DataContext::new().with_source("ns", data.clone());
    let udfs = UdfRegistry::new();
    let q = Query::source("ns")
        .where_((Expr::var("x") % Expr::liti(3)).eq(Expr::liti(0)), "x")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let (scalar, fused, vectorized) = compile_tiers(&q, &ctx, &udfs);

    let expect = {
        let mut s = 0i64;
        for &x in &data {
            if x % 3 == 0 {
                s = s.wrapping_add(x.wrapping_mul(x));
            }
        }
        s
    };
    for c in [&scalar, &fused, &vectorized] {
        assert_eq!(c.run(&ctx, &udfs).expect("run"), Value::I64(expect));
    }

    let rows = vec![
        Row {
            engine: "vm_scalar",
            median: bench_time(|| scalar.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_fused",
            median: bench_time(|| fused.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_vectorized",
            median: bench_time(|| vectorized.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "hand",
            median: bench_time(|| {
                let mut s = 0i64;
                for &x in &data {
                    if x % 3 == 0 {
                        s = s.wrapping_add(x.wrapping_mul(x));
                    }
                }
                s
            }),
        },
    ];
    report("int_mult3_sumsq", n, rows, records);
}

/// Guarded division under a conditional: the Collatz step
/// `if x % 2 == 0 { x / 2 } else { 3x + 1 }`. Before range analysis the
/// vectorizer refused this loop outright ("trapping op under a
/// conditional branch"), so its batch-tier time *was* the vm_scalar
/// row; the interval proof that both divisors exclude zero drops the
/// per-lane guards and admits it to the batch tier.
fn guarded_div_collatz(records: &mut Vec<BenchRecord>) {
    let n = scaled(1_000_000);
    let data: Vec<i64> = (1..=n as i64).collect();
    let ctx = DataContext::new().with_source("ns", data.clone());
    let udfs = UdfRegistry::new();
    let x = || Expr::var("x");
    let q = Query::source("ns")
        .select(
            Expr::if_(
                (x() % Expr::liti(2)).eq(Expr::liti(0)),
                x() / Expr::liti(2),
                Expr::liti(3) * x() + Expr::liti(1),
            ),
            "x",
        )
        .sum_by(Expr::var("y"), "y")
        .build();
    let (scalar, fused, vectorized) = compile_tiers(&q, &ctx, &udfs);
    assert!(
        vectorized.guards_dropped() >= 2,
        "range analysis must drop both the % 2 and / 2 guards: {}",
        vectorized.guards_dropped()
    );

    let expect = {
        let mut s = 0i64;
        for &x in &data {
            s = s.wrapping_add(if x % 2 == 0 {
                x / 2
            } else {
                3i64.wrapping_mul(x).wrapping_add(1)
            });
        }
        s
    };
    for c in [&scalar, &fused, &vectorized] {
        assert_eq!(c.run(&ctx, &udfs).expect("run"), Value::I64(expect));
    }

    let rows = vec![
        Row {
            engine: "vm_scalar",
            median: bench_time(|| scalar.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_fused",
            median: bench_time(|| fused.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "vm_vectorized",
            median: bench_time(|| vectorized.run(&ctx, &udfs).expect("run")),
        },
        Row {
            engine: "hand",
            median: bench_time(|| {
                let mut s = 0i64;
                for &x in &data {
                    s = s.wrapping_add(if x % 2 == 0 {
                        x / 2
                    } else {
                        3i64.wrapping_mul(x).wrapping_add(1)
                    });
                }
                s
            }),
        },
    ];
    report("guarded_div_collatz", n, rows, records);
}

/// One observed run of the acceptance workload through the facade with
/// a live collector: prints the per-query profile and the metrics
/// snapshot, and proves the snapshot JSON parses back.
fn profiled_acceptance_run() {
    use std::sync::Arc;

    let n = scaled(1_000_000);
    let data = uniform_doubles(n, 42);
    let ctx = DataContext::new().with_source("xs", data);
    let udfs = UdfRegistry::new();
    let metrics = Arc::new(steno_obs::MemoryCollector::new());
    let engine = steno::Steno::new().with_collector(metrics.clone());
    let q = Query::source("xs")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let (_, _, profile) = engine
        .execute_profiled(&q, &ctx, &udfs)
        .expect("profiled run");
    println!("\n== profiled sum_of_squares ==");
    println!("{profile}");
    let snapshot = metrics.snapshot();
    println!("{snapshot}");
    let json = snapshot.to_json();
    steno_obs::json::parse(&json).expect("snapshot JSON must parse back");
    let path =
        std::env::var("METRICS_VM_JSON").unwrap_or_else(|_| "METRICS_vm.json".to_string());
    std::fs::write(&path, &json).expect("write METRICS_vm.json");
    println!("wrote metrics snapshot to {path}");
}

/// Runs all four workloads and returns their records.
fn measure() -> Vec<BenchRecord> {
    let mut records = Vec::new();
    sum_of_squares(&mut records);
    filtered_sum(&mut records);
    int_even_squares(&mut records);
    guarded_div_collatz(&mut records);
    records
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        SMOKE.store(true, Ordering::Relaxed);
        // Short deterministic mode: min-of-samples timing over fewer
        // samples, and scratch output paths so the checked-in artifacts
        // stay the baseline. Element counts stay at full scale so the
        // hand-normalization compares like with like (see the module
        // docs). Explicit env settings still win.
        if std::env::var("BENCH_VM_JSON").is_err() {
            std::env::set_var("BENCH_VM_JSON", "target/BENCH_vm_smoke.json");
        }
        if std::env::var("METRICS_VM_JSON").is_err() {
            std::env::set_var("METRICS_VM_JSON", "target/METRICS_vm_smoke.json");
        }
    }
    println!("Vectorized-vs-scalar VM ablation (BENCH_vm.json producer)");
    let records = measure();
    profiled_acceptance_run();

    let path = std::env::var("BENCH_VM_JSON").unwrap_or_else(|_| "BENCH_vm.json".to_string());
    merge_bench_json(&path, &records).expect("write BENCH_vm.json");
    println!("\nmerged {} records into {path}", records.len());
    let reread = std::fs::read_to_string(&path).expect("reread BENCH_vm.json");
    assert!(
        bench::harness::parse_bench_json(&reread)
            .expect("BENCH_vm.json must parse back")
            .len()
            >= records.len()
    );

    // The acceptance bar: vectorized ≥2× the scalar VM on sum-of-squares.
    let ns = |engine: &str| {
        records
            .iter()
            .find(|r| r.workload == "sum_of_squares" && r.engine == engine)
            .map(|r| r.ns_per_elem)
            .expect("record")
    };
    let speedup = ns("vm_scalar") / ns("vm_vectorized");
    println!("sum_of_squares: vectorized is {speedup:.2}x the scalar VM");

    if smoke {
        // Contention on a shared runner comes in multi-minute phases, so
        // a failing gate backs off and re-measures (up to twice), gating
        // on the per-row floor across all attempts. A floor only ever
        // improves with more attempts, so retries can rescue a noisy
        // run but never mask a real regression.
        let mut merged = records;
        for attempt in 0.. {
            match smoke_gate(&merged, SMOKE_TOLERANCE) {
                Ok(()) => break,
                Err(failures) if attempt < 2 => {
                    eprintln!(
                        "smoke gate: {} row(s) over tolerance; backing off and re-measuring \
                         (attempt {}/3)",
                        failures.len(),
                        attempt + 2
                    );
                    std::thread::sleep(Duration::from_secs(60));
                    let retry = measure();
                    for r in &mut merged {
                        if let Some(t) = retry
                            .iter()
                            .find(|t| t.workload == r.workload && t.engine == r.engine)
                        {
                            if t.ns_per_elem < r.ns_per_elem {
                                *r = t.clone();
                            }
                        }
                    }
                }
                Err(failures) => {
                    for f in &failures {
                        eprintln!("smoke gate: {f}");
                    }
                    std::process::exit(1);
                }
            }
        }
    }
}
