/root/repo/target/debug/examples/distributed_kmeans-01287a1ea0386da2.d: examples/distributed_kmeans.rs

/root/repo/target/debug/examples/distributed_kmeans-01287a1ea0386da2: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
