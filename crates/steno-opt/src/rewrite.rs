//! Verified algebraic rewrites over QUIL chains.
//!
//! Five rules, applied in a fixed order, each justified by the
//! `steno-analysis` effect/totality facts and re-checked by the
//! independent plan verifier after *every* application:
//!
//! 1. **merge-limits** — `Take(a)·Take(b) → Take(min(a,b))`,
//!    `Skip(a)·Skip(b) → Skip(a+b)` (always sound; Take/Skip never
//!    commute with each other).
//! 2. **hoist-limit** — `Trans(f)·Take(n) → Take(n)·Trans(f)` (same for
//!    `Skip`) when `f` is a pure, total 1:1 map: it preserves element
//!    counts, and hoisting the limit means `f` runs on `n` elements
//!    instead of all of them. Requires totality because the hoisted form
//!    no longer evaluates `f` on dropped elements.
//! 3. **fuse-maps** — `Trans(f)·Trans(g) → Trans(g∘f)`, guarded against
//!    work duplication exactly like the generic element-wise fuser (the
//!    second body uses its parameter at most once, or the first is
//!    trivial), but logged per pair.
//! 4. **reorder-filters** — adjacent pure, total `Pred(p)·Pred(q)` swap
//!    when cost × *observed* selectivity says `q` should run first: each
//!    predicate is ranked by `cost / (1 − selectivity)` (static
//!    expression cost over measured rejection rate — the classic rule
//!    that minimizes expected filter work for independent predicates),
//!    and a cheaper-per-rejection filter bubbles ahead, with a relative
//!    margin so noise cannot flap the order. The win is on the scalar
//!    tier, where conjoined predicates short-circuit; the batch tier
//!    evaluates predicate columns densely and is order-insensitive.
//! 5. **pushdown-filter** — `Trans(f)·Pred(p) → Pred(p∘f)·Trans(f)` when
//!    `f` and `p` are pure and total and observed selectivity says the
//!    filter keeps at most half the elements. Purity is what justifies
//!    reordering around UDF calls: an *impure* UDF in either body blocks
//!    the rewrite, because pushing the filter changes how often the map
//!    runs. Survivors re-run `f`, so the rule also guards against
//!    duplicating non-trivial work into a predicate that uses its
//!    parameter more than once.
//!
//! Adjacent-filter *fusion* is deliberately left to the existing
//! element-wise fuser that runs right after this pass (sequential guards
//! and a short-circuit `&&` are equivalent); this pass's job is to put
//! the filters in the cheapest order first, which the fuser then
//! preserves inside the conjunction.
//!
//! Rules 4 and 5 only fire with measured selectivities (from
//! [`observe_selectivities`] or the profile-driven re-optimization
//! path); a fresh compile with no feedback applies only the statically
//! profitable rules 1–3.

use std::collections::HashMap;
use std::fmt;

use steno_analysis::{analyze, verify};
use steno_expr::eval::{eval, Env};
use steno_expr::subst::subst;
use steno_expr::typecheck::TyEnv;
use steno_expr::{DataContext, Expr, Ty, UdfRegistry};
use steno_quil::ir::{PredKind, QuilChain, QuilOp, SrcDesc, TransKind};

/// One rewrite decision: which rule fired where, and whether the
/// rewritten plan survived re-verification (`applied: false` means the
/// verifier rejected it and the rewrite was dropped).
#[derive(Clone, Debug, PartialEq)]
pub struct RewriteEvent {
    /// Stable rule name (`"merge-limits"`, `"hoist-limit"`,
    /// `"fuse-maps"`, `"reorder-filters"`, `"pushdown-filter"`).
    pub rule: &'static str,
    /// Human-readable description of the specific application.
    pub detail: String,
    /// `false` when the plan verifier rejected the rewritten chain and
    /// the rewrite was reverted.
    pub applied: bool,
}

impl fmt::Display for RewriteEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.applied {
            write!(f, "{}: {}", self.rule, self.detail)
        } else {
            write!(f, "{}: {} [dropped: failed verification]", self.rule, self.detail)
        }
    }
}

/// The rewritten chain plus the full decision log.
#[derive(Clone, Debug)]
pub struct RewriteOutcome {
    /// The (possibly) rewritten chain.
    pub chain: QuilChain,
    /// Every rewrite attempted, in application order.
    pub log: Vec<RewriteEvent>,
}

/// Relative rank margin for filter reordering: a swap only fires when
/// the later filter's rank is below this fraction of the earlier one's —
/// hysteresis so measurement noise cannot flip filter order back and
/// forth across recompiles.
const RANK_MARGIN: f64 = 0.9;

/// Cost weight of one UDF call relative to a primitive expression node:
/// a registered function call (dynamic dispatch, boxed arguments) is far
/// heavier than an inline arithmetic op.
const CALL_COST: usize = 8;

/// Pushdown only fires when the filter is observed to keep at most this
/// fraction of elements (otherwise the duplicated map work cannot pay).
const PUSHDOWN_MAX_SELECTIVITY: f64 = 0.5;

/// Applies the algebraic rewrite rules to `chain`.
///
/// `selectivity` maps a predicate's lowered operator index
/// ([`steno_quil::ir::OpSpan::op_index`]) to its observed pass fraction
/// in `[0, 1]`; `None` (or a missing entry) disables the
/// feedback-directed rules for that predicate. Every applied rewrite has
/// been re-checked by [`steno_analysis::verify`]; rewrites the verifier
/// rejects are reverted and logged with `applied: false`.
pub fn rewrite(
    chain: &QuilChain,
    udfs: &UdfRegistry,
    selectivity: Option<&HashMap<u32, f64>>,
) -> RewriteOutcome {
    let mut cur = chain.clone();
    let mut log = Vec::new();

    merge_limits(&mut cur, udfs, &mut log);
    hoist_limits(&mut cur, udfs, &mut log);
    fuse_maps(&mut cur, udfs, &mut log);
    if let Some(sel) = selectivity {
        reorder_filters(&mut cur, udfs, sel, &mut log);
        pushdown_filters(&mut cur, udfs, sel, &mut log);
    }

    RewriteOutcome { chain: cur, log }
}

/// Applies `candidate` if the independent plan verifier accepts it,
/// logging the decision either way. Returns whether it was applied.
fn apply_verified(
    cur: &mut QuilChain,
    candidate: QuilChain,
    udfs: &UdfRegistry,
    rule: &'static str,
    detail: String,
    log: &mut Vec<RewriteEvent>,
) -> bool {
    let ok = verify(&candidate, udfs).is_ok();
    if ok {
        *cur = candidate;
    }
    log.push(RewriteEvent {
        rule,
        detail,
        applied: ok,
    });
    ok
}

// ---------------------------------------------------------------------
// Purity / totality facts.
// ---------------------------------------------------------------------

/// `true` when evaluating `body` (with `param: elem_ty` in scope) is
/// *safe to reorder, duplicate, or skip*: deterministic, effect-free,
/// and total (provably cannot trap).
///
/// The abstract interpreter marks any expression containing a UDF call
/// impure ("the analysis cannot see into it"); we refine that with the
/// registry's caller-supplied purity contract — an expression whose only
/// opacity is calls to functions registered via
/// [`UdfRegistry::register_pure`] counts as pure. Trap facts stay with
/// the analyzer: a division whose divisor flows from a call result is
/// unproven and blocks the rewrite.
fn safe_to_reorder(body: &Expr, param: &str, elem_ty: &Ty, udfs: &UdfRegistry) -> bool {
    let env = TyEnv::new().with(param, elem_ty.clone());
    let facts = analyze(body, &env);
    if facts.may_trap() {
        return false;
    }
    if facts.pure {
        return true;
    }
    // Impurity can only come from calls; accept iff every callee is
    // registered pure.
    let mut all_pure = true;
    body.visit(&mut |e| {
        if let Expr::Call(name, _) = e {
            all_pure &= udfs.is_pure(name);
        }
    });
    all_pure
}

/// Static per-evaluation cost of an expression: node count with UDF
/// calls weighted [`CALL_COST`]× — the per-predicate cost estimate that
/// lets reordering weigh cost × selectivity rather than selectivity
/// alone.
fn expr_cost(e: &Expr) -> f64 {
    let mut n = 0usize;
    e.visit(&mut |node| {
        n += if matches!(node, Expr::Call(..)) {
            CALL_COST
        } else {
            1
        };
    });
    n as f64
}

/// Ordering rank for an independent predicate: expected evaluation cost
/// per rejected element, `cost / (1 − selectivity)`. Running filters in
/// ascending rank minimizes total expected filter work; a filter that
/// rejects nothing (selectivity → 1) ranks unboundedly late.
fn filter_rank(cost: f64, sel: f64) -> f64 {
    cost / (1.0 - sel).max(1e-6)
}

/// Counts free occurrences of `name` in `e`.
fn occurrences(e: &Expr, name: &str) -> usize {
    let mut n = 0;
    e.visit(&mut |node| {
        if matches!(node, Expr::Var(v) if v == name) {
            n += 1;
        }
    });
    n
}

/// `true` for expressions cheap enough to duplicate (mirrors the
/// element-wise fuser's guard).
fn is_trivial(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_)
    ) || matches!(e, Expr::Field(inner, _) if matches!(**inner, Expr::Var(_)))
}

/// A short display of a predicate/operator position for the log.
fn at(op: &QuilOp) -> String {
    match op.span().op_index {
        Some(i) => format!("op#{i}"),
        None => "op#?".to_string(),
    }
}

// ---------------------------------------------------------------------
// Rule 1: merge adjacent Take/Take and Skip/Skip.
// ---------------------------------------------------------------------

fn merge_limits(cur: &mut QuilChain, udfs: &UdfRegistry, log: &mut Vec<RewriteEvent>) {
    let mut i = 0;
    while i + 1 < cur.ops.len() {
        let merged = match (&cur.ops[i], &cur.ops[i + 1]) {
            (
                QuilOp::Pred {
                    param,
                    kind: PredKind::Take(a),
                    elem_ty,
                    span,
                },
                QuilOp::Pred {
                    kind: PredKind::Take(b),
                    ..
                },
            ) => Some((
                QuilOp::Pred {
                    param: param.clone(),
                    kind: PredKind::Take((*a).min(*b)),
                    elem_ty: elem_ty.clone(),
                    span: *span,
                },
                format!("Take({a})·Take({b}) → Take({})", (*a).min(*b)),
            )),
            (
                QuilOp::Pred {
                    param,
                    kind: PredKind::Skip(a),
                    elem_ty,
                    span,
                },
                QuilOp::Pred {
                    kind: PredKind::Skip(b),
                    ..
                },
            ) => Some((
                QuilOp::Pred {
                    param: param.clone(),
                    kind: PredKind::Skip(a.saturating_add(*b)),
                    elem_ty: elem_ty.clone(),
                    span: *span,
                },
                format!("Skip({a})·Skip({b}) → Skip({})", a.saturating_add(*b)),
            )),
            _ => None,
        };
        match merged {
            Some((op, detail)) => {
                let mut candidate = cur.clone();
                candidate.ops.splice(i..=i + 1, [op]);
                if !apply_verified(cur, candidate, udfs, "merge-limits", detail, log) {
                    i += 1;
                }
            }
            None => i += 1,
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: hoist Take/Skip before pure total maps.
// ---------------------------------------------------------------------

fn hoist_limits(cur: &mut QuilChain, udfs: &UdfRegistry, log: &mut Vec<RewriteEvent>) {
    // Bubble each limit leftward to a fixpoint (bounded by ops²).
    let mut moved = true;
    while moved {
        moved = false;
        let mut i = 0;
        while i + 1 < cur.ops.len() {
            let hoist = match (&cur.ops[i], &cur.ops[i + 1]) {
                (
                    QuilOp::Trans {
                        param,
                        kind: TransKind::Expr(f),
                        in_ty,
                        ..
                    },
                    QuilOp::Pred {
                        param: lim_param,
                        kind: kind @ (PredKind::Take(_) | PredKind::Skip(_)),
                        span: lim_span,
                        ..
                    },
                ) if safe_to_reorder(f, param, in_ty, udfs) => Some((
                    QuilOp::Pred {
                        param: lim_param.clone(),
                        kind: kind.clone(),
                        elem_ty: in_ty.clone(),
                        span: *lim_span,
                    },
                    format!(
                        "{} moved before map {} (1:1, pure, total)",
                        match kind {
                            PredKind::Take(n) => format!("Take({n})"),
                            PredKind::Skip(n) => format!("Skip({n})"),
                            _ => String::new(),
                        },
                        at(&cur.ops[i])
                    ),
                )),
                _ => None,
            };
            match hoist {
                Some((limit, detail)) => {
                    let mut candidate = cur.clone();
                    let trans = candidate.ops.remove(i);
                    candidate.ops[i] = limit;
                    candidate.ops.insert(i + 1, trans);
                    if apply_verified(cur, candidate, udfs, "hoist-limit", detail, log) {
                        moved = true;
                    }
                    i += 1;
                }
                None => i += 1,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: map·map fusion.
// ---------------------------------------------------------------------

fn fuse_maps(cur: &mut QuilChain, udfs: &UdfRegistry, log: &mut Vec<RewriteEvent>) {
    let mut i = 0;
    while i + 1 < cur.ops.len() {
        let fused = match (&cur.ops[i], &cur.ops[i + 1]) {
            (
                QuilOp::Trans {
                    param: p1,
                    kind: TransKind::Expr(e1),
                    in_ty,
                    span,
                    ..
                },
                QuilOp::Trans {
                    param: p2,
                    kind: TransKind::Expr(e2),
                    out_ty,
                    ..
                },
            ) if occurrences(e2, p2) <= 1 || is_trivial(e1) => Some((
                QuilOp::Trans {
                    param: p1.clone(),
                    kind: TransKind::Expr(subst(e2, p2, e1)),
                    in_ty: in_ty.clone(),
                    out_ty: out_ty.clone(),
                    span: *span,
                },
                format!("map {}·map {} → one map", at(&cur.ops[i]), at(&cur.ops[i + 1])),
            )),
            _ => None,
        };
        match fused {
            Some((op, detail)) => {
                let mut candidate = cur.clone();
                candidate.ops.splice(i..=i + 1, [op]);
                if !apply_verified(cur, candidate, udfs, "fuse-maps", detail, log) {
                    i += 1;
                }
            }
            None => i += 1,
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: cost × selectivity filter reordering.
// ---------------------------------------------------------------------

fn reorder_filters(
    cur: &mut QuilChain,
    udfs: &UdfRegistry,
    sel: &HashMap<u32, f64>,
    log: &mut Vec<RewriteEvent>,
) {
    // Bubble-sort adjacent filter pairs by rank = cost / (1 − observed
    // selectivity); at most ops² passes, each swap individually verified.
    let mut swapped = true;
    while swapped {
        swapped = false;
        let mut i = 0;
        while i + 1 < cur.ops.len() {
            let swap = match (&cur.ops[i], &cur.ops[i + 1]) {
                (
                    a @ QuilOp::Pred {
                        param: pa,
                        kind: PredKind::Expr(ea),
                        elem_ty,
                        ..
                    },
                    b @ QuilOp::Pred {
                        param: pb,
                        kind: PredKind::Expr(eb),
                        ..
                    },
                ) => {
                    let (sa, sb) = match (
                        a.span().op_index.and_then(|k| sel.get(&k)),
                        b.span().op_index.and_then(|k| sel.get(&k)),
                    ) {
                        (Some(sa), Some(sb)) => (*sa, *sb),
                        _ => {
                            i += 1;
                            continue;
                        }
                    };
                    let (ca, cb) = (expr_cost(ea), expr_cost(eb));
                    let (ra, rb) = (filter_rank(ca, sa), filter_rank(cb, sb));
                    if rb < ra * RANK_MARGIN
                        && safe_to_reorder(ea, pa, elem_ty, udfs)
                        && safe_to_reorder(eb, pb, elem_ty, udfs)
                    {
                        Some(format!(
                            "filter {} (cost {cb:.0} × sel≈{sb:.2}, rank {rb:.1}) before \
                             filter {} (cost {ca:.0} × sel≈{sa:.2}, rank {ra:.1})",
                            at(b),
                            at(a),
                        ))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match swap {
                Some(detail) => {
                    let mut candidate = cur.clone();
                    candidate.ops.swap(i, i + 1);
                    if apply_verified(cur, candidate, udfs, "reorder-filters", detail, log) {
                        swapped = true;
                    }
                    i += 1;
                }
                None => i += 1,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: predicate pushdown past pure maps.
// ---------------------------------------------------------------------

fn pushdown_filters(
    cur: &mut QuilChain,
    udfs: &UdfRegistry,
    sel: &HashMap<u32, f64>,
    log: &mut Vec<RewriteEvent>,
) {
    let mut moved = true;
    while moved {
        moved = false;
        let mut i = 0;
        while i + 1 < cur.ops.len() {
            let push = match (&cur.ops[i], &cur.ops[i + 1]) {
                (
                    QuilOp::Trans {
                        param: fp,
                        kind: TransKind::Expr(f),
                        in_ty,
                        out_ty,
                        ..
                    },
                    pred @ QuilOp::Pred {
                        param: pp,
                        kind: PredKind::Expr(p),
                        span: pred_span,
                        ..
                    },
                ) => {
                    let observed = pred.span().op_index.and_then(|k| sel.get(&k)).copied();
                    let selective = observed.is_some_and(|s| s <= PUSHDOWN_MAX_SELECTIVITY);
                    // Substitution safety: the predicate must use its
                    // parameter at most once (or the map be trivial) so
                    // the map body is not duplicated inside the
                    // predicate, and it must not capture the map's own
                    // parameter name.
                    let no_capture = pp == fp || occurrences(p, fp) == 0;
                    if selective
                        && no_capture
                        && (occurrences(p, pp) <= 1 || is_trivial(f))
                        && safe_to_reorder(f, fp, in_ty, udfs)
                        && safe_to_reorder(p, pp, out_ty, udfs)
                    {
                        Some((
                            QuilOp::Pred {
                                param: fp.clone(),
                                kind: PredKind::Expr(subst(p, pp, f)),
                                elem_ty: in_ty.clone(),
                                span: *pred_span,
                            },
                            format!(
                                "filter {} (sel≈{:.2}) pushed before map {}",
                                at(pred),
                                observed.unwrap_or(f64::NAN),
                                at(&cur.ops[i]),
                            ),
                        ))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match push {
                Some((pushed, detail)) => {
                    let mut candidate = cur.clone();
                    let trans = candidate.ops.remove(i);
                    candidate.ops[i] = pushed;
                    candidate.ops.insert(i + 1, trans);
                    if apply_verified(cur, candidate, udfs, "pushdown-filter", detail, log) {
                        moved = true;
                    }
                    i += 1;
                }
                None => i += 1,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Selectivity observation.
// ---------------------------------------------------------------------

/// Measures per-predicate selectivity by evaluating the chain's leading
/// element-wise prefix over (at most `cap` elements of) the actual
/// source data.
///
/// Returns `op_index → pass fraction` for each `Pred(expr)` in the
/// prefix, *conditioned on the predicates before it* — exactly the
/// quantity the scalar tier's short-circuit evaluation cares about.
/// Sampling walks `Trans(expr)` ops through the reference evaluator and
/// stops at the first operator it cannot model (nested chains, sinks,
/// Take/Skip, or any evaluation error): predicates beyond that point
/// simply get no entry, which disables the feedback rules for them.
pub fn observe_selectivities(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    cap: usize,
) -> HashMap<u32, f64> {
    let mut counts: HashMap<u32, (u64, u64)> = HashMap::new();
    let SrcDesc::Collection { name, .. } = &chain.src else {
        return HashMap::new();
    };
    let Some(col) = ctx.source(name) else {
        return HashMap::new();
    };

    // The evaluable prefix: Trans(expr) and Pred(expr) only.
    let mut prefix = 0;
    for op in &chain.ops {
        match op {
            QuilOp::Trans {
                kind: TransKind::Expr(_),
                ..
            }
            | QuilOp::Pred {
                kind: PredKind::Expr(_),
                ..
            } => prefix += 1,
            _ => break,
        }
    }

    let n = col.len().min(cap);
    'elems: for idx in 0..n {
        let mut val = col.value_at(idx);
        for op in &chain.ops[..prefix] {
            match op {
                QuilOp::Trans {
                    param,
                    kind: TransKind::Expr(e),
                    ..
                } => {
                    let env = Env::new().with(param.clone(), val);
                    match eval(e, &env, udfs) {
                        Ok(v) => val = v,
                        Err(_) => break 'elems,
                    }
                }
                QuilOp::Pred {
                    param,
                    kind: PredKind::Expr(e),
                    span,
                    ..
                } => {
                    let env = Env::new().with(param.clone(), val.clone());
                    let pass = match eval(e, &env, udfs) {
                        Ok(v) => v.as_bool().unwrap_or(false),
                        Err(_) => break 'elems,
                    };
                    if let Some(k) = span.op_index {
                        let entry = counts.entry(k).or_insert((0, 0));
                        entry.1 += 1;
                        if pass {
                            entry.0 += 1;
                        }
                    }
                    if !pass {
                        continue 'elems;
                    }
                }
                _ => break 'elems,
            }
        }
    }

    counts
        .into_iter()
        .filter(|(_, (_, total))| *total > 0)
        .map(|(k, (passed, total))| (k, passed as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::typecheck::TyEnv;
    use steno_expr::Value;
    use steno_query::typing::SourceTypes;
    use steno_query::Query;
    use steno_quil::lower::{lower_with, LowerOptions};

    fn f64_srcs() -> SourceTypes {
        SourceTypes::new().with("xs", Ty::F64)
    }

    fn lower_q(q: &steno_query::QueryExpr, udfs: &UdfRegistry) -> QuilChain {
        lower_with(q, &f64_srcs(), &TyEnv::new(), udfs, LowerOptions::default()).unwrap()
    }

    #[test]
    fn adjacent_takes_merge() {
        let q = Query::source("xs").take(10).take(3).sum().build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let out = rewrite(&chain, &UdfRegistry::new(), None);
        assert_eq!(out.log.len(), 1);
        assert_eq!(out.log[0].rule, "merge-limits");
        assert!(out.log[0].applied);
        assert_eq!(out.chain.ops.len(), 1);
        assert!(matches!(
            &out.chain.ops[0],
            QuilOp::Pred {
                kind: PredKind::Take(3),
                ..
            }
        ));
    }

    #[test]
    fn take_hoists_before_pure_map() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::litf(2.0), "x")
            .take(5)
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let out = rewrite(&chain, &UdfRegistry::new(), None);
        assert!(out.log.iter().any(|e| e.rule == "hoist-limit" && e.applied));
        assert!(matches!(
            &out.chain.ops[0],
            QuilOp::Pred {
                kind: PredKind::Take(5),
                ..
            }
        ));
        assert!(matches!(&out.chain.ops[1], QuilOp::Trans { .. }));
    }

    #[test]
    fn take_does_not_hoist_past_impure_map() {
        let mut udfs = UdfRegistry::new();
        udfs.register("noise", vec![Ty::F64], Ty::F64, |args| args[0].clone());
        let q = Query::source("xs")
            .select(Expr::call("noise", vec![Expr::var("x")]), "x")
            .take(5)
            .sum()
            .build();
        let chain = lower_q(&q, &udfs);
        let out = rewrite(&chain, &udfs, None);
        assert!(!out.log.iter().any(|e| e.rule == "hoist-limit"));
        assert!(matches!(&out.chain.ops[0], QuilOp::Trans { .. }));
    }

    #[test]
    fn filters_reorder_by_observed_selectivity() {
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(0.0)), "x") // op#0, not selective
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x") // op#1, very selective
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let sel = HashMap::from([(0u32, 0.9), (1u32, 0.05)]);
        let out = rewrite(&chain, &UdfRegistry::new(), Some(&sel));
        assert!(out
            .log
            .iter()
            .any(|e| e.rule == "reorder-filters" && e.applied));
        // The selective filter now runs first.
        match &out.chain.ops[0] {
            QuilOp::Pred {
                kind: PredKind::Expr(e),
                ..
            } => assert!(e.to_string().contains('<'), "got {e}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn close_selectivities_do_not_flap() {
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x")
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let sel = HashMap::from([(0u32, 0.50), (1u32, 0.48)]);
        let out = rewrite(&chain, &UdfRegistry::new(), Some(&sel));
        assert!(!out.log.iter().any(|e| e.rule == "reorder-filters"));
    }

    #[test]
    fn cheap_filter_bubbles_before_expensive_one_at_equal_selectivity() {
        // Same observed selectivity, but the first filter calls a UDF
        // (CALL_COST-weighted) while the second is a bare comparison:
        // rank = cost / (1 − sel) puts the cheap predicate first.
        let mut udfs = UdfRegistry::new();
        udfs.register_pure("score", vec![Ty::F64], Ty::Bool, |_| Value::Bool(true));
        let q = Query::source("xs")
            .where_(Expr::call("score", vec![Expr::var("x")]), "x") // op#0, expensive
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x") // op#1, cheap
            .sum()
            .build();
        let chain = lower_q(&q, &udfs);
        let sel = HashMap::from([(0u32, 0.5), (1u32, 0.5)]);
        let out = rewrite(&chain, &udfs, Some(&sel));
        let ev = out
            .log
            .iter()
            .find(|e| e.rule == "reorder-filters" && e.applied)
            .unwrap_or_else(|| panic!("no reorder event in {:?}", out.log));
        assert!(ev.detail.contains("rank"), "{}", ev.detail);
        // The cheap comparison now runs first.
        match &out.chain.ops[0] {
            QuilOp::Pred {
                kind: PredKind::Expr(e),
                ..
            } => assert!(e.to_string().contains('<'), "got {e}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn impure_filter_blocks_reordering() {
        let mut udfs = UdfRegistry::new();
        udfs.register("flaky", vec![Ty::F64], Ty::Bool, |_| Value::Bool(true));
        let q = Query::source("xs")
            .where_(Expr::call("flaky", vec![Expr::var("x")]), "x")
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x")
            .sum()
            .build();
        let chain = lower_q(&q, &udfs);
        let sel = HashMap::from([(0u32, 0.9), (1u32, 0.05)]);
        let out = rewrite(&chain, &udfs, Some(&sel));
        assert!(!out.log.iter().any(|e| e.rule == "reorder-filters"));
    }

    #[test]
    fn pure_registered_filter_reorders() {
        let mut udfs = UdfRegistry::new();
        udfs.register_pure("always", vec![Ty::F64], Ty::Bool, |_| Value::Bool(true));
        let q = Query::source("xs")
            .where_(Expr::call("always", vec![Expr::var("x")]), "x")
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x")
            .sum()
            .build();
        let chain = lower_q(&q, &udfs);
        let sel = HashMap::from([(0u32, 0.9), (1u32, 0.05)]);
        let out = rewrite(&chain, &udfs, Some(&sel));
        assert!(out
            .log
            .iter()
            .any(|e| e.rule == "reorder-filters" && e.applied));
    }

    #[test]
    fn selective_filter_pushes_past_pure_map() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::litf(2.0), "x") // op#0
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x") // op#1
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let sel = HashMap::from([(1u32, 0.05)]);
        let out = rewrite(&chain, &UdfRegistry::new(), Some(&sel));
        assert!(out
            .log
            .iter()
            .any(|e| e.rule == "pushdown-filter" && e.applied));
        match &out.chain.ops[0] {
            QuilOp::Pred {
                kind: PredKind::Expr(e),
                ..
            } => assert!(e.to_string().contains('*'), "map body must be inlined, got {e}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&out.chain.ops[1], QuilOp::Trans { .. }));
    }

    #[test]
    fn unselective_filter_stays_after_map() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::litf(2.0), "x")
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x")
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let sel = HashMap::from([(1u32, 0.9)]);
        let out = rewrite(&chain, &UdfRegistry::new(), Some(&sel));
        assert!(!out.log.iter().any(|e| e.rule == "pushdown-filter"));
    }

    #[test]
    fn impure_map_blocks_pushdown() {
        let mut udfs = UdfRegistry::new();
        udfs.register("tick", vec![Ty::F64], Ty::F64, |args| args[0].clone());
        let q = Query::source("xs")
            .select(Expr::call("tick", vec![Expr::var("x")]), "x")
            .where_(Expr::var("x").lt(Expr::litf(0.1)), "x")
            .sum()
            .build();
        let chain = lower_q(&q, &udfs);
        let sel = HashMap::from([(1u32, 0.05)]);
        let out = rewrite(&chain, &udfs, Some(&sel));
        assert!(!out.log.iter().any(|e| e.rule == "pushdown-filter"));
        assert!(matches!(&out.chain.ops[0], QuilOp::Trans { .. }));
    }

    #[test]
    fn observed_selectivity_matches_data() {
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
            .where_(Expr::var("x").gt(Expr::litf(2.5)), "x")
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let ctx = DataContext::new().with_source("xs", vec![-1.0, 1.0, 2.0, 3.0]);
        let sel = observe_selectivities(&chain, &ctx, &UdfRegistry::new(), 512);
        // op#0 passes 3/4; op#1 sees the 3 survivors and passes 1.
        assert_eq!(sel.get(&0).copied(), Some(0.75));
        assert!((sel.get(&1).copied().unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_aborts_on_eval_error() {
        // Division by the element traps on 0 — sampling must bail out
        // and report nothing rather than guess.
        let q = Query::source("ns")
            .where_((Expr::liti(10) / Expr::var("x")).gt(Expr::liti(2)), "x")
            .sum()
            .build();
        let srcs = SourceTypes::new().with("ns", Ty::I64);
        let chain =
            lower_with(&q, &srcs, &TyEnv::new(), &UdfRegistry::new(), LowerOptions::default())
                .unwrap();
        let ctx = DataContext::new().with_source("ns", vec![0i64, 1, 2]);
        let sel = observe_selectivities(&chain, &ctx, &UdfRegistry::new(), 512);
        assert!(sel.is_empty());
    }

    #[test]
    fn rewritten_chains_evaluate_identically() {
        // End-to-end spot check at the rewrite layer (the full corpus
        // differential lives in tests/rewrite_differential.rs).
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::litf(2.0), "x")
            .select(Expr::var("y") + Expr::litf(1.0), "y")
            .take(9)
            .take(4)
            .sum()
            .build();
        let chain = lower_q(&q, &UdfRegistry::new());
        let out = rewrite(&chain, &UdfRegistry::new(), None);
        assert!(out.log.iter().all(|e| e.applied));
        assert!(!out.log.is_empty());
        assert!(verify(&out.chain, &UdfRegistry::new()).is_ok());
    }
}
