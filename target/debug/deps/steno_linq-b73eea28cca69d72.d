/root/repo/target/debug/deps/steno_linq-b73eea28cca69d72.d: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_linq-b73eea28cca69d72.rmeta: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs Cargo.toml

crates/steno-linq/src/lib.rs:
crates/steno-linq/src/aggregates.rs:
crates/steno-linq/src/enumerable.rs:
crates/steno-linq/src/enumerator.rs:
crates/steno-linq/src/grouping.rs:
crates/steno-linq/src/interp.rs:
crates/steno-linq/src/lookup.rs:
crates/steno-linq/src/sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
