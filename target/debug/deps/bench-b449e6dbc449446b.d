/root/repo/target/debug/deps/bench-b449e6dbc449446b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-b449e6dbc449446b.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-b449e6dbc449446b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
