//! One-off measurement: tape-checker cost relative to compile cost.
use std::time::Instant;

use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_query::Query;
use steno_vm::query::StenoOptions;
use steno_vm::{CompiledQuery, VectorizationPolicy};

fn x() -> Expr {
    Expr::var("x")
}

fn main() {
    let udfs = UdfRegistry::new();
    let ctx = DataContext::new()
        .with_source("xs", (0..3000).map(|i| f64::from(i) * 0.25 - 40.0).collect::<Vec<_>>())
        .with_source("ns", (0..3000i64).map(|i| i * 3 - 700).collect::<Vec<_>>());
    let queries = vec![
        ("sumsq", Query::source("xs").select(x() * x(), "x").sum().build()),
        ("fms", Query::source("xs")
            .where_(x().gt(Expr::litf(2.0)), "x")
            .select(x() * Expr::litf(3.0), "x")
            .sum()
            .build()),
        ("i64filter", Query::source("ns")
            .where_((x() % Expr::liti(3)).eq(Expr::liti(0)), "x")
            .select(x() * x(), "x")
            .sum()
            .build()),
        ("i64div", Query::source("ns")
            .select(x() / (x() * x() + Expr::liti(1)), "x")
            .sum()
            .build()),
    ];
    let reps = 200;
    for (mode, opts) in [
        ("auto", StenoOptions::default()),
        ("scalar", StenoOptions { vectorize: VectorizationPolicy::Off, ..StenoOptions::default() }),
    ] {
        for (name, q) in &queries {
            let mut compile_ns = 0u128;
            let mut check_ns = 0u128;
            for _ in 0..reps {
                let t0 = Instant::now();
                let c = CompiledQuery::compile_tuned(q, (&ctx).into(), &udfs, opts).unwrap();
                compile_ns += t0.elapsed().as_nanos();
                let t1 = Instant::now();
                steno_vm::check_program(c.program()).unwrap();
                check_ns += t1.elapsed().as_nanos();
            }
            // Isolate the equivalence pass: same program, shadow stripped.
            let mut noshadow_ns = 0u128;
            {
                let c = CompiledQuery::compile_tuned(q, (&ctx).into(), &udfs, opts).unwrap();
                let mut p2 = c.program().clone();
                p2.shadow = None;
                for _ in 0..reps {
                    let t = Instant::now();
                    steno_vm::check_program(&p2).unwrap();
                    noshadow_ns += t.elapsed().as_nanos();
                }
            }
            println!(
                "{name}/{mode}: compile {} us, check {} us (no-shadow {} us), ratio {:.1}%",
                compile_ns / reps / 1000,
                check_ns / reps / 1000,
                noshadow_ns / reps / 1000,
                100.0 * check_ns as f64 / compile_ns as f64
            );
        }
    }
}
