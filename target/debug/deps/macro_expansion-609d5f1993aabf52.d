/root/repo/target/debug/deps/macro_expansion-609d5f1993aabf52.d: tests/macro_expansion.rs

/root/repo/target/debug/deps/macro_expansion-609d5f1993aabf52: tests/macro_expansion.rs

tests/macro_expansion.rs:
