/root/repo/target/debug/deps/cluster_fault_injection-71748b02c65351e5.d: crates/steno-cluster/tests/cluster_fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_fault_injection-71748b02c65351e5.rmeta: crates/steno-cluster/tests/cluster_fault_injection.rs Cargo.toml

crates/steno-cluster/tests/cluster_fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
