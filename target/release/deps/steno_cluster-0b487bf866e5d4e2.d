/root/repo/target/release/deps/steno_cluster-0b487bf866e5d4e2.d: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs

/root/repo/target/release/deps/libsteno_cluster-0b487bf866e5d4e2.rlib: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs

/root/repo/target/release/deps/libsteno_cluster-0b487bf866e5d4e2.rmeta: crates/steno-cluster/src/lib.rs crates/steno-cluster/src/chain_interp.rs crates/steno-cluster/src/exec.rs crates/steno-cluster/src/fault.rs crates/steno-cluster/src/job.rs crates/steno-cluster/src/partition.rs crates/steno-cluster/src/retry.rs crates/steno-cluster/src/sync.rs

crates/steno-cluster/src/lib.rs:
crates/steno-cluster/src/chain_interp.rs:
crates/steno-cluster/src/exec.rs:
crates/steno-cluster/src/fault.rs:
crates/steno-cluster/src/job.rs:
crates/steno-cluster/src/partition.rs:
crates/steno-cluster/src/retry.rs:
crates/steno-cluster/src/sync.rs:
