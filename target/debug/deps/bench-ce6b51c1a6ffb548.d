/root/repo/target/debug/deps/bench-ce6b51c1a6ffb548.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-ce6b51c1a6ffb548.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-ce6b51c1a6ffb548.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
