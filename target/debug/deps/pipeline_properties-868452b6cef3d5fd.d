/root/repo/target/debug/deps/pipeline_properties-868452b6cef3d5fd.d: tests/pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_properties-868452b6cef3d5fd.rmeta: tests/pipeline_properties.rs Cargo.toml

tests/pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
