/root/repo/target/debug/deps/fig01-6239370c90801f05.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-6239370c90801f05: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
