//! Failure injection: data-dependent runtime errors must surface as
//! structured [`VmError`]s from the compiled pipeline, not as panics or
//! wrong answers — and must agree with the reference semantics about
//! *when* a failure occurs (e.g. short-circuiting skips the trap).

use steno_expr::{Column, DataContext, Expr, Ty, UdfRegistry, Value};
use steno_query::{Query, QueryExpr};
use steno_vm::{CompiledQuery, VmError};

fn compile(q: &QueryExpr, ctx: &DataContext) -> CompiledQuery {
    CompiledQuery::compile(q, ctx.into(), &UdfRegistry::new()).expect("compile")
}

#[test]
fn integer_division_by_zero_is_reported() {
    let ctx = DataContext::new().with_source("ns", vec![4i64, 2, 0, 5]);
    let q = Query::source("ns")
        .select(Expr::liti(100) / Expr::var("x"), "x")
        .sum()
        .build();
    let compiled = compile(&q, &ctx);
    assert_eq!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Err(VmError::DivisionByZero)
    );
}

#[test]
fn integer_remainder_by_zero_is_reported() {
    let ctx = DataContext::new().with_source("ns", vec![3i64, 0]);
    let q = Query::source("ns")
        .where_((Expr::liti(7) % Expr::var("x")).eq(Expr::liti(1)), "x")
        .count()
        .build();
    let compiled = compile(&q, &ctx);
    assert_eq!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Err(VmError::DivisionByZero)
    );
}

#[test]
fn float_division_by_zero_follows_ieee() {
    // No error: IEEE semantics, exactly like the reference evaluator.
    let ctx = DataContext::new().with_source("xs", vec![1.0, 0.0]);
    let q = Query::source("xs")
        .select(Expr::litf(1.0) / Expr::var("x"), "x")
        .max()
        .build();
    let compiled = compile(&q, &ctx);
    assert_eq!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Ok(Value::F64(f64::INFINITY))
    );
}

#[test]
fn short_circuit_protects_the_trap() {
    // false && (1/0 == 0): the reference evaluator never evaluates the
    // right operand; neither may the compiled code.
    let ctx = DataContext::new().with_source("ns", vec![0i64, 1]);
    let trap = (Expr::liti(1) / Expr::var("x")).eq(Expr::liti(0));
    let q = Query::source("ns")
        .where_(Expr::var("x").gt(Expr::liti(0)).and(trap), "x")
        .count()
        .build();
    let compiled = compile(&q, &ctx);
    // x = 0 would trap if && were strict; short-circuiting skips it.
    assert_eq!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Ok(Value::I64(0))
    );
}

#[test]
fn row_index_out_of_bounds_is_reported() {
    let ctx = DataContext::new()
        .with_source("pts", Column::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2));
    let q = Query::source("pts")
        .select(Expr::var("p").row_index(Expr::liti(5)), "p")
        .sum()
        .build();
    let compiled = compile(&q, &ctx);
    assert_eq!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Err(VmError::IndexOutOfBounds { index: 5, len: 2 })
    );
}

#[test]
fn missing_source_at_bind_time() {
    let build_ctx = DataContext::new().with_source("xs", vec![1.0]);
    let q = Query::source("xs").sum().build();
    let compiled = compile(&q, &build_ctx);
    // Running against a context that lacks the source fails at binding.
    let empty = DataContext::new();
    assert!(matches!(
        compiled.run(&empty, &UdfRegistry::new()),
        Err(VmError::MissingBinding(_))
    ));
}

#[test]
fn missing_udf_at_bind_time() {
    let mut udfs = UdfRegistry::new();
    udfs.register("f", vec![Ty::F64], Ty::F64, |args| args[0].clone());
    let ctx = DataContext::new().with_source("xs", vec![1.0]);
    let q = Query::source("xs")
        .select(Expr::call("f", vec![Expr::var("x")]), "x")
        .sum()
        .build();
    let compiled = CompiledQuery::compile(&q, (&ctx).into(), &udfs).expect("compile");
    // Works with the registry...
    assert_eq!(compiled.run(&ctx, &udfs), Ok(Value::F64(1.0)));
    // ...fails cleanly without it.
    assert!(matches!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Err(VmError::MissingBinding(_))
    ));
}

#[test]
fn failure_position_respects_lazy_semantics() {
    // take(2) stops before the poisoned element: no error.
    let ctx = DataContext::new().with_source("ns", vec![4i64, 2, 0, 5]);
    let q = Query::source("ns")
        .take(2)
        .select(Expr::liti(100) / Expr::var("x"), "x")
        .sum()
        .build();
    let compiled = compile(&q, &ctx);
    assert_eq!(
        compiled.run(&ctx, &UdfRegistry::new()),
        Ok(Value::I64(75))
    );
}

#[test]
fn source_type_mismatch_is_a_shape_error() {
    // Compile against an f64 source, run against an i64 source of the
    // same name: the typed SrcGetF instruction must refuse.
    let f_ctx = DataContext::new().with_source("xs", vec![1.0f64]);
    let q = Query::source("xs").sum().build();
    let compiled = compile(&q, &f_ctx);
    let i_ctx = DataContext::new().with_source("xs", vec![1i64]);
    assert!(matches!(
        compiled.run(&i_ctx, &UdfRegistry::new()),
        Err(VmError::Shape(_))
    ));
}
