/root/repo/target/debug/deps/steno_codegen-9c24bf0c2a8d1a35.d: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_codegen-9c24bf0c2a8d1a35.rmeta: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs Cargo.toml

crates/steno-codegen/src/lib.rs:
crates/steno-codegen/src/generate.rs:
crates/steno-codegen/src/imp.rs:
crates/steno-codegen/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
