//! Workload generators shared by the figure binaries and benches.
use crate::prng::SplitMix64;

/// Deterministic uniform doubles in [0, 1).
pub fn uniform_doubles(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64()).collect()
}

/// Samples from a 1-D mixture of Gaussians (the Group workload, §7.1).
pub fn mixture_of_gaussians(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let components = [(-4.0, 1.0), (0.0, 0.5), (3.0, 2.0)];
    (0..n)
        .map(|_| {
            let (mean, sd) = components[rng.index(components.len())];
            // Box-Muller.
            let u1: f64 = rng.next_f64().max(1e-12);
            let u2: f64 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            mean + sd * z
        })
        .collect()
}

/// Scale factor for workload sizes, from `STENO_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("STENO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Applies the scale factor to a nominal element count.
pub fn scaled(n: usize) -> usize {
    ((n as f64) * scale()).max(1.0) as usize
}
