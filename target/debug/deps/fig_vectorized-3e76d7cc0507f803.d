/root/repo/target/debug/deps/fig_vectorized-3e76d7cc0507f803.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/debug/deps/fig_vectorized-3e76d7cc0507f803: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
