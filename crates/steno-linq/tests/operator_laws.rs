//! Property-based tests: every lazy operator state machine agrees with
//! the obvious eager `Vec` oracle, and the laziness contracts hold.

use proptest::prelude::*;
use steno_linq::Enumerable;

fn en(v: &[i64]) -> Enumerable<i64> {
    Enumerable::from_vec(v.to_vec())
}

proptest! {
    #[test]
    fn select_matches_map(v in prop::collection::vec(-100i64..100, 0..50)) {
        let got = en(&v).select(|x| x * 3 - 1).to_vec();
        let want: Vec<i64> = v.iter().map(|x| x * 3 - 1).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn where_matches_filter(v in prop::collection::vec(-100i64..100, 0..50)) {
        let got = en(&v).where_(|x| x % 3 == 0).to_vec();
        let want: Vec<i64> = v.iter().copied().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn take_skip_partition_the_sequence(
        v in prop::collection::vec(-100i64..100, 0..50),
        n in 0usize..60,
    ) {
        let head = en(&v).take(n).to_vec();
        let tail = en(&v).skip(n).to_vec();
        let mut whole = head.clone();
        whole.extend(&tail);
        prop_assert_eq!(whole, v.clone());
        prop_assert_eq!(head.len(), n.min(v.len()));
    }

    #[test]
    fn take_while_skip_while_partition(
        v in prop::collection::vec(-100i64..100, 0..50),
        pivot in -100i64..100,
    ) {
        let head = en(&v).take_while(move |x| x < pivot).to_vec();
        let tail = en(&v).skip_while(move |x| x < pivot).to_vec();
        let mut whole = head;
        whole.extend(&tail);
        prop_assert_eq!(whole, v);
    }

    #[test]
    fn select_many_matches_flat_map(
        v in prop::collection::vec(0i64..20, 0..20),
    ) {
        let got = en(&v)
            .select_many(|x| Enumerable::from_vec((0..x % 4).collect()))
            .to_vec();
        let want: Vec<i64> = v.iter().flat_map(|&x| 0..x % 4).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn aggregate_is_a_left_fold(v in prop::collection::vec(-9i64..9, 0..30)) {
        let got = en(&v).aggregate(7, |acc, x| acc * 2 + x);
        let want = v.iter().fold(7, |acc, x| acc * 2 + x);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn order_by_matches_stable_sort(v in prop::collection::vec(-50i64..50, 0..50)) {
        let got = en(&v).order_by(|x| *x).to_vec();
        let mut want = v.clone();
        want.sort();
        prop_assert_eq!(got, want);
        // Descending is the reverse of ascending for totally-ordered keys
        // up to the stability of equal keys (i64 keys are their own
        // elements, so exactly the reverse).
        let desc = en(&v).order_by_desc(|x| *x).to_vec();
        let mut want_desc = v.clone();
        want_desc.sort_by(|a, b| b.cmp(a));
        prop_assert_eq!(desc, want_desc);
    }

    #[test]
    fn distinct_keeps_first_occurrences(v in prop::collection::vec(-10i64..10, 0..50)) {
        let got = en(&v).distinct_by(|x| *x).to_vec();
        let mut seen = std::collections::HashSet::new();
        let want: Vec<i64> = v.iter().copied().filter(|x| seen.insert(*x)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn group_by_partitions_without_loss(v in prop::collection::vec(-20i64..20, 0..60)) {
        let groups = en(&v).group_by(|x| x.rem_euclid(5)).to_vec();
        // Every element lands in exactly one group with the right key.
        let mut total = 0;
        for g in &groups {
            for x in g.iter() {
                prop_assert_eq!(x.rem_euclid(5), *g.key());
                total += 1;
            }
        }
        prop_assert_eq!(total, v.len());
        // Keys are unique.
        let mut keys: Vec<i64> = groups.iter().map(|g| *g.key()).collect();
        let n = keys.len();
        keys.dedup();
        prop_assert_eq!(n, keys.len());
    }

    #[test]
    fn concat_and_zip(
        a in prop::collection::vec(-50i64..50, 0..20),
        b in prop::collection::vec(-50i64..50, 0..20),
    ) {
        let cat = en(&a).concat(&en(&b)).to_vec();
        let mut want = a.clone();
        want.extend(&b);
        prop_assert_eq!(cat, want);

        let zipped = en(&a).zip(&en(&b), |x, y| x + y).to_vec();
        let want: Vec<i64> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        prop_assert_eq!(zipped, want);
    }

    #[test]
    fn join_matches_nested_loop_oracle(
        a in prop::collection::vec(0i64..8, 0..15),
        b in prop::collection::vec(0i64..8, 0..15),
    ) {
        let got = en(&a)
            .join(&en(&b), |x| x % 3, |y| y % 3, |x, y| (x, y))
            .to_vec();
        let mut want = Vec::new();
        for &x in &a {
            for &y in &b {
                if x % 3 == y % 3 {
                    want.push((x, y));
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scalar_aggregates_match_oracles(v in prop::collection::vec(-100i64..100, 1..40)) {
        prop_assert_eq!(en(&v).sum(), v.iter().sum::<i64>());
        prop_assert_eq!(en(&v).min(), v.iter().copied().min());
        prop_assert_eq!(en(&v).max(), v.iter().copied().max());
        prop_assert_eq!(en(&v).count(), v.len());
        prop_assert_eq!(en(&v).first(), Some(v[0]));
        prop_assert_eq!(
            en(&v).element_at(v.len() - 1),
            Some(*v.last().unwrap())
        );
    }

    #[test]
    fn reverse_is_involutive(v in prop::collection::vec(-100i64..100, 0..40)) {
        let twice = en(&v).reverse().reverse().to_vec();
        prop_assert_eq!(twice, v);
    }
}

#[test]
fn enumeration_is_repeatable_after_composition() {
    // A composed query is re-enumerable from scratch (the IEnumerable
    // contract): both passes observe the same elements.
    let q = en(&[5, 3, 8, 1])
        .where_(|x| x > 2)
        .select(|x| x * 10)
        .order_by(|x| *x);
    assert_eq!(q.to_vec(), q.to_vec());
    assert_eq!(q.count(), 3);
}
