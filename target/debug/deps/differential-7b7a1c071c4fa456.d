/root/repo/target/debug/deps/differential-7b7a1c071c4fa456.d: crates/steno-vm/tests/differential.rs

/root/repo/target/debug/deps/differential-7b7a1c071c4fa456: crates/steno-vm/tests/differential.rs

crates/steno-vm/tests/differential.rs:
