/root/repo/target/debug/deps/differential-fba72af1c3d48d5f.d: crates/steno-vm/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-fba72af1c3d48d5f.rmeta: crates/steno-vm/tests/differential.rs Cargo.toml

crates/steno-vm/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
