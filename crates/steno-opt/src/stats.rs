//! Per-plan run statistics and drift detection.
//!
//! A cached plan embodies assumptions: roughly how many elements flow
//! through it, how selective its filters are, and that compilation cost
//! has been amortized. [`PlanStats`] tracks exponentially-decayed
//! observations of those quantities; [`PlanStats::drift`] answers "has
//! the workload departed the plan's assumptions far enough, for long
//! enough, that re-optimizing is worth another compile?" — with
//! hysteresis so a noisy workload cannot flap the plan back and forth.

/// One profiled execution of a cached plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObservedRun {
    /// Elements read from sources this run.
    pub elements: f64,
    /// Selection density in `[0, 1]`, when the run was profiled and the
    /// plan has filters.
    pub density: Option<f64>,
    /// Wall-clock execution time in nanoseconds.
    pub exec_ns: f64,
    /// Wall time spent *inside loop instructions* this run (from the
    /// span-timed profile), nanoseconds; `0.0` when not measured —
    /// per-element cost then falls back to `exec_ns`.
    pub loop_ns: f64,
}

/// Tuning knobs for drift detection. [`DriftConfig::default`] is
/// deliberately conservative: re-optimization should be rare.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher weights recent runs
    /// more.
    pub alpha: f64,
    /// Minimum observed runs before drift can trigger at all.
    pub min_runs: u64,
    /// Absolute selection-density departure (EWMA vs. assumption)
    /// needed to trigger.
    pub density_delta: f64,
    /// Input-scale ratio (EWMA vs. assumption, either direction) needed
    /// to trigger.
    pub scale_ratio: f64,
    /// Runs to wait after a re-optimization before another may trigger.
    pub cooldown_runs: u64,
    /// Hard cap on re-optimizations per cached plan.
    pub max_reopts: u32,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            alpha: 0.3,
            min_runs: 8,
            density_delta: 0.25,
            scale_ratio: 4.0,
            cooldown_runs: 8,
            max_reopts: 4,
        }
    }
}

/// Exponentially-decayed statistics for one cached plan, plus the
/// assumptions the plan was compiled under.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanStats {
    /// Total observed runs.
    pub runs: u64,
    /// EWMA of elements per run.
    pub ewma_elements: f64,
    /// EWMA of selection density (only over runs that reported one).
    pub ewma_density: Option<f64>,
    /// EWMA of execution time per run, nanoseconds.
    pub ewma_exec_ns: f64,
    /// Total execution time across all runs, nanoseconds (for the
    /// compile-cost break-even gate).
    pub total_exec_ns: f64,
    /// Element count the current plan assumes (seeded by the first
    /// observation, rebased on re-optimization).
    pub assumed_elements: Option<f64>,
    /// Selection density the current plan assumes.
    pub assumed_density: Option<f64>,
    /// Run index at the last re-optimization (for cooldown).
    pub last_reopt_run: u64,
    /// Re-optimizations performed so far.
    pub reopts: u32,
    /// Most recent raw observation (rebase target: a re-optimized plan
    /// was compiled against the current workload, not the decayed
    /// average that may still be mid-transition).
    pub last_elements: Option<f64>,
    /// Most recent raw density observation.
    pub last_density: Option<f64>,
    /// EWMA of measured per-element loop time, nanoseconds — the
    /// measured-cost input to [`crate::cost::choose_tier`]. Loop-span
    /// time when the profile reports it, whole-run time otherwise.
    pub ewma_ns_per_elem: Option<f64>,
    /// Most recent raw per-element measurement (rebase target).
    pub last_ns_per_elem: Option<f64>,
}

impl PlanStats {
    /// Fresh, assumption-free stats for a newly cached plan.
    pub fn new() -> PlanStats {
        PlanStats::default()
    }

    /// Folds one run into the decayed statistics. The first observation
    /// also seeds the plan's assumptions — a plan compiled blind adopts
    /// the first workload it actually sees.
    pub fn observe(&mut self, run: ObservedRun, cfg: &DriftConfig) {
        self.runs += 1;
        self.total_exec_ns += run.exec_ns;
        self.last_elements = Some(run.elements);
        if run.density.is_some() {
            self.last_density = run.density;
        }
        // Per-element cost: prefer the loop-span measurement (excludes
        // bind/setup time); fall back to whole-run wall time.
        let loop_time = if run.loop_ns > 0.0 {
            run.loop_ns
        } else {
            run.exec_ns
        };
        let npe = (run.elements > 0.0 && loop_time > 0.0).then(|| loop_time / run.elements);
        if npe.is_some() {
            self.last_ns_per_elem = npe;
        }
        let a = cfg.alpha;
        if self.runs == 1 {
            self.ewma_elements = run.elements;
            self.ewma_exec_ns = run.exec_ns;
            self.ewma_density = run.density;
            self.ewma_ns_per_elem = npe;
            self.assumed_elements = Some(run.elements);
            self.assumed_density = run.density;
            return;
        }
        self.ewma_elements = a * run.elements + (1.0 - a) * self.ewma_elements;
        self.ewma_exec_ns = a * run.exec_ns + (1.0 - a) * self.ewma_exec_ns;
        if let Some(d) = run.density {
            self.ewma_density = Some(match self.ewma_density {
                Some(prev) => a * d + (1.0 - a) * prev,
                None => d,
            });
        }
        if let Some(n) = npe {
            self.ewma_ns_per_elem = Some(match self.ewma_ns_per_elem {
                Some(prev) => a * n + (1.0 - a) * prev,
                None => n,
            });
        }
    }

    /// Checks whether observed behavior has drifted from the plan's
    /// assumptions far enough to justify re-optimizing. Returns a
    /// human-readable reason (surfaced in `EXPLAIN` `reopt:` lines), or
    /// `None` while the plan still fits.
    ///
    /// Gates, in order: enough runs observed; re-opt budget left;
    /// cooldown elapsed since the last re-opt; accumulated execution
    /// time exceeds `compile_ns` (the §7.1 break-even — recompiling is
    /// pointless if running has not even paid for the first compile);
    /// and finally an actual departure in density or input scale.
    pub fn drift(&self, cfg: &DriftConfig, compile_ns: f64) -> Option<String> {
        if self.runs < cfg.min_runs
            || self.reopts >= cfg.max_reopts
            || self.runs < self.last_reopt_run + cfg.cooldown_runs
            || self.total_exec_ns <= compile_ns
        {
            return None;
        }
        if let (Some(assumed), Some(seen)) = (self.assumed_density, self.ewma_density) {
            if (seen - assumed).abs() > cfg.density_delta {
                return Some(format!(
                    "selectivity drift: assumed density {assumed:.2}, observed {seen:.2}"
                ));
            }
        }
        if let Some(assumed) = self.assumed_elements {
            if assumed > 0.0 && self.ewma_elements > 0.0 {
                let ratio = self.ewma_elements / assumed;
                if ratio > cfg.scale_ratio || ratio < 1.0 / cfg.scale_ratio {
                    return Some(format!(
                        "input-scale drift: assumed ~{assumed:.0} elements, observed ~{:.0}",
                        self.ewma_elements
                    ));
                }
            }
        }
        None
    }

    /// Rebase assumptions onto the workload the re-optimized plan was
    /// actually compiled against — the latest raw observation, not the
    /// decayed average. A drift trigger usually fires mid-transition,
    /// when the EWMA is still between the old and new regimes; rebasing
    /// onto that moving average would let the EWMA's continued
    /// convergence re-trigger the very same shift after cooldown. The
    /// EWMA is snapped too, so both sides of the comparison restart
    /// from the new regime. This is the hysteresis that stops flapping.
    pub fn rebase(&mut self) {
        if let Some(e) = self.last_elements {
            self.ewma_elements = e;
        }
        if self.last_density.is_some() {
            self.ewma_density = self.last_density;
        }
        if self.last_ns_per_elem.is_some() {
            self.ewma_ns_per_elem = self.last_ns_per_elem;
        }
        self.assumed_elements = Some(self.ewma_elements);
        self.assumed_density = self.ewma_density;
        self.last_reopt_run = self.runs;
        self.reopts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(elements: f64, density: f64, exec_ns: f64) -> ObservedRun {
        ObservedRun {
            elements,
            density: Some(density),
            exec_ns,
            loop_ns: 0.0,
        }
    }

    #[test]
    fn ns_per_elem_tracks_loop_time_over_exec_time() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        // Loop-span time present: 2000 ns over 1000 elements → 2 ns/elem
        // even though the whole run took 10 µs.
        s.observe(
            ObservedRun {
                elements: 1000.0,
                density: None,
                exec_ns: 10_000.0,
                loop_ns: 2000.0,
            },
            &cfg,
        );
        assert_eq!(s.ewma_ns_per_elem, Some(2.0));
        // Without a loop measurement, exec time stands in.
        let mut s2 = PlanStats::new();
        s2.observe(run(1000.0, 0.5, 10_000.0), &cfg);
        assert_eq!(s2.ewma_ns_per_elem, Some(10.0));
        // Zero-element runs report nothing.
        let mut s3 = PlanStats::new();
        s3.observe(run(0.0, 0.5, 10_000.0), &cfg);
        assert_eq!(s3.ewma_ns_per_elem, None);
    }

    #[test]
    fn rebase_snaps_ns_per_elem_to_latest_raw() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        for _ in 0..20 {
            s.observe(run(1000.0, 0.5, 100_000.0), &cfg); // 100 ns/elem
        }
        s.observe(run(1000.0, 0.5, 1000.0), &cfg); // regime shift: 1 ns/elem
        let ewma = s.ewma_ns_per_elem.unwrap();
        assert!(ewma > 1.0, "EWMA still converging: {ewma}");
        s.rebase();
        assert_eq!(s.ewma_ns_per_elem, Some(1.0));
    }

    #[test]
    fn first_observation_seeds_assumptions() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.5, 10_000.0), &cfg);
        assert_eq!(s.assumed_elements, Some(1000.0));
        assert_eq!(s.assumed_density, Some(0.5));
        assert_eq!(s.runs, 1);
    }

    #[test]
    fn stable_workload_never_drifts() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        for _ in 0..100 {
            s.observe(run(1000.0, 0.5, 10_000.0), &cfg);
        }
        assert_eq!(s.drift(&cfg, 1.0), None);
    }

    #[test]
    fn density_shift_triggers_after_min_runs() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.9, 10_000.0), &cfg);
        for i in 1..20 {
            s.observe(run(1000.0, 0.05, 10_000.0), &cfg);
            let d = s.drift(&cfg, 1.0);
            if (i + 1) < cfg.min_runs {
                assert_eq!(d, None, "run {i}: too few runs");
            }
        }
        let reason = s.drift(&cfg, 1.0).expect("density drift should trigger");
        assert!(reason.contains("selectivity drift"), "{reason}");
    }

    #[test]
    fn scale_shift_triggers() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.5, 10_000.0), &cfg);
        for _ in 0..30 {
            s.observe(run(100_000.0, 0.5, 10_000.0), &cfg);
        }
        let reason = s.drift(&cfg, 1.0).expect("scale drift should trigger");
        assert!(reason.contains("input-scale drift"), "{reason}");
    }

    #[test]
    fn rebase_stops_retriggering() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.9, 10_000.0), &cfg);
        for _ in 0..30 {
            s.observe(run(1000.0, 0.05, 10_000.0), &cfg);
        }
        assert!(s.drift(&cfg, 1.0).is_some());
        s.rebase();
        // Same workload keeps flowing: assumptions now match, no flap.
        for _ in 0..30 {
            s.observe(run(1000.0, 0.05, 10_000.0), &cfg);
            assert_eq!(s.drift(&cfg, 1.0), None);
        }
    }

    #[test]
    fn mid_transition_rebase_does_not_flap() {
        // Drift triggers while the EWMA is still between the old and
        // new regimes. Rebasing must adopt the NEW regime, or the
        // EWMA's continued convergence re-triggers the same shift.
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        for _ in 0..cfg.min_runs + 2 {
            s.observe(run(1000.0, 0.9, 10_000.0), &cfg);
        }
        let mut triggered = false;
        for _ in 0..4 {
            s.observe(run(1000.0, 0.05, 10_000.0), &cfg);
            if s.drift(&cfg, 1.0).is_some() {
                triggered = true;
                s.rebase();
                break;
            }
        }
        assert!(triggered, "shift must trigger mid-transition");
        // The same sustained shift, continued far past cooldown, must
        // never trigger again.
        for i in 0..60 {
            s.observe(run(1000.0, 0.05, 10_000.0), &cfg);
            assert_eq!(s.drift(&cfg, 1.0), None, "flap at post-rebase run {i}");
        }
        assert_eq!(s.reopts, 1);
    }

    #[test]
    fn cooldown_blocks_immediate_retrigger() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.9, 10_000.0), &cfg);
        for _ in 0..30 {
            s.observe(run(1000.0, 0.05, 10_000.0), &cfg);
        }
        s.rebase();
        // Drift again immediately — cooldown must hold it back even
        // though the density has moved.
        for i in 0..(cfg.cooldown_runs - 1) {
            s.observe(run(1000.0, 0.9, 10_000.0), &cfg);
            assert_eq!(s.drift(&cfg, 1.0), None, "within cooldown at +{i}");
        }
    }

    #[test]
    fn reopt_budget_is_a_hard_cap() {
        let cfg = DriftConfig {
            cooldown_runs: 1,
            ..DriftConfig::default()
        };
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.9, 10_000.0), &cfg);
        let mut flips = 0u32;
        let mut hi = false;
        for _ in 0..400 {
            let d = if hi { 0.9 } else { 0.05 };
            s.observe(run(1000.0, d, 10_000.0), &cfg);
            if s.drift(&cfg, 1.0).is_some() {
                s.rebase();
                flips += 1;
                hi = !hi;
            }
        }
        assert!(flips <= cfg.max_reopts, "{flips} > cap {}", cfg.max_reopts);
    }

    #[test]
    fn compile_cost_gates_reopt() {
        let cfg = DriftConfig::default();
        let mut s = PlanStats::new();
        s.observe(run(1000.0, 0.9, 10.0), &cfg);
        for _ in 0..30 {
            s.observe(run(1000.0, 0.05, 10.0), &cfg);
        }
        // Total exec ~310ns; a compile that cost 1ms has not been paid
        // for — recompiling again would make things worse.
        assert_eq!(s.drift(&cfg, 1_000_000.0), None);
        assert!(s.drift(&cfg, 1.0).is_some());
    }
}
