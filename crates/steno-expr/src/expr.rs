//! Expression trees and lambda abstractions.

use std::fmt;

use crate::ty::Ty;

/// A binary operator in an expression tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (`+`).
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`).
    Div,
    /// Remainder (`%`), the operator of the paper's running example
    /// `where x % 2 == 0`.
    Rem,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Less-than (`<`).
    Lt,
    /// Less-or-equal (`<=`).
    Le,
    /// Greater-than (`>`).
    Gt,
    /// Greater-or-equal (`>=`).
    Ge,
    /// Short-circuiting conjunction (`&&`).
    And,
    /// Short-circuiting disjunction (`||`).
    Or,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
}

impl BinOp {
    /// `true` for `+ - * / %` and `min`/`max`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Min | BinOp::Max
        )
    }

    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for `&&` and `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// The surface-syntax token for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Absolute value.
    Abs,
    /// Square root (used by the Euclidean distance in k-means).
    Sqrt,
    /// Floor (used to bin samples in the Group microbenchmark).
    Floor,
}

impl UnOp {
    /// The surface-syntax token (or function name) for this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Floor => "floor",
        }
    }
}

/// An expression tree.
///
/// Trees are built either programmatically ([`Expr::var`], the `std::ops`
/// impls) or by the comprehension parser in `steno-syntax`. They appear as
/// the transformation/predicate/aggregation functions of query operators.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A variable reference by name.
    Var(String),
    /// An `f64` literal.
    LitF64(f64),
    /// An `i64` literal.
    LitI64(i64),
    /// A boolean literal.
    LitBool(bool),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A call to a registered user-defined function.
    Call(String, Vec<Expr>),
    /// Projection of a pair component (`.0` or `.1`).
    Field(Box<Expr>, usize),
    /// Indexing into a row: `row[i]` yields `f64`.
    RowIndex(Box<Expr>, Box<Expr>),
    /// The length of a row, as `i64`.
    RowLen(Box<Expr>),
    /// Pair construction.
    MkPair(Box<Expr>, Box<Expr>),
    /// Conditional expression `if c { t } else { e }`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Type cast between the numeric scalars.
    Cast(Ty, Box<Expr>),
}

impl Expr {
    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// An `f64` literal.
    pub fn litf(x: f64) -> Expr {
        Expr::LitF64(x)
    }

    /// An `i64` literal.
    pub fn liti(x: i64) -> Expr {
        Expr::LitI64(x)
    }

    /// A boolean literal.
    pub fn litb(b: bool) -> Expr {
        Expr::LitBool(b)
    }

    /// A binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// A unary operation.
    pub fn un(op: UnOp, operand: Expr) -> Expr {
        Expr::Un(op, Box::new(operand))
    }

    /// A call to the user-defined function `name`.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Projects a pair component.
    pub fn field(self, index: usize) -> Expr {
        Expr::Field(Box::new(self), index)
    }

    /// Indexes a row.
    pub fn row_index(self, index: Expr) -> Expr {
        Expr::RowIndex(Box::new(self), Box::new(index))
    }

    /// The row length.
    pub fn row_len(self) -> Expr {
        Expr::RowLen(Box::new(self))
    }

    /// Pair construction.
    pub fn mk_pair(a: Expr, b: Expr) -> Expr {
        Expr::MkPair(Box::new(a), Box::new(b))
    }

    /// A conditional expression.
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// A cast to `ty`.
    pub fn cast(self, ty: Ty) -> Expr {
        Expr::Cast(ty, Box::new(self))
    }

    /// Equality comparison.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }

    /// Inequality comparison.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }

    /// Less-than comparison.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// Less-or-equal comparison.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }

    /// Greater-than comparison.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }

    /// Greater-or-equal comparison.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }

    /// Logical conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }

    /// Logical disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// Logical negation.
    ///
    /// Deliberately named like the operator it builds (`!`); `Expr` also
    /// implements the `Neg` operator but not `Not`, because `!` on an
    /// expression *tree* reads ambiguously.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::un(UnOp::Not, self)
    }

    /// Numeric minimum.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Min, self, rhs)
    }

    /// Numeric maximum.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Max, self, rhs)
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::un(UnOp::Sqrt, self)
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::un(UnOp::Abs, self)
    }

    /// Floor.
    pub fn floor(self) -> Expr {
        Expr::un(UnOp::Floor, self)
    }

    /// Walks the tree, invoking `f` on every node (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_) => {}
            Expr::Bin(_, a, b) | Expr::RowIndex(a, b) | Expr::MkPair(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Un(_, a) | Expr::Field(a, _) | Expr::RowLen(a) | Expr::Cast(_, a) => a.visit(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
        }
    }

    /// The number of nodes in the tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl std::ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Rem, self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::un(UnOp::Neg, self)
    }
}

/// A lambda abstraction: the representation of the function objects passed
/// to query operators (`x => x * x` and friends).
#[derive(Clone, Debug, PartialEq)]
pub struct Lambda {
    /// Parameter names with their types, in order.
    pub params: Vec<(String, Ty)>,
    /// The body expression.
    pub body: Expr,
}

impl Lambda {
    /// A unary lambda `param => body`.
    pub fn unary(param: impl Into<String>, ty: Ty, body: Expr) -> Lambda {
        Lambda {
            params: vec![(param.into(), ty)],
            body,
        }
    }

    /// A binary lambda `(a, b) => body`, as used by `Aggregate`.
    pub fn binary(
        a: impl Into<String>,
        ta: Ty,
        b: impl Into<String>,
        tb: Ty,
        body: Expr,
    ) -> Lambda {
        Lambda {
            params: vec![(a.into(), ta), (b.into(), tb)],
            body,
        }
    }

    /// The arity of the lambda.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(name) => write!(f, "{name}"),
            Expr::LitF64(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Expr::LitI64(x) => write!(f, "{x}"),
            Expr::LitBool(b) => write!(f, "{b}"),
            Expr::Bin(op, a, b) if matches!(op, BinOp::Min | BinOp::Max) => {
                write!(f, "{a}.{}({b})", op.symbol())
            }
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Un(UnOp::Neg, a) => write!(f, "(-{a})"),
            Expr::Un(UnOp::Not, a) => write!(f, "(!{a})"),
            Expr::Un(op, a) => write!(f, "{a}.{}()", op.symbol()),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Field(a, i) => write!(f, "{a}.{i}"),
            Expr::RowIndex(a, i) => write!(f, "{a}[{i}]"),
            Expr::RowLen(a) => write!(f, "{a}.len()"),
            Expr::MkPair(a, b) => write!(f, "({a}, {b})"),
            Expr::If(c, t, e) => write!(f, "if {c} {{ {t} }} else {{ {e} }}"),
            Expr::Cast(ty, a) => write!(f, "({a} as {ty})"),
        }
    }
}

impl fmt::Display for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|")?;
        for (i, (name, ty)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {ty}")?;
        }
        write!(f, "| {}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_sugar_builds_trees() {
        let e = Expr::var("x") * Expr::var("x") + Expr::litf(1.0);
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var("x"), Expr::var("x")),
                Expr::litf(1.0)
            )
        );
    }

    #[test]
    fn display_matches_surface_syntax() {
        let e = (Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0));
        assert_eq!(e.to_string(), "((x % 2) == 0)");
        let l = Lambda::unary("x", Ty::I64, e);
        assert_eq!(l.to_string(), "|x: i64| ((x % 2) == 0)");
    }

    #[test]
    fn visit_counts_nodes() {
        let e = Expr::if_(
            Expr::var("p").not(),
            Expr::var("a") + Expr::litf(1.0),
            Expr::call("f", vec![Expr::var("b")]),
        );
        assert_eq!(e.size(), 8);
    }

    #[test]
    fn binop_classes_partition() {
        use BinOp::*;
        for op in [Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge, And, Or, Min, Max] {
            let classes =
                [op.is_arithmetic(), op.is_comparison(), op.is_logical()];
            assert_eq!(classes.iter().filter(|c| **c).count(), 1, "{op:?}");
        }
    }

    #[test]
    fn lambda_constructors() {
        let l = Lambda::binary("acc", Ty::F64, "x", Ty::F64, Expr::var("acc") + Expr::var("x"));
        assert_eq!(l.arity(), 2);
        assert_eq!(l.params[0].0, "acc");
    }
}
