//! Figure 1: "Relative execution time for computing the sum of squares
//! of 10^7 doubles using LINQ, an imperative loop, and a Steno-optimized
//! query. Steno achieves a 7.4× speedup over LINQ."
//!
//! Scale with `STENO_SCALE` (default 1.0 = the paper's 10^7 elements).

use bench::micro::bench_sumsq;
use bench::workloads::{scaled, uniform_doubles};

fn main() {
    let n = scaled(10_000_000);
    println!("Figure 1: sum of squares of {n} doubles\n");
    let data = uniform_doubles(n, 42);
    // Warm-up pass, then the measured pass.
    let _ = bench_sumsq(&data);
    let r = bench_sumsq(&data);
    let linq = r.linq.as_secs_f64();
    let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / linq;
    println!("LINQ .Sum()        {:>10.2?}   100.0%", r.linq);
    println!(
        "for loop           {:>10.2?}   {:>5.1}%",
        r.hand,
        pct(r.hand)
    );
    println!(
        "Steno .Sum() (vm)  {:>10.2?}   {:>5.1}%   ({:.2}x speedup over LINQ)",
        r.steno_run,
        pct(r.steno_run),
        linq / r.steno_run.as_secs_f64()
    );
    println!(
        "Steno .Sum() (macro) {:>8.2?}   {:>5.1}%   ({:.2}x speedup over LINQ)",
        r.steno_macro,
        pct(r.steno_macro),
        linq / r.steno_macro.as_secs_f64()
    );
    println!(
        "\n(paper: LINQ 100%, for loop 13.5%, Steno 13.6%; 7.4x speedup)"
    );
}
