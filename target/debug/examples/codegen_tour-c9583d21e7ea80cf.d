/root/repo/target/debug/examples/codegen_tour-c9583d21e7ea80cf.d: examples/codegen_tour.rs

/root/repo/target/debug/examples/codegen_tour-c9583d21e7ea80cf: examples/codegen_tour.rs

examples/codegen_tour.rs:
