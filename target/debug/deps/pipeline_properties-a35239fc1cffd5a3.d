/root/repo/target/debug/deps/pipeline_properties-a35239fc1cffd5a3.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-a35239fc1cffd5a3: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
