//! The cluster scheduler: map vertices on a worker pool, then reduce —
//! now with the Dryad re-execution contract of §6.
//!
//! Dryad's promise to DryadLINQ programs is that a failed or slow vertex
//! is re-executed (possibly speculatively) *without changing the job's
//! answer*. The runtime here reproduces that contract at one-machine
//! scale:
//!
//! * **Panic isolation** — vertex bodies run under `catch_unwind`; a
//!   panicking UDF becomes a structured failure instead of unwinding
//!   through the scheduler and aborting the job.
//! * **Retry with backoff** — transient failures (injected faults,
//!   panics, timeouts) are retried up to
//!   [`RetryPolicy::max_attempts`], with deterministic exponential
//!   backoff and jitter.
//! * **Speculative re-execution** — a vertex running far longer than the
//!   quantile of its completed siblings gets a backup attempt; the first
//!   result wins and the loser is cooperatively cancelled.
//! * **Error taxonomy** — deterministic, data-dependent errors
//!   (`VmError::DivisionByZero` and friends) are *never* retried and
//!   surface byte-identical to the single-node engines, so the
//!   distributed path cannot disagree with reference semantics about
//!   failures.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use steno_expr::eval::{eval, Env};
use steno_expr::{Column, DataContext, Ty, UdfRegistry, Value};
use steno_query::typing::SourceTypes;
use steno_query::QueryExpr;
use steno_quil::ir::{QuilChain, SrcDesc};
use steno_quil::parallel::{self, ParallelPlan, Reduce};
use steno_quil::{lower, passes, LowerError};
use steno_vm::CompiledQuery;

use crate::chain_interp;
use crate::fault::{self, CancelToken, FailureClass, FaultKind, FaultPlan, VertexFailure};
use crate::job::JobGraph;
use crate::partition::DistributedCollection;
use crate::retry::{RetryPolicy, SpeculationPolicy};
use crate::sync::{Condvar, Mutex};

/// Which executor runs inside each map vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexEngine {
    /// Steno-optimized: the subchain compiled once and applied per
    /// partition (the `HomomorphicApply` of §6).
    Steno,
    /// Unoptimized: the same subchain through boxed iterator state
    /// machines.
    Linq,
}

/// The simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of worker threads executing vertices.
    pub workers: usize,
}

impl Default for ClusterSpec {
    fn default() -> ClusterSpec {
        ClusterSpec { workers: 4 }
    }
}

/// The fault-tolerance knobs of a distributed run: retry budget,
/// straggler speculation, and (for tests) the fault-injection schedule.
#[derive(Clone, Debug, Default)]
pub struct RuntimeConfig {
    /// Retry/backoff/deadline policy for transient vertex failures.
    pub retry: RetryPolicy,
    /// When to launch speculative duplicates of stragglers.
    pub speculation: SpeculationPolicy,
    /// Deterministic fault injection (empty in production).
    pub faults: FaultPlan,
}

impl RuntimeConfig {
    /// A default runtime with the given fault-injection schedule.
    pub fn with_faults(faults: FaultPlan) -> RuntimeConfig {
        RuntimeConfig {
            faults,
            ..RuntimeConfig::default()
        }
    }
}

/// One retry decision, for the [`JobReport`] log.
#[derive(Clone, Debug)]
pub struct RetryEvent {
    /// The vertex whose attempt failed.
    pub vertex: usize,
    /// The attempt (0-based) that failed transiently.
    pub attempt: u32,
    /// Why it failed.
    pub reason: String,
    /// The backoff applied before the replacement attempt.
    pub backoff: Duration,
}

impl fmt::Display for RetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vertex {} attempt {} failed ({}); retrying after {:?}",
            self.vertex, self.attempt, self.reason, self.backoff
        )
    }
}

/// What the fault-tolerant `HomomorphicApply` did, beyond the values.
#[derive(Clone, Debug, Default)]
pub struct ApplyStats {
    /// Re-executions caused by transient failures (not speculation).
    pub retries: usize,
    /// Speculative backup attempts launched for stragglers.
    pub speculation_launched: usize,
    /// Vertices whose winning result came from a speculative backup.
    pub speculation_wins: usize,
    /// Attempts launched per vertex (1 = clean first run).
    pub vertex_attempts: Vec<u32>,
    /// Wall time of the winning attempt, per vertex.
    pub vertex_wall: Vec<Duration>,
    /// Every retry decision, in the order taken.
    pub retry_log: Vec<RetryEvent>,
}

/// What a distributed run did, for experiments and tests.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Number of input partitions (map vertices).
    pub partitions: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Which engine ran the map vertices.
    pub engine: VertexEngine,
    /// One-off optimization cost (zero for [`VertexEngine::Linq`]).
    pub compile_time: Duration,
    /// Wall time of the map phase.
    pub map_wall: Duration,
    /// Wall time of the reduce phase.
    pub reduce_wall: Duration,
    /// Elements crossing the map → reduce boundary (the coordination
    /// volume that partial aggregation shrinks, §6).
    pub exchanged_elements: usize,
    /// Total input elements across all partitions (map-phase volume).
    pub input_elements: usize,
    /// Input elements per map vertex (for per-vertex throughput).
    pub vertex_elements: Vec<usize>,
    /// Which VM tier the Steno-compiled map vertices ran on
    /// (`None` for [`VertexEngine::Linq`]).
    pub map_vm_engine: Option<steno_vm::EngineKind>,
    /// Whether the plan used `Agg_i`/partial-sink decomposition.
    pub partial_aggregation: bool,
    /// The job graph that ran.
    pub graph: JobGraph,
    /// Map-vertex re-executions caused by transient failures.
    pub retries: usize,
    /// Speculative backup attempts launched for stragglers.
    pub speculation_launched: usize,
    /// Vertices whose result came from a speculative backup.
    pub speculation_wins: usize,
    /// Attempts launched per map vertex (1 = clean first run).
    pub vertex_attempts: Vec<u32>,
    /// Wall time of the winning attempt, per map vertex.
    pub vertex_wall: Vec<Duration>,
    /// Every retry decision taken during the map phase.
    pub retry_log: Vec<RetryEvent>,
}

/// `elems / wall`, `None` when the wall clock rounded to zero (sub-tick
/// phases on coarse clocks must not divide by zero).
fn throughput(elems: usize, wall: Duration) -> Option<f64> {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        Some(elems as f64 / secs)
    } else {
        None
    }
}

impl JobReport {
    /// Map-phase throughput in input elements per second, `None` when
    /// the phase was too fast to measure.
    pub fn map_elements_per_sec(&self) -> Option<f64> {
        throughput(self.input_elements, self.map_wall)
    }

    /// Reduce-phase throughput in exchanged elements per second, `None`
    /// when the phase was too fast to measure.
    pub fn reduce_elements_per_sec(&self) -> Option<f64> {
        throughput(self.exchanged_elements, self.reduce_wall)
    }

    /// Per-vertex throughput (input elements per second of the winning
    /// attempt); `None` entries are vertices too fast to measure.
    pub fn vertex_elements_per_sec(&self) -> Vec<Option<f64>> {
        self.vertex_elements
            .iter()
            .zip(&self.vertex_wall)
            .map(|(&n, &wall)| throughput(n, wall))
            .collect()
    }

    /// Total attempts launched across all map vertices (equals the
    /// partition count on a clean run).
    pub fn total_attempts(&self) -> u64 {
        self.vertex_attempts.iter().map(|&a| u64::from(a)).sum()
    }

    /// Folds the report into a metrics [`steno_obs::Collector`]:
    /// volume/fault counters plus phase, per-vertex, and retry-backoff
    /// wall-time histograms. Cheap no-op on a disabled collector, so
    /// callers can record unconditionally.
    pub fn record_to(&self, c: &dyn steno_obs::Collector) {
        fn ns(d: Duration) -> u64 {
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
        }
        if !c.enabled() {
            return;
        }
        c.add("cluster.jobs", 1);
        c.add("cluster.input_elements", self.input_elements as u64);
        c.add("cluster.exchanged_elements", self.exchanged_elements as u64);
        c.add("cluster.retries", self.retries as u64);
        c.add(
            "cluster.speculation_launched",
            self.speculation_launched as u64,
        );
        c.add("cluster.speculation_wins", self.speculation_wins as u64);
        c.add("cluster.vertex_attempts", self.total_attempts());
        c.add("cluster.retry_events", self.retry_log.len() as u64);
        c.observe_ns("cluster.compile_ns", ns(self.compile_time));
        c.observe_ns("cluster.map_wall_ns", ns(self.map_wall));
        c.observe_ns("cluster.reduce_wall_ns", ns(self.reduce_wall));
        for w in &self.vertex_wall {
            c.observe_ns("cluster.vertex_wall_ns", ns(*w));
        }
        for ev in &self.retry_log {
            c.observe_ns("cluster.retry_backoff_ns", ns(ev.backoff));
        }
    }

    /// Records the job's phase timings as retroactive spans under
    /// `parent`: `cluster.job` wrapping `cluster.compile` →
    /// `cluster.map` (one `cluster.vertex` child per map vertex,
    /// anchored at the map phase start — vertices ran concurrently) →
    /// `cluster.reduce`. The job report only keeps phase durations, so
    /// the spans are laid out sequentially backwards from
    /// `tracer.now_ns()`; that preserves every duration and the parent
    /// structure, which is what the flight-recorder dump needs. No-op
    /// on a disabled tracer.
    pub fn record_spans(&self, tracer: &steno_obs::Tracer, parent: Option<steno_obs::SpanId>) {
        use steno_obs::Note;

        if !tracer.enabled() {
            return;
        }
        fn ns(d: Duration) -> u64 {
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
        }
        let (compile, map, reduce) = (
            ns(self.compile_time),
            ns(self.map_wall),
            ns(self.reduce_wall),
        );
        let end = tracer.now_ns();
        let start = end.saturating_sub(compile + map + reduce);
        let job = tracer.record(
            "cluster.job",
            parent,
            start,
            end,
            vec![
                ("partitions", Note::from(self.partitions as u64)),
                ("workers", Note::from(self.workers as u64)),
                ("input_elements", Note::from(self.input_elements as u64)),
                (
                    "exchanged_elements",
                    Note::from(self.exchanged_elements as u64),
                ),
                ("retries", Note::from(self.retries as u64)),
            ],
        );
        let compile_end = start + compile;
        tracer.record("cluster.compile", job, start, compile_end, Vec::new());
        let map_end = compile_end + map;
        let map_id = tracer.record("cluster.map", job, compile_end, map_end, Vec::new());
        for (i, wall) in self.vertex_wall.iter().enumerate() {
            let attempts = self.vertex_attempts.get(i).copied().unwrap_or(1);
            let elements = self.vertex_elements.get(i).copied().unwrap_or(0);
            tracer.record(
                "cluster.vertex",
                map_id,
                compile_end,
                compile_end + ns(*wall),
                vec![
                    ("vertex", Note::from(i as u64)),
                    ("attempts", Note::from(u64::from(attempts))),
                    ("elements", Note::from(elements as u64)),
                ],
            );
        }
        tracer.record("cluster.reduce", job, map_end, map_end + reduce, Vec::new());
    }
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let engine = match (self.engine, self.map_vm_engine) {
            (VertexEngine::Steno, Some(vm)) => format!("steno/{vm}"),
            (VertexEngine::Steno, None) => "steno".to_string(),
            (VertexEngine::Linq, _) => "linq".to_string(),
        };
        write!(
            f,
            "job: {} partitions on {} workers, engine {engine}; \
             map {:?} ({}), reduce {:?} ({}); {} in → {} exchanged; \
             retries {}, speculation {}/{}, {} attempts, {} retry events",
            self.partitions,
            self.workers,
            self.map_wall,
            match self.map_elements_per_sec() {
                Some(eps) => format!("{eps:.0} elem/s"),
                None => "too fast to measure".to_string(),
            },
            self.reduce_wall,
            match self.reduce_elements_per_sec() {
                Some(eps) => format!("{eps:.0} elem/s"),
                None => "too fast to measure".to_string(),
            },
            self.input_elements,
            self.exchanged_elements,
            self.retries,
            self.speculation_wins,
            self.speculation_launched,
            self.total_attempts(),
            self.retry_log.len(),
        )
    }
}

/// A distributed execution error.
#[derive(Debug)]
pub enum DistError {
    /// The query could not be lowered to QUIL.
    Lower(LowerError),
    /// The query's root source is not the partitioned collection.
    BadRoot(String),
    /// A driver-side stage failed (compilation, reduce, merge).
    Vertex(String),
    /// A map vertex failed *deterministically*: re-execution must fail
    /// identically, so it was never retried. `message` is byte-identical
    /// to the single-node engine's error for the same data.
    VertexFailed {
        /// The failing vertex (partition index).
        vertex: usize,
        /// Attempts launched for this vertex (1 = failed on first run).
        attempts: u32,
        /// The single-node-identical error message.
        message: String,
    },
    /// A map vertex panicked on every allowed attempt. The panic was
    /// caught at the vertex boundary; the worker pool survived.
    VertexPanic {
        /// The panicking vertex (partition index).
        vertex: usize,
        /// The panic payload (stringified).
        payload: String,
    },
    /// Transient failures exhausted the retry budget.
    RetriesExhausted {
        /// The failing vertex (partition index).
        vertex: usize,
        /// Attempts consumed.
        attempts: u32,
        /// The last transient failure observed.
        last: String,
    },
}

impl DistError {
    /// The underlying per-vertex error message, when the failure came
    /// from a map vertex — for byte-comparison against single-node
    /// engine errors.
    pub fn vertex_message(&self) -> Option<&str> {
        match self {
            DistError::VertexFailed { message, .. } => Some(message),
            DistError::VertexPanic { payload, .. } => Some(payload),
            DistError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Lower(e) => write!(f, "{e}"),
            DistError::BadRoot(msg) => write!(f, "bad root source: {msg}"),
            DistError::Vertex(msg) => write!(f, "vertex failed: {msg}"),
            DistError::VertexFailed {
                vertex,
                attempts,
                message,
            } => write!(
                f,
                "vertex {vertex} failed deterministically (attempt {attempts}, not retried): {message}"
            ),
            DistError::VertexPanic { vertex, payload } => {
                write!(f, "vertex {vertex} panicked: {payload}")
            }
            DistError::RetriesExhausted {
                vertex,
                attempts,
                last,
            } => write!(
                f,
                "vertex {vertex} still failing after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for DistError {}

// ---------------------------------------------------------------------
// The fault-tolerant vertex scheduler.
// ---------------------------------------------------------------------

/// A scheduled execution of one vertex attempt.
struct Task {
    vertex: usize,
    attempt: u32,
    speculative: bool,
    not_before: Instant,
    cancel: CancelToken,
}

enum SlotState {
    Pending,
    Done,
    Failed,
}

/// A running attempt of a vertex.
struct Inflight {
    attempt: u32,
    started: Instant,
    cancel: CancelToken,
}

/// Per-vertex scheduler state.
struct Slot {
    state: SlotState,
    value: Option<Value>,
    /// Attempt ids handed out so far (also the count of launches).
    next_attempt: u32,
    /// Attempts that have failed transiently.
    failed_attempts: u32,
    /// Tasks for this vertex sitting in the queue.
    queued: usize,
    /// Attempts currently executing.
    inflight: Vec<Inflight>,
    /// Speculative backups launched.
    backups: usize,
    /// Wall time of the winning attempt.
    wall: Duration,
    /// Whether the winning attempt was a speculative backup.
    won_by_speculation: bool,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: SlotState::Pending,
            value: None,
            next_attempt: 1, // attempt 0 is seeded into the queue
            failed_attempts: 0,
            queued: 1,
            inflight: Vec::new(),
            backups: 0,
            wall: Duration::ZERO,
            won_by_speculation: false,
        }
    }

    fn is_pending(&self) -> bool {
        matches!(self.state, SlotState::Pending)
    }
}

struct Shared {
    queue: Mutex<Vec<Task>>,
    cv: Condvar,
    slots: Vec<Mutex<Slot>>,
    done: AtomicBool,
    terminal: AtomicUsize,
    fatal: Mutex<Option<DistError>>,
    retries: AtomicUsize,
    spec_launched: AtomicUsize,
    spec_wins: AtomicUsize,
    retry_log: Mutex<Vec<RetryEvent>>,
}

impl Shared {
    fn new(n: usize) -> Shared {
        let now = Instant::now();
        Shared {
            queue: Mutex::new(
                (0..n)
                    .map(|v| Task {
                        vertex: v,
                        attempt: 0,
                        speculative: false,
                        not_before: now,
                        cancel: CancelToken::new(),
                    })
                    .collect(),
            ),
            cv: Condvar::new(),
            slots: (0..n).map(|_| Mutex::new(Slot::new())).collect(),
            done: AtomicBool::new(false),
            terminal: AtomicUsize::new(0),
            fatal: Mutex::new(None),
            retries: AtomicUsize::new(0),
            spec_launched: AtomicUsize::new(0),
            spec_wins: AtomicUsize::new(0),
            retry_log: Mutex::new(Vec::new()),
        }
    }

    /// Marks one vertex terminally resolved; stops the pool when all are.
    fn finish_one(&self) {
        if self.terminal.fetch_add(1, Ordering::SeqCst) + 1 == self.slots.len() {
            self.stop();
        }
    }

    /// Records the job-fatal error (first one wins) and stops the pool.
    fn fail_job(&self, e: DistError) {
        {
            let mut f = self.fatal.lock();
            if f.is_none() {
                *f = Some(e);
            }
        }
        self.stop();
    }

    fn stop(&self) {
        self.done.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Pops the next eligible task, waiting for backoff windows; `None`
    /// once the pool is shutting down.
    fn next_task(&self) -> Option<Task> {
        let mut q = self.queue.lock();
        loop {
            if self.is_done() {
                return None;
            }
            let now = Instant::now();
            if let Some(pos) = q.iter().position(|t| t.not_before <= now) {
                return Some(q.swap_remove(pos));
            }
            let wait = q
                .iter()
                .map(|t| t.not_before.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(5))
                .max(Duration::from_micros(100));
            q = self.cv.wait_timeout(q, wait);
        }
    }

    /// Handles a transient attempt failure: schedule a retry while the
    /// budget lasts, otherwise fail the job once no sibling attempt can
    /// still rescue the vertex. Caller holds the slot lock.
    fn transient_failure(
        &self,
        cfg: &RuntimeConfig,
        slot: &mut Slot,
        vertex: usize,
        attempt: u32,
        fail: VertexFailure,
    ) {
        slot.failed_attempts += 1;
        let job_failing = self.fatal.lock().is_some();
        if !job_failing && slot.failed_attempts < cfg.retry.max_attempts {
            let next = slot.next_attempt;
            slot.next_attempt += 1;
            slot.queued += 1;
            let backoff = cfg.retry.backoff(vertex, slot.failed_attempts);
            self.retries.fetch_add(1, Ordering::SeqCst);
            self.retry_log.lock().push(RetryEvent {
                vertex,
                attempt,
                reason: fail.message,
                backoff,
            });
            self.queue.lock().push(Task {
                vertex,
                attempt: next,
                speculative: false,
                not_before: Instant::now() + backoff,
                cancel: CancelToken::new(),
            });
            self.cv.notify_all();
        } else if slot.inflight.is_empty() && slot.queued == 0 {
            // Nothing left that could still produce a result.
            slot.state = SlotState::Failed;
            let e = if fail.panicked {
                DistError::VertexPanic {
                    vertex,
                    payload: fail.message,
                }
            } else {
                DistError::RetriesExhausted {
                    vertex,
                    attempts: slot.failed_attempts,
                    last: fail.message,
                }
            };
            self.fail_job(e);
        }
        // Otherwise a queued retry or speculative sibling may still win.
    }
}

/// The deliberate injection point for [`FaultKind::Panic`] — the one
/// place non-test scheduler code is allowed to panic, because the panic
/// is immediately caught by the vertex boundary it exists to test.
#[allow(clippy::panic)]
fn injected_panic(vertex: usize, attempt: u32) -> Value {
    panic!("injected panic: vertex {vertex} attempt {attempt}")
}

/// Runs one attempt: consult the fault plan, then the real vertex body
/// under `catch_unwind`. `None` means the attempt was cooperatively
/// cancelled mid-stall and produced no outcome.
fn run_attempt<F>(
    cfg: &RuntimeConfig,
    task: &Task,
    part: &Column,
    f: &F,
) -> Option<Result<Value, VertexFailure>>
where
    F: Fn(usize, &Column) -> Result<Value, VertexFailure> + Sync,
{
    match cfg.faults.lookup(task.vertex, task.attempt) {
        Some(FaultKind::Error) => {
            return Some(Err(VertexFailure::transient(format!(
                "injected fault: vertex {} attempt {}",
                task.vertex, task.attempt
            ))))
        }
        Some(FaultKind::Panic) => {
            let r = catch_unwind(AssertUnwindSafe(|| injected_panic(task.vertex, task.attempt)));
            return Some(match r {
                Ok(v) => Ok(v), // unreachable: injected_panic always panics
                Err(p) => Err(VertexFailure::panic(fault::panic_payload(p.as_ref()))),
            });
        }
        // Cancelled while stalling: a losing straggler with no outcome.
        Some(FaultKind::Delay(d)) if !task.cancel.sleep_cooperatively(*d) => return None,
        Some(FaultKind::Delay(_)) => {}
        None => {}
    }
    match catch_unwind(AssertUnwindSafe(|| f(task.vertex, part))) {
        Ok(r) => Some(r),
        Err(p) => Some(Err(VertexFailure::panic(fault::panic_payload(p.as_ref())))),
    }
}

/// Records the outcome of an attempt against its vertex slot.
fn record_outcome(
    sh: &Shared,
    cfg: &RuntimeConfig,
    task: &Task,
    started: Instant,
    outcome: Option<Result<Value, VertexFailure>>,
) {
    let mut slot = sh.slots[task.vertex].lock();
    // De-register from inflight. An attempt the monitor already declared
    // timed out is no longer tracked; its failure was accounted there.
    let tracked = match slot.inflight.iter().position(|i| i.attempt == task.attempt) {
        Some(pos) => {
            slot.inflight.swap_remove(pos);
            true
        }
        None => false,
    };
    let Some(outcome) = outcome else {
        return; // cancelled stall: no result to record
    };
    if !slot.is_pending() {
        return; // a sibling attempt already resolved this vertex
    }
    match outcome {
        Ok(v) => {
            slot.state = SlotState::Done;
            slot.value = Some(v);
            slot.wall = started.elapsed();
            slot.won_by_speculation = task.speculative;
            if task.speculative {
                sh.spec_wins.fetch_add(1, Ordering::SeqCst);
            }
            for i in slot.inflight.drain(..) {
                i.cancel.cancel();
            }
            sh.finish_one();
        }
        Err(fail) => match fail.class {
            FailureClass::Deterministic => {
                // Dryad's contract says re-execution cannot change the
                // answer; a deterministic failure *is* the answer.
                slot.state = SlotState::Failed;
                for i in slot.inflight.drain(..) {
                    i.cancel.cancel();
                }
                let attempts = slot.next_attempt;
                sh.fail_job(DistError::VertexFailed {
                    vertex: task.vertex,
                    attempts,
                    message: fail.message,
                });
            }
            FailureClass::Transient => {
                if tracked {
                    sh.transient_failure(cfg, &mut slot, task.vertex, task.attempt, fail);
                }
            }
        },
    }
}

/// The monitor pass: declare timed-out attempts transient failures and
/// launch speculative backups for stragglers.
fn monitor_tick(sh: &Shared, cfg: &RuntimeConfig) {
    let now = Instant::now();
    // Attempt deadlines → transient failures (the stuck attempt keeps
    // running — threads are not preemptible — but a replacement is
    // scheduled and the stall, if injected, is cooperatively cancelled).
    if let Some(deadline) = cfg.retry.attempt_deadline {
        for (v, s) in sh.slots.iter().enumerate() {
            let mut slot = s.lock();
            if !slot.is_pending() {
                continue;
            }
            let mut expired = Vec::new();
            let mut live = Vec::new();
            for i in slot.inflight.drain(..) {
                if now.duration_since(i.started) > deadline {
                    expired.push(i);
                } else {
                    live.push(i);
                }
            }
            slot.inflight = live;
            for i in expired {
                i.cancel.cancel();
                let fail = VertexFailure::transient(format!(
                    "attempt deadline {deadline:?} exceeded at vertex {v}"
                ));
                sh.transient_failure(cfg, &mut slot, v, i.attempt, fail);
            }
        }
    }
    // Straggler speculation.
    if cfg.speculation.enabled {
        let completed: Vec<Duration> = sh
            .slots
            .iter()
            .filter_map(|s| {
                let slot = s.lock();
                match slot.state {
                    SlotState::Done => Some(slot.wall),
                    _ => None,
                }
            })
            .collect();
        let Some(threshold) = cfg.speculation.threshold(&completed) else {
            return;
        };
        for (v, s) in sh.slots.iter().enumerate() {
            let mut slot = s.lock();
            if !slot.is_pending()
                || slot.backups >= cfg.speculation.max_backups
                || slot.inflight.is_empty()
            {
                continue;
            }
            let Some(oldest) = slot.inflight.iter().map(|i| i.started).min() else {
                continue;
            };
            if now.duration_since(oldest) <= threshold {
                continue;
            }
            let attempt = slot.next_attempt;
            slot.next_attempt += 1;
            slot.backups += 1;
            slot.queued += 1;
            sh.spec_launched.fetch_add(1, Ordering::SeqCst);
            sh.queue.lock().push(Task {
                vertex: v,
                attempt,
                speculative: true,
                not_before: now,
                cancel: CancelToken::new(),
            });
            sh.cv.notify_all();
        }
    }
}

/// The fault-tolerant `HomomorphicApply`: applies `f` to every partition
/// on a pool of `workers` threads, retrying transient failures with
/// backoff, speculatively duplicating stragglers, and isolating panics —
/// results are collected in partition order.
///
/// # Errors
///
/// [`DistError::VertexFailed`] for deterministic failures (never
/// retried), [`DistError::VertexPanic`] / [`DistError::RetriesExhausted`]
/// when the transient-retry budget runs out.
pub fn homomorphic_apply_rt<F>(
    partitions: &[Column],
    workers: usize,
    cfg: &RuntimeConfig,
    f: F,
) -> Result<(Vec<Value>, ApplyStats), DistError>
where
    F: Fn(usize, &Column) -> Result<Value, VertexFailure> + Sync,
{
    let n = partitions.len();
    if n == 0 {
        return Ok((Vec::new(), ApplyStats::default()));
    }
    let workers = workers.clamp(1, n);
    let sh = Shared::new(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                while let Some(task) = sh.next_task() {
                    {
                        let mut slot = sh.slots[task.vertex].lock();
                        slot.queued = slot.queued.saturating_sub(1);
                        if !slot.is_pending() {
                            continue; // stale task for a resolved vertex
                        }
                        slot.inflight.push(Inflight {
                            attempt: task.attempt,
                            started: Instant::now(),
                            cancel: task.cancel.clone(),
                        });
                    }
                    let started = Instant::now();
                    let outcome = run_attempt(cfg, &task, &partitions[task.vertex], &f);
                    record_outcome(&sh, cfg, &task, started, outcome);
                }
            });
        }
        // This thread is the monitor: watch for stragglers / timeouts.
        while !sh.is_done() {
            std::thread::sleep(Duration::from_micros(500));
            monitor_tick(&sh, cfg);
        }
        // Shutting down: release any attempt still stalling cooperatively.
        for s in &sh.slots {
            for i in &s.lock().inflight {
                i.cancel.cancel();
            }
        }
    });

    if let Some(e) = sh.fatal.lock().take() {
        return Err(e);
    }
    let mut values = Vec::with_capacity(n);
    let mut stats = ApplyStats {
        retries: sh.retries.load(Ordering::SeqCst),
        speculation_launched: sh.spec_launched.load(Ordering::SeqCst),
        speculation_wins: sh.spec_wins.load(Ordering::SeqCst),
        vertex_attempts: Vec::with_capacity(n),
        vertex_wall: Vec::with_capacity(n),
        retry_log: std::mem::take(&mut *sh.retry_log.lock()),
    };
    for (i, s) in sh.slots.into_iter().enumerate() {
        let slot = s.into_inner();
        stats.vertex_attempts.push(slot.next_attempt);
        stats.vertex_wall.push(slot.wall);
        match (slot.state, slot.value) {
            (SlotState::Done, Some(v)) => values.push(v),
            _ => {
                // Unreachable when the scheduler is correct: every vertex
                // either resolves or fails the job with its cause.
                return Err(DistError::Vertex(format!(
                    "vertex {i} left unresolved by the scheduler"
                )));
            }
        }
    }
    Ok((values, stats))
}

/// Applies `f` to every partition on a pool of `workers` threads and
/// collects results in partition order — the `HomomorphicApply` operator
/// added to PLINQ in §6 ("maps a function across partitions in parallel,
/// as opposed to each element").
///
/// Errors from `f` are treated as deterministic (never retried),
/// matching the pre-fault-tolerance contract of this function; panics in
/// `f` are isolated and retried. Use [`homomorphic_apply_rt`] for the
/// full classified interface.
///
/// # Errors
///
/// As [`homomorphic_apply_rt`].
pub fn homomorphic_apply<F>(
    partitions: &[Column],
    workers: usize,
    f: F,
) -> Result<Vec<Value>, DistError>
where
    F: Fn(usize, &Column) -> Result<Value, String> + Sync,
{
    let cfg = RuntimeConfig::default();
    homomorphic_apply_rt(partitions, workers, &cfg, |i, part| {
        f(i, part).map_err(VertexFailure::deterministic)
    })
    .map(|(values, _)| values)
}

fn count_exchanged(values: &[Value]) -> usize {
    values
        .iter()
        .map(|v| match v {
            Value::Seq(s) => s.len(),
            _ => 1,
        })
        .sum()
}

fn run_chain_serial(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    engine: VertexEngine,
) -> Result<Value, DistError> {
    match engine {
        VertexEngine::Steno => {
            let compiled = CompiledQuery::from_chain(chain, udfs)
                .map_err(|e| DistError::Vertex(e.to_string()))?;
            compiled
                .run(ctx, udfs)
                .map_err(|e| DistError::Vertex(e.to_string()))
        }
        VertexEngine::Linq => chain_interp::execute_chain(chain, ctx, udfs)
            .map_err(|e| DistError::Vertex(e.to_string())),
    }
}

/// Executes a query over a partitioned collection on the simulated
/// cluster (§6), with the default fault-tolerance runtime (retries and
/// speculation on, no injected faults).
///
/// The query's root source must be `input`; any other named source it
/// references is *broadcast* — available in full at every vertex (the
/// k-means centroids, §7.2).
///
/// # Errors
///
/// Returns [`DistError`] for unloweable queries, mismatched roots, or
/// vertex failures.
pub fn execute_distributed(
    q: &QueryExpr,
    input: &DistributedCollection,
    broadcast: &DataContext,
    udfs: &UdfRegistry,
    spec: &ClusterSpec,
    engine: VertexEngine,
) -> Result<(Value, JobReport), DistError> {
    execute_distributed_with(q, input, broadcast, udfs, spec, engine, &RuntimeConfig::default())
}

/// As [`execute_distributed`], with an explicit [`RuntimeConfig`]
/// (retry policy, speculation policy, fault injection).
///
/// # Errors
///
/// As [`execute_distributed`].
#[allow(clippy::too_many_arguments)]
pub fn execute_distributed_with(
    q: &QueryExpr,
    input: &DistributedCollection,
    broadcast: &DataContext,
    udfs: &UdfRegistry,
    spec: &ClusterSpec,
    engine: VertexEngine,
    runtime: &RuntimeConfig,
) -> Result<(Value, JobReport), DistError> {
    // Types: the partitioned source plus broadcast sources.
    let mut sources = SourceTypes::from(broadcast);
    let elem_ty = input
        .partitions
        .first()
        .map(Column::elem_ty)
        .unwrap_or(Ty::F64);
    sources.insert(input.name.clone(), elem_ty);

    let t0 = Instant::now();
    let chain = lower(q, &sources, udfs).map_err(DistError::Lower)?;
    let chain = passes::optimize(&chain);
    match &chain.src {
        SrcDesc::Collection { name, .. } if *name == input.name => {}
        other => {
            return Err(DistError::BadRoot(format!(
                "query iterates {other:?}, expected the partitioned collection `{}`",
                input.name
            )))
        }
    }
    let plan = parallel::plan(&chain);
    let compiled_map = match engine {
        VertexEngine::Steno => Some(
            CompiledQuery::from_chain(&plan.map_chain, udfs)
                .map_err(|e| DistError::Vertex(e.to_string()))?,
        ),
        VertexEngine::Linq => None,
    };
    let compile_time = t0.elapsed();

    // ---- map phase (fault-tolerant) ----
    let t_map = Instant::now();
    let map_chain = &plan.map_chain;
    let (partials, stats) =
        homomorphic_apply_rt(&input.partitions, spec.workers, runtime, |_, part| {
            let mut ctx = broadcast.clone();
            ctx.insert(input.name.clone(), part.clone());
            match &compiled_map {
                // Engine runtime errors are data-dependent: deterministic,
                // never retried, surfaced identical to single-node runs.
                Some(c) => c
                    .run(&ctx, udfs)
                    .map_err(|e| VertexFailure::deterministic(e.to_string())),
                None => chain_interp::execute_chain(map_chain, &ctx, udfs)
                    .map_err(|e| VertexFailure::deterministic(e.to_string())),
            }
        })?;
    let map_wall = t_map.elapsed();
    let exchanged_elements = count_exchanged(&partials);
    let vertex_elements: Vec<usize> = input.partitions.iter().map(Column::len).collect();
    let input_elements: usize = vertex_elements.iter().sum();

    // ---- reduce phase ----
    let t_reduce = Instant::now();
    let result = reduce(&plan, partials, broadcast, udfs, engine)?;
    let reduce_wall = t_reduce.elapsed();

    let report = JobReport {
        partitions: input.partition_count(),
        workers: spec.workers,
        engine,
        compile_time,
        map_wall,
        reduce_wall,
        exchanged_elements,
        input_elements,
        vertex_elements,
        map_vm_engine: compiled_map.as_ref().map(CompiledQuery::engine),
        partial_aggregation: plan.uses_partial_aggregation(),
        graph: JobGraph::from_plan(&plan, input.partition_count()),
        retries: stats.retries,
        speculation_launched: stats.speculation_launched,
        speculation_wins: stats.speculation_wins,
        vertex_attempts: stats.vertex_attempts,
        vertex_wall: stats.vertex_wall,
        retry_log: stats.retry_log,
    };
    Ok((result, report))
}

/// Rebuilds a type-specialized column from boxed values, so downstream
/// Steno-compiled chains get the indexed access they were generated for.
/// Falls back to a boxed column when any element has an unexpected shape.
fn typed_column(values: Vec<Value>, elem_ty: &Ty) -> Column {
    fn collect<T>(values: &[Value], get: impl Fn(&Value) -> Option<T>) -> Option<Vec<T>> {
        values.iter().map(get).collect()
    }
    match elem_ty {
        Ty::F64 => match collect(&values, Value::as_f64) {
            Some(xs) => Column::from_f64(xs),
            None => Column::from_values(values),
        },
        Ty::I64 => match collect(&values, Value::as_i64) {
            Some(xs) => Column::from_i64(xs),
            None => Column::from_values(values),
        },
        Ty::Bool => match collect(&values, Value::as_bool) {
            Some(xs) => Column::from_bool(xs),
            None => Column::from_values(values),
        },
        _ => Column::from_values(values),
    }
}

fn reduce(
    plan: &ParallelPlan,
    partials: Vec<Value>,
    broadcast: &DataContext,
    udfs: &UdfRegistry,
    engine: VertexEngine,
) -> Result<Value, DistError> {
    let vertex = |e: steno_expr::EvalError| DistError::Vertex(e.to_string());
    match &plan.reduce {
        Reduce::Concat => {
            let mut out = Vec::new();
            for p in partials {
                match p {
                    Value::Seq(s) => out.extend(s.iter().cloned()),
                    other => out.push(other),
                }
            }
            Ok(Value::seq(out))
        }
        Reduce::CombinePartials(agg) => {
            // The Agg* vertex of Fig. 12.
            let mut iter = partials.into_iter();
            let mut acc = iter
                .next()
                .ok_or_else(|| DistError::Vertex("no partitions".into()))?;
            for p in iter {
                acc = chain_interp::combine_agg(agg, acc, p, udfs).map_err(vertex)?;
            }
            chain_interp::finish_agg(agg, acc, udfs).map_err(vertex)
        }
        Reduce::MergeGroupedPartials {
            agg,
            key_param,
            agg_param,
            result,
        } => {
            // Merge per-key partials in partition order, then finish and
            // apply the result selector.
            let mut index = std::collections::HashMap::new();
            let mut entries: Vec<(Value, Value)> = Vec::new();
            for p in partials {
                let Value::Seq(pairs) = p else {
                    return Err(DistError::Vertex(
                        "grouped map vertex did not yield pairs".into(),
                    ));
                };
                for kv in pairs.iter() {
                    let (k, partial) = kv
                        .as_pair()
                        .ok_or_else(|| DistError::Vertex("expected (key, acc) pairs".into()))?;
                    match index.get(&k.key()) {
                        None => {
                            index.insert(k.key(), entries.len());
                            entries.push((k.clone(), partial.clone()));
                        }
                        Some(&slot) => {
                            let merged = chain_interp::combine_agg(
                                agg,
                                entries[slot].1.clone(),
                                partial.clone(),
                                udfs,
                            )
                            .map_err(vertex)?;
                            entries[slot].1 = merged;
                        }
                    }
                }
            }
            let mut out = Vec::with_capacity(entries.len());
            for (k, acc) in entries {
                let fin = chain_interp::finish_agg(agg, acc, udfs).map_err(vertex)?;
                let env = Env::new()
                    .with(key_param.clone(), k)
                    .with(agg_param.clone(), fin);
                out.push(eval(result, &env, udfs).map_err(vertex)?);
            }
            Ok(Value::seq(out))
        }
        Reduce::MergeSorted {
            param,
            key,
            descending,
        } => {
            // Partition outputs are sorted runs; merge by key.
            let mut decorated: Vec<(Value, Value)> = Vec::new();
            for p in partials {
                let Value::Seq(items) = p else {
                    return Err(DistError::Vertex("sorted vertex did not yield a run".into()));
                };
                for v in items.iter() {
                    let env = Env::new().with(param.clone(), v.clone());
                    let k = eval(key, &env, udfs).map_err(vertex)?;
                    decorated.push((k, v.clone()));
                }
            }
            decorated.sort_by(|(a, _), (b, _)| {
                let ord = a.cmp_total(b);
                if *descending {
                    ord.reverse()
                } else {
                    ord
                }
            });
            Ok(Value::seq(decorated.into_iter().map(|(_, v)| v).collect()))
        }
        Reduce::SerialRest { ops, agg } => {
            // Concatenate and run the remainder serially.
            let mut merged = Vec::new();
            for p in partials {
                match p {
                    Value::Seq(s) => merged.extend(s.iter().cloned()),
                    other => merged.push(other),
                }
            }
            let elem_ty = plan.map_chain.elem_ty();
            let rest_chain = QuilChain {
                src: SrcDesc::Collection {
                    name: "__cluster_merged".into(),
                    elem_ty: elem_ty.clone(),
                },
                ops: ops.clone(),
                agg: agg.clone(),
            };
            let mut ctx = broadcast.clone();
            ctx.insert("__cluster_merged", typed_column(merged, &elem_ty));
            run_chain_serial(&rest_chain, &ctx, udfs, engine)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;
    use steno_linq::interp;
    use steno_query::{GroupResult, Query};

    fn x() -> Expr {
        Expr::var("x")
    }

    /// Structural equality with a relative tolerance on floats:
    /// partitioned partial aggregation reassociates floating-point sums,
    /// so distributed results may differ from serial ones in the last
    /// ulps (as on the real system).
    fn assert_close(a: &Value, b: &Value, what: &str) {
        match (a, b) {
            (Value::F64(x), Value::F64(y)) => {
                let close = (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()))
                    || (x.is_nan() && y.is_nan());
                assert!(close, "{what}: {x} vs {y}");
            }
            (Value::Seq(xs), Value::Seq(ys)) => {
                assert_eq!(xs.len(), ys.len(), "{what}: length");
                for (x, y) in xs.iter().zip(ys.iter()) {
                    assert_close(x, y, what);
                }
            }
            (Value::Pair(x), Value::Pair(y)) => {
                assert_close(&x.0, &y.0, what);
                assert_close(&x.1, &y.1, what);
            }
            (x, y) => assert_eq!(x.key(), y.key(), "{what}"),
        }
    }

    /// Distributed result == serial interpreter result, on both engines.
    #[track_caller]
    fn check_equivalence(q: QueryExpr, data: Vec<f64>, partitions: usize) {
        let udfs = UdfRegistry::new();
        let serial_ctx = DataContext::new().with_source("xs", data.clone());
        let expected = interp::execute(&q, &serial_ctx, &udfs).unwrap();
        let input = DistributedCollection::from_f64("xs", data, partitions);
        let spec = ClusterSpec { workers: 3 };
        for engine in [VertexEngine::Steno, VertexEngine::Linq] {
            let (got, _) = execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &udfs,
                &spec,
                engine,
            )
            .unwrap();
            assert_close(&got, &expected, &format!("engine {engine:?}, query {q}"));
        }
    }

    #[test]
    fn partial_sums_match_serial() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.01 - 3.0).collect();
        let q = Query::source("xs").select(x() * x(), "x").sum().build();
        check_equivalence(q, data, 7);
    }

    #[test]
    fn elementwise_chains_concatenate_in_order() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let q = Query::source("xs")
            .where_((x() % Expr::litf(3.0)).eq(Expr::litf(0.0)), "x")
            .select(x() * Expr::litf(2.0), "x")
            .build();
        check_equivalence(q, data, 4);
    }

    #[test]
    fn grouped_aggregation_merges_across_partitions() {
        let data: Vec<f64> = (0..500).map(|i| (i % 13) as f64).collect();
        let q = Query::source("xs")
            .group_by_result(
                x().floor(),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
            )
            .build();
        check_equivalence(q, data, 5);
    }

    #[test]
    fn average_finishes_after_combining() {
        let data: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let q = Query::source("xs").average().build();
        check_equivalence(q, data, 8);
    }

    #[test]
    fn order_by_merges_sorted_runs() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 7919) % 451) as f64).collect();
        let q = Query::source("xs").order_by(x(), "x").build();
        check_equivalence(q, data, 6);
    }

    #[test]
    fn take_runs_serial_remainder() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let q = Query::source("xs")
            .select(x() + Expr::litf(1.0), "x")
            .take(10)
            .sum()
            .build();
        check_equivalence(q, data, 4);
    }

    #[test]
    fn partial_aggregation_reduces_exchange_volume() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let q = Query::source("xs").sum().build();
        let input = DistributedCollection::from_f64("xs", data, 10);
        let udfs = UdfRegistry::new();
        let (_, report) = execute_distributed(
            &q,
            &input,
            &DataContext::new(),
            &udfs,
            &ClusterSpec { workers: 2 },
            VertexEngine::Steno,
        )
        .unwrap();
        assert!(report.partial_aggregation);
        // One partial accumulator per partition, not 10k elements.
        assert_eq!(report.exchanged_elements, 10);
        assert_eq!(report.partitions, 10);
        assert!(report.graph.to_string().contains("Agg*"));
        // A fault-free run does no recovery work.
        assert_eq!(report.retries, 0);
        assert_eq!(report.speculation_wins, 0);
        assert!(report.vertex_attempts.iter().all(|&a| a == 1));
        assert_eq!(report.vertex_wall.len(), 10);
        // Vectorized map vertices and coherent throughput accounting.
        assert_eq!(report.map_vm_engine, Some(steno_vm::EngineKind::Vectorized));
        assert_eq!(report.input_elements, 10_000);
        assert_eq!(report.vertex_elements, vec![1_000; 10]);
        // Throughput is either measurable and positive, or None on a
        // sub-tick phase — never a division by zero.
        if let Some(eps) = report.map_elements_per_sec() {
            assert!(eps > 0.0);
        }
        assert_eq!(report.vertex_elements_per_sec().len(), 10);
        let shown = report.to_string();
        assert!(shown.contains("steno/vectorized"), "display: {shown}");
        assert!(shown.contains("10000 in"), "display: {shown}");
        // The fault-tolerance summary is part of the human-readable form.
        assert!(shown.contains("retries 0"), "display: {shown}");
        assert!(shown.contains("speculation 0/"), "display: {shown}");
        assert!(shown.contains("10 attempts"), "display: {shown}");
        assert!(shown.contains("0 retry events"), "display: {shown}");
    }

    #[test]
    fn job_reports_fold_into_a_collector() {
        use steno_obs::{Collector, MemoryCollector};

        let data: Vec<f64> = (0..1_000).map(|i| i as f64).collect();
        let q = Query::source("xs").sum().build();
        let input = DistributedCollection::from_f64("xs", data, 4);
        let runtime = RuntimeConfig::with_faults(FaultPlan::fail_each_once(4));
        let (_, report) = execute_distributed_with(
            &q,
            &input,
            &DataContext::new(),
            &UdfRegistry::new(),
            &ClusterSpec { workers: 2 },
            VertexEngine::Steno,
            &runtime,
        )
        .unwrap();
        let metrics = MemoryCollector::new();
        report.record_to(&metrics);
        assert_eq!(metrics.counter_value("cluster.jobs"), 1);
        assert_eq!(metrics.counter_value("cluster.input_elements"), 1_000);
        assert_eq!(metrics.counter_value("cluster.retries"), report.retries as u64);
        assert!(metrics.counter_value("cluster.retries") >= 4);
        assert_eq!(
            metrics.counter_value("cluster.vertex_attempts"),
            report.total_attempts()
        );
        assert_eq!(
            metrics.counter_value("cluster.retry_events"),
            report.retry_log.len() as u64
        );
        let snap = metrics.snapshot();
        let vertex_hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "cluster.vertex_wall_ns")
            .unwrap();
        assert_eq!(vertex_hist.count as usize, report.vertex_wall.len());
        // Recording twice accumulates; a disabled collector is a no-op.
        report.record_to(&metrics);
        assert_eq!(metrics.counter_value("cluster.jobs"), 2);
        let noop = steno_obs::NoopCollector;
        assert!(!noop.enabled());
        report.record_to(&noop);
    }

    #[test]
    fn linq_vertices_report_no_vm_engine() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let q = Query::source("xs").sum().build();
        let input = DistributedCollection::from_f64("xs", data, 4);
        let (_, report) = execute_distributed(
            &q,
            &input,
            &DataContext::new(),
            &UdfRegistry::new(),
            &ClusterSpec { workers: 2 },
            VertexEngine::Linq,
        )
        .unwrap();
        assert_eq!(report.map_vm_engine, None);
        assert!(report.to_string().contains("engine linq"));
    }

    #[test]
    fn broadcast_sources_reach_every_vertex() {
        // xs.Select(x => x * scale.First()) with `scale` broadcast.
        let q = Query::source("xs")
            .select_query(
                Query::source("scale").first(),
                "x",
            )
            .sum()
            .build();
        let data: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
        let input = DistributedCollection::from_f64("xs", data, 2);
        let broadcast = DataContext::new().with_source("scale", vec![2.5f64]);
        let udfs = UdfRegistry::new();
        let (v, _) = execute_distributed(
            &q,
            &input,
            &broadcast,
            &udfs,
            &ClusterSpec { workers: 2 },
            VertexEngine::Steno,
        )
        .unwrap();
        assert_eq!(v, Value::F64(10.0));
    }

    #[test]
    fn root_must_be_the_partitioned_collection() {
        let q = Query::source("ys").sum().build();
        let input = DistributedCollection::from_f64("xs", vec![1.0], 1);
        let broadcast = DataContext::new().with_source("ys", vec![1.0f64]);
        let err = execute_distributed(
            &q,
            &input,
            &broadcast,
            &UdfRegistry::new(),
            &ClusterSpec::default(),
            VertexEngine::Steno,
        );
        assert!(matches!(err, Err(DistError::BadRoot(_))));
    }

    #[test]
    fn homomorphic_apply_collects_in_partition_order() {
        let parts: Vec<Column> =
            (0..6).map(|i| Column::from_f64(vec![i as f64])).collect();
        let got = homomorphic_apply(&parts, 3, |i, c| {
            Ok(Value::F64(c.to_values()[0].as_f64().unwrap() + i as f64))
        })
        .unwrap();
        let want: Vec<Value> = (0..6).map(|i| Value::F64(2.0 * i as f64)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn homomorphic_apply_surfaces_string_errors_without_retry() {
        let parts: Vec<Column> = (0..3).map(|_| Column::from_f64(vec![1.0])).collect();
        let err = homomorphic_apply(&parts, 2, |i, _| {
            if i == 1 {
                Err("bad partition".to_string())
            } else {
                Ok(Value::F64(0.0))
            }
        })
        .unwrap_err();
        match err {
            DistError::VertexFailed {
                vertex,
                attempts,
                message,
            } => {
                assert_eq!(vertex, 1);
                assert_eq!(attempts, 1, "string errors are deterministic: no retry");
                assert_eq!(message, "bad partition");
            }
            other => panic!("expected VertexFailed, got {other:?}"),
        }
    }

    #[test]
    fn panicking_closure_is_isolated_and_reported() {
        let parts: Vec<Column> = (0..2).map(|_| Column::from_f64(vec![1.0])).collect();
        let cfg = RuntimeConfig::default();
        let err = homomorphic_apply_rt(&parts, 2, &cfg, |i, _| {
            if i == 0 {
                panic!("udf exploded");
            }
            Ok(Value::F64(1.0))
        })
        .unwrap_err();
        match err {
            DistError::VertexPanic { vertex, payload } => {
                assert_eq!(vertex, 0);
                assert!(payload.contains("udf exploded"), "payload: {payload}");
            }
            other => panic!("expected VertexPanic, got {other:?}"),
        }
    }

    #[test]
    fn transient_injection_is_retried_to_success() {
        let parts: Vec<Column> =
            (0..4).map(|i| Column::from_f64(vec![i as f64])).collect();
        let cfg = RuntimeConfig::with_faults(FaultPlan::fail_once(2));
        let (values, stats) = homomorphic_apply_rt(&parts, 2, &cfg, |_, c| {
            Ok(Value::F64(c.to_values()[0].as_f64().unwrap()))
        })
        .unwrap();
        assert_eq!(values.len(), 4);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.vertex_attempts[2], 2);
        assert_eq!(stats.retry_log.len(), 1);
        assert_eq!(stats.retry_log[0].vertex, 2);
    }
}
