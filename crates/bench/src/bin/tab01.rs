//! Table 1 (§4.1): the mapping from LINQ operator classes to QUIL
//! symbols, regenerated from the lowering rules themselves: each
//! representative operator is lowered and its emitted symbols printed.

use steno_expr::{Expr, Ty, UdfRegistry};
use steno_query::typing::SourceTypes;
use steno_query::{GroupResult, Query, QueryExpr};
use steno_quil::lower;

fn symbols_of(q: QueryExpr) -> String {
    let srcs = SourceTypes::new().with("xs", Ty::F64).with("ys", Ty::F64);
    match lower(&q, &srcs, &UdfRegistry::new()) {
        Ok(chain) => chain.to_string(),
        Err(e) => format!("(unoptimized: {e})"),
    }
}

fn main() {
    let x = || Expr::var("x");
    println!("Table 1: LINQ operator classes -> QUIL symbols\n");
    println!("{:<11} {:<22} {:<28} QUIL sentence", "Class", "LINQ operator", "Haskell analogue");
    let rows: Vec<(&str, &str, &str, QueryExpr)> = vec![
        (
            "Source",
            "Range",
            "list constructor",
            Query::range(0, 10).build(),
        ),
        (
            "Source",
            "Repeat",
            "list constructor",
            Query::repeat(1.0f64, 10).build(),
        ),
        (
            "Transform",
            "Select",
            "map",
            Query::source("xs").select(x() * x(), "x").build(),
        ),
        (
            "Predicate",
            "Where",
            "filter",
            Query::source("xs").where_(x().gt(Expr::litf(0.0)), "x").build(),
        ),
        (
            "Predicate",
            "Take / Skip",
            "filter",
            Query::source("xs").skip(1).take(5).build(),
        ),
        (
            "Sink",
            "GroupBy",
            "foldl",
            Query::source("xs").group_by(x().floor(), "x").build(),
        ),
        (
            "Sink",
            "GroupBy(+agg, §4.3)",
            "foldl",
            Query::source("xs")
                .group_by_result(
                    x().floor(),
                    "x",
                    GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
                )
                .build(),
        ),
        (
            "Sink",
            "OrderBy",
            "foldl",
            Query::source("xs").order_by(x(), "x").build(),
        ),
        (
            "Aggregate",
            "Sum / Min / Aggregate",
            "foldl",
            Query::source("xs").sum().build(),
        ),
        (
            "Nested",
            "SelectMany",
            "concatMap",
            Query::source("xs")
                .select_many(Query::source("ys").select(x() * Expr::var("y"), "y"), "x")
                .build(),
        ),
    ];
    for (class, op, hask, q) in rows {
        println!("{class:<11} {op:<22} {hask:<28} {}", symbols_of(q));
    }
    println!("\n(Ret terminates every sentence; a nested query substitutes for a Trans/Pred symbol)");
}
