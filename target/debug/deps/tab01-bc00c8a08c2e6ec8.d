/root/repo/target/debug/deps/tab01-bc00c8a08c2e6ec8.d: crates/bench/src/bin/tab01.rs Cargo.toml

/root/repo/target/debug/deps/libtab01-bc00c8a08c2e6ec8.rmeta: crates/bench/src/bin/tab01.rs Cargo.toml

crates/bench/src/bin/tab01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
