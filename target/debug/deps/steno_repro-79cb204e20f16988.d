/root/repo/target/debug/deps/steno_repro-79cb204e20f16988.d: src/lib.rs src/prng.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_repro-79cb204e20f16988.rmeta: src/lib.rs src/prng.rs Cargo.toml

src/lib.rs:
src/prng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
