/root/repo/target/debug/examples/quickstart-c1763c50f4bb2c58.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c1763c50f4bb2c58: examples/quickstart.rs

examples/quickstart.rs:
