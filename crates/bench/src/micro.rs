#![allow(clippy::needless_range_loop, clippy::assign_op_pattern)]
// The hand-optimized baselines deliberately use indexed loops and
// explicit accumulator assignments: they are written in the style the
// paper's generated code uses, for a like-for-like comparison.

//! The four sequential microbenchmarks of §7.1 (Fig. 13), each in four
//! implementations: unoptimized LINQ (boxed iterator chains), runtime
//! Steno (the VM, with the one-off compilation measured separately),
//! compile-time Steno (the `steno!` macro), and the hand-optimized loop.

use std::time::{Duration, Instant};

use steno::steno;
use steno_expr::{DataContext, Expr, UdfRegistry, Value};
use steno_linq::Enumerable;
use steno_query::{GroupResult, Query, QueryExpr};
use steno_vm::CompiledQuery;

/// Timings of the four implementations of one microbenchmark.
#[derive(Clone, Copy, Debug)]
pub struct FourWay {
    /// Benchmark name.
    pub name: &'static str,
    /// Unoptimized LINQ (boxed iterator chains).
    pub linq: Duration,
    /// Runtime Steno execution (excluding compilation).
    pub steno_run: Duration,
    /// Runtime Steno one-off optimization cost.
    pub steno_compile: Duration,
    /// Compile-time Steno (`steno!` expansion, compiled by rustc).
    pub steno_macro: Duration,
    /// Hand-optimized imperative loop.
    pub hand: Duration,
}

impl FourWay {
    /// Formats one row normalized to the LINQ time, Fig. 13 style.
    pub fn row(&self) -> String {
        let linq = self.linq.as_secs_f64();
        let norm = |d: Duration| d.as_secs_f64() / linq;
        format!(
            "{:<6} linq {:>9.1?}  steno+comp {:>6.3}  steno {:>6.3}  macro {:>6.3}  hand {:>6.3}  | speedup {:.2}x",
            self.name,
            self.linq,
            norm(self.steno_run + self.steno_compile),
            norm(self.steno_run),
            norm(self.steno_macro),
            norm(self.hand),
            linq / self.steno_run.as_secs_f64(),
        )
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

fn run_vm(q: &QueryExpr, ctx: &DataContext) -> (Value, Duration, Duration) {
    let udfs = UdfRegistry::new();
    let t = Instant::now();
    let compiled = CompiledQuery::compile(q, ctx.into(), &udfs).expect("compile");
    let compile = t.elapsed();
    let (v, wall) = timed(|| compiled.run(ctx, &udfs).expect("run"));
    (v, wall, compile)
}

fn assert_f64_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
        "{what}: {a} vs {b}"
    );
}

/// `Sum`: the sum of `n` doubles.
pub fn bench_sum(data: &[f64]) -> FourWay {
    // LINQ.
    let xs = Enumerable::from_vec(data.to_vec());
    let (linq_v, linq) = timed(|| xs.sum());
    // Runtime Steno.
    let ctx = DataContext::new().with_source("xs", data.to_vec());
    let q = Query::source("xs").sum().build();
    let (vm_v, steno_run, steno_compile) = run_vm(&q, &ctx);
    // Compile-time Steno.
    let (macro_v, steno_macro) = timed(|| steno!((from x: f64 in data select x).sum()));
    // Hand loop.
    let (hand_v, hand) = timed(|| {
        let mut s = 0.0;
        for i in 0..data.len() {
            s += data[i];
        }
        s
    });
    assert_eq!(vm_v.as_f64().unwrap().to_bits(), hand_v.to_bits());
    assert_eq!(macro_v.to_bits(), hand_v.to_bits());
    assert_f64_close(linq_v, hand_v, "Sum");
    FourWay {
        name: "Sum",
        linq,
        steno_run,
        steno_compile,
        steno_macro,
        hand,
    }
}

/// `SumSq`: the sum of squares of `n` doubles (Fig. 1).
pub fn bench_sumsq(data: &[f64]) -> FourWay {
    let xs = Enumerable::from_vec(data.to_vec());
    let (linq_v, linq) = timed(|| xs.select(|x| x * x).sum());
    let ctx = DataContext::new().with_source("xs", data.to_vec());
    let q = Query::source("xs")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let (vm_v, steno_run, steno_compile) = run_vm(&q, &ctx);
    let (macro_v, steno_macro) = timed(|| steno!((from x: f64 in data select x * x).sum()));
    let (hand_v, hand) = timed(|| {
        let mut s = 0.0;
        for i in 0..data.len() {
            let x = data[i];
            s += x * x;
        }
        s
    });
    assert_eq!(vm_v.as_f64().unwrap().to_bits(), hand_v.to_bits());
    assert_eq!(macro_v.to_bits(), hand_v.to_bits());
    assert_f64_close(linq_v, hand_v, "SumSq");
    FourWay {
        name: "SumSq",
        linq,
        steno_run,
        steno_compile,
        steno_macro,
        hand,
    }
}

/// `Cart`: "calculate the Cartesian product of [two collections],
/// multiply together each pair, and sum" — the nested query of §5.
pub fn bench_cart(outer: &[f64], inner: &[f64]) -> FourWay {
    let xs = Enumerable::from_vec(outer.to_vec());
    let ys = Enumerable::from_vec(inner.to_vec());
    let (linq_v, linq) = timed(|| {
        xs.select_many(move |x| ys.select(move |y| x * y)).sum()
    });
    let ctx = DataContext::new()
        .with_source("xs", outer.to_vec())
        .with_source("ys", inner.to_vec());
    let q = Query::source("xs")
        .select_many(
            Query::source("ys").select(Expr::var("x") * Expr::var("y"), "y"),
            "x",
        )
        .sum()
        .build();
    let (vm_v, steno_run, steno_compile) = run_vm(&q, &ctx);
    let (macro_v, steno_macro) = timed(|| {
        steno!((from x: f64 in outer from y: f64 in inner select x * y).sum())
    });
    let (hand_v, hand) = timed(|| {
        let mut s = 0.0;
        for i in 0..outer.len() {
            let x = outer[i];
            for j in 0..inner.len() {
                s += x * inner[j];
            }
        }
        s
    });
    assert_eq!(vm_v.as_f64().unwrap().to_bits(), hand_v.to_bits());
    assert_eq!(macro_v.to_bits(), hand_v.to_bits());
    assert_f64_close(linq_v, hand_v, "Cart");
    FourWay {
        name: "Cart",
        linq,
        steno_run,
        steno_compile,
        steno_macro,
        hand,
    }
}

/// `Group`: "randomly generate 10 million double values according to a
/// one-dimensional mixture-of-Gaussians distribution, and compute a
/// binned histogram of the data" — GroupBy with an aggregating result
/// selector (§4.3).
pub fn bench_group(data: &[f64]) -> FourWay {
    // LINQ: full grouping, then counting each bag — what unoptimized
    // GroupBy does before the GroupByAggregate specialization.
    let xs = Enumerable::from_vec(data.to_vec());
    let (linq_v, linq) = timed(|| {
        let mut bins: Vec<(i64, i64)> = xs
            .group_by(|x| x.floor() as i64)
            .select(|g| (*g.key(), g.len() as i64))
            .to_vec();
        bins.sort();
        bins
    });
    let ctx = DataContext::new().with_source("xs", data.to_vec());
    let q = Query::source("xs")
        .group_by_result(
            Expr::var("x").floor(),
            "x",
            GroupResult::keyed(
                "k",
                "g",
                Query::over(Expr::var("g")).count().build(),
            ),
        )
        .build();
    let (vm_v, steno_run, steno_compile) = run_vm(&q, &ctx);
    let (macro_v, steno_macro) = timed(|| {
        let out: Vec<(f64, i64)> =
            steno!(data.group_by(|x: f64| x.floor()).select(|kv| (kv.0, kv.1.count())));
        out
    });
    let (hand_v, hand) = timed(|| {
        let mut index: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        let mut bins: Vec<(i64, i64)> = Vec::new();
        for i in 0..data.len() {
            let b = data[i].floor() as i64;
            match index.get(&b) {
                Some(&slot) => bins[slot].1 += 1,
                None => {
                    index.insert(b, bins.len());
                    bins.push((b, 1));
                }
            }
        }
        bins
    });
    // Cross-check the histograms.
    let mut hand_sorted = hand_v.clone();
    hand_sorted.sort();
    assert_eq!(linq_v, hand_sorted);
    let mut vm_bins: Vec<(i64, i64)> = vm_v
        .as_seq()
        .unwrap()
        .iter()
        .map(|kv| {
            let (k, c) = kv.as_pair().unwrap();
            (k.as_f64().unwrap() as i64, c.as_i64().unwrap())
        })
        .collect();
    vm_bins.sort();
    assert_eq!(vm_bins, hand_sorted);
    let mut macro_bins: Vec<(i64, i64)> = macro_v
        .iter()
        .map(|(k, c)| (*k as i64, *c))
        .collect();
    macro_bins.sort();
    assert_eq!(macro_bins, hand_sorted);
    FourWay {
        name: "Group",
        linq,
        steno_run,
        steno_compile,
        steno_macro,
        hand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn all_four_microbenchmarks_agree_across_implementations() {
        // Small sizes: the correctness cross-checks inside each bench are
        // the point here, not the timings.
        let data = workloads::uniform_doubles(4000, 11);
        let _ = bench_sum(&data);
        let _ = bench_sumsq(&data);
        let _ = bench_cart(&data[..200], &data[..50]);
        let gauss = workloads::mixture_of_gaussians(4000, 12);
        let _ = bench_group(&gauss);
    }
}
