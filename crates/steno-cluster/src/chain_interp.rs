//! The unoptimized vertex executor: a QUIL chain run through boxed
//! iterator state machines with per-element expression interpretation.
//!
//! This executes *exactly the same plan* as the Steno-compiled vertex —
//! including partial grouped aggregation — but through the lazy iterator
//! machinery of `steno-linq`, paying the virtual-call and interpretation
//! overheads that Steno eliminates. It is the "unoptimized" bar in the
//! distributed k-means experiment (Fig. 14).
//!
//! Environments are threaded through the iterator closures as a shared
//! cell with bind/restore bracketing (a stack discipline), rather than
//! cloned per element — the interpreter models the *iterator* overheads
//! under study, not accidental allocation.
//!
//! # Error discipline
//!
//! Data-dependent failures (division by zero, shape mismatches, unknown
//! UDFs) are *propagated as [`EvalError`]s*, never panics: the
//! fault-tolerant scheduler classifies engine errors as deterministic
//! (§6's contract — a re-executed vertex must fail identically), and that
//! only works if this engine reports failures the same structured way
//! `steno-vm` does. Because `steno_linq` iterator closures cannot return
//! `Result`, errors inside a pull are recorded in a shared first-error
//! cell ([`Scope`]) and surfaced when the chain's driver loop finishes;
//! closures yield inert placeholder values after a failure so the
//! remaining pulls are cheap and side-effect free.

use std::cell::RefCell;
use std::rc::Rc;

use steno_expr::eval::{eval, Env};
use steno_expr::{DataContext, EvalError, Expr, UdfRegistry, Value};
use steno_linq::Enumerable;
use steno_quil::ir::{AggDesc, PredKind, QuilChain, QuilOp, SinkKind, SrcDesc, TransKind};

/// The shared evaluation state threaded through iterator closures: the
/// variable environment plus a first-error cell.
#[derive(Clone)]
struct Scope {
    env: Rc<RefCell<Env>>,
    err: Rc<RefCell<Option<EvalError>>>,
}

impl Scope {
    fn new(env: Env) -> Scope {
        Scope {
            env: Rc::new(RefCell::new(env)),
            err: Rc::new(RefCell::new(None)),
        }
    }

    /// Records `e` unless an earlier failure already holds the cell.
    fn fail(&self, e: EvalError) {
        let mut slot = self.err.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// `true` once any closure has failed.
    fn failed(&self) -> bool {
        self.err.borrow().is_some()
    }

    /// Surfaces the recorded failure, if any.
    fn check(&self) -> Result<(), EvalError> {
        match &*self.err.borrow() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

/// The inert value closures yield after a failure has been recorded; it
/// is never observable (the driver loop surfaces the error instead).
fn placeholder() -> Value {
    Value::I64(0)
}

/// Applies an aggregate's finish projection.
///
/// # Errors
///
/// Propagates evaluation failures of the finish expression.
pub fn finish_agg(agg: &AggDesc, acc: Value, udfs: &UdfRegistry) -> Result<Value, EvalError> {
    match &agg.finish {
        None => Ok(acc),
        Some(f) => {
            let env = Env::new().with(agg.acc_param.clone(), acc);
            eval(f, &env, udfs)
        }
    }
}

/// Combines two partial accumulators with the aggregate's combiner.
///
/// # Errors
///
/// Returns [`EvalError::TypeMismatch`] if the aggregate declares no
/// combiner (callers normally check [`AggDesc::is_associative`] first),
/// and propagates evaluation failures of the combiner body.
pub fn combine_agg(
    agg: &AggDesc,
    a: Value,
    b: Value,
    udfs: &UdfRegistry,
) -> Result<Value, EvalError> {
    let combine = agg.combine.as_ref().ok_or_else(|| {
        EvalError::TypeMismatch("aggregate has no combiner for partial merge".into())
    })?;
    let env = Env::new()
        .with(agg.acc_param.clone(), a)
        .with(agg.rhs_param.clone(), b);
    eval(combine, &env, udfs)
}

fn value_to_enumerable(v: Value) -> Result<Enumerable<Value>, EvalError> {
    match v {
        Value::Seq(s) => Ok(Enumerable::from_vec(s.as_ref().clone())),
        Value::Row(r) => Ok(Enumerable::from_vec(
            r.iter().map(|x| Value::F64(*x)).collect(),
        )),
        other => Err(EvalError::TypeMismatch(format!(
            "expected a sequence-shaped value, found {other}"
        ))),
    }
}

/// Evaluates `body` with `param` bound to `arg`, restoring any shadowed
/// binding afterwards. On failure, records the error in `scope` and
/// yields a placeholder.
fn eval_with(body: &Expr, param: &str, arg: Value, scope: &Scope, udfs: &UdfRegistry) -> Value {
    if scope.failed() {
        return placeholder();
    }
    let mut e = scope.env.borrow_mut();
    let shadowed = e.bind_shadowing(param, arg);
    let out = eval(body, &e, udfs);
    e.restore(param, shadowed);
    drop(e);
    match out {
        Ok(v) => v,
        Err(err) => {
            scope.fail(err);
            placeholder()
        }
    }
}

/// As [`eval_with`] for predicate positions: a failure (or a non-boolean
/// result) is recorded and reads as `false`, so the stream drains without
/// further evaluation.
fn eval_bool_with(
    body: &Expr,
    param: &str,
    arg: Value,
    scope: &Scope,
    udfs: &UdfRegistry,
) -> bool {
    if scope.failed() {
        return false;
    }
    match eval_with(body, param, arg, scope, udfs).as_bool() {
        Some(b) => !scope.failed() && b,
        None => {
            scope.fail(EvalError::TypeMismatch(
                "predicate must yield a boolean".into(),
            ));
            false
        }
    }
}

fn src_enumerable(
    src: &SrcDesc,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    scope: &Scope,
) -> Result<Enumerable<Value>, EvalError> {
    match src {
        SrcDesc::Collection { name, .. } => {
            let col = ctx
                .source(name)
                .ok_or_else(|| EvalError::UnboundVariable(format!("source `{name}`")))?;
            Ok(Enumerable::from_vec(col.to_values()))
        }
        SrcDesc::Range { start, count } => Ok(Enumerable::range(*start, *count).select(Value::I64)),
        SrcDesc::Repeat { value, count } => Ok(Enumerable::repeat(value.clone(), *count)),
        SrcDesc::Expr { expr, .. } => {
            let v = eval(expr, &scope.env.borrow(), udfs)?;
            value_to_enumerable(v)
        }
    }
}

fn chain_enumerable(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    scope: &Scope,
) -> Result<Enumerable<Value>, EvalError> {
    let mut e = src_enumerable(&chain.src, ctx, udfs, scope)?;
    for op in &chain.ops {
        e = apply_op(e, op, ctx, udfs, scope);
    }
    Ok(e)
}

fn apply_op(
    input: Enumerable<Value>,
    op: &QuilOp,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    scope: &Scope,
) -> Enumerable<Value> {
    let ctx = ctx.clone();
    let udfs = udfs.clone();
    let scope = scope.clone();
    match op {
        QuilOp::Trans { param, kind, .. } => match kind.clone() {
            TransKind::Expr(body) => {
                let param = param.clone();
                input.select(move |v| eval_with(&body, &param, v, &scope, &udfs))
            }
            TransKind::Nested(nested) => {
                let param = param.clone();
                if nested.chain.is_scalar() {
                    // One scalar per element, optionally wrapped.
                    input.select(move |v| {
                        if scope.failed() {
                            return placeholder();
                        }
                        let shadowed = scope.env.borrow_mut().bind_shadowing(&param, v);
                        let agg = match execute_chain_cell(&nested.chain, &ctx, &udfs, &scope) {
                            Ok(agg) => agg,
                            Err(e) => {
                                scope.fail(e);
                                placeholder()
                            }
                        };
                        let out = match &nested.wrap {
                            None => agg,
                            Some((p, w)) => eval_with(w, p, agg, &scope, &udfs),
                        };
                        scope.env.borrow_mut().restore(&param, shadowed);
                        out
                    })
                } else {
                    // Splice (SelectMany). The binding must stay live
                    // while the inner enumerator is pulled; the select
                    // over the (eagerly materialized) inner results makes
                    // the bracketing safe.
                    input.select_many(move |v| {
                        if scope.failed() {
                            return Enumerable::from_vec(Vec::new());
                        }
                        let shadowed = scope.env.borrow_mut().bind_shadowing(&param, v);
                        let items = match chain_enumerable(&nested.chain, &ctx, &udfs, &scope) {
                            Ok(inner) => {
                                let items = inner.to_vec();
                                if scope.failed() {
                                    Vec::new()
                                } else {
                                    items
                                }
                            }
                            Err(e) => {
                                scope.fail(e);
                                Vec::new()
                            }
                        };
                        scope.env.borrow_mut().restore(&param, shadowed);
                        Enumerable::from_vec(items)
                    })
                }
            }
        },
        QuilOp::Pred { param, kind, .. } => match kind.clone() {
            PredKind::Expr(body) => {
                let param = param.clone();
                input.where_(move |v| eval_bool_with(&body, &param, v.clone(), &scope, &udfs))
            }
            PredKind::Nested(chain) => {
                let param = param.clone();
                input.where_(move |v| {
                    if scope.failed() {
                        return false;
                    }
                    let shadowed = scope.env.borrow_mut().bind_shadowing(&param, v.clone());
                    let out = match execute_chain_cell(&chain, &ctx, &udfs, &scope) {
                        Ok(v) => match v.as_bool() {
                            Some(b) => b,
                            None => {
                                scope.fail(EvalError::TypeMismatch(
                                    "nested predicate must yield a boolean".into(),
                                ));
                                false
                            }
                        },
                        Err(e) => {
                            scope.fail(e);
                            false
                        }
                    };
                    scope.env.borrow_mut().restore(&param, shadowed);
                    out
                })
            }
            PredKind::Take(n) => input.take(n),
            PredKind::Skip(n) => input.skip(n),
            PredKind::TakeWhile(body) => {
                let param = param.clone();
                input.take_while(move |v| eval_bool_with(&body, &param, v.clone(), &scope, &udfs))
            }
            PredKind::SkipWhile(body) => {
                let param = param.clone();
                // On failure the element reads as "keep from here": the
                // stream continues draining cheaply (every later eval is
                // short-circuited) and the recorded error surfaces at the
                // driver loop.
                input.skip_while(move |v| eval_bool_with(&body, &param, v.clone(), &scope, &udfs))
            }
        },
        QuilOp::Sink(sink) => {
            let sink = sink.clone();
            match sink.kind.clone() {
                SinkKind::GroupBy { key, elem, .. } => {
                    let param = sink.param.clone();
                    Enumerable::new(move || {
                        let mut index = std::collections::HashMap::new();
                        let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
                        let mut it = input.get_enumerator();
                        while it.move_next() {
                            if scope.failed() {
                                break;
                            }
                            let item = it.current();
                            let k = eval_with(&key, &param, item.clone(), &scope, &udfs);
                            let v = match &elem {
                                Some(sel) => eval_with(sel, &param, item, &scope, &udfs),
                                None => item,
                            };
                            let slot = *index.entry(k.key()).or_insert_with(|| {
                                groups.push((k, Vec::new()));
                                groups.len() - 1
                            });
                            groups[slot].1.push(v);
                        }
                        let pairs: Vec<Value> = groups
                            .into_iter()
                            .map(|(k, vs)| Value::pair(k, Value::seq(vs)))
                            .collect();
                        Enumerable::from_vec(pairs).get_enumerator()
                    })
                }
                SinkKind::GroupByAggregate {
                    key,
                    elem,
                    agg,
                    key_param,
                    agg_param,
                    result,
                    ..
                } => {
                    let param = sink.param.clone();
                    Enumerable::new(move || {
                        let init = match eval(&agg.init, &scope.env.borrow(), &udfs) {
                            Ok(v) => v,
                            Err(e) => {
                                scope.fail(e);
                                placeholder()
                            }
                        };
                        let mut index = std::collections::HashMap::new();
                        let mut entries: Vec<(Value, Value)> = Vec::new();
                        let mut it = input.get_enumerator();
                        while it.move_next() {
                            if scope.failed() {
                                break;
                            }
                            let item = it.current();
                            let k = eval_with(&key, &param, item.clone(), &scope, &udfs);
                            let v = match &elem {
                                Some(sel) => eval_with(sel, &param, item, &scope, &udfs),
                                None => item,
                            };
                            let slot = *index.entry(k.key()).or_insert_with(|| {
                                entries.push((k, init.clone()));
                                entries.len() - 1
                            });
                            // acc' = update(acc, v)
                            let mut e = scope.env.borrow_mut();
                            let s1 = e.bind_shadowing(&agg.acc_param, entries[slot].1.clone());
                            let s2 = e.bind_shadowing(&agg.elem_param, v);
                            let next = eval(&agg.update, &e, &udfs);
                            e.restore(&agg.elem_param, s2);
                            e.restore(&agg.acc_param, s1);
                            drop(e);
                            match next {
                                Ok(v) => entries[slot].1 = v,
                                Err(err) => {
                                    scope.fail(err);
                                    break;
                                }
                            }
                        }
                        let out: Vec<Value> = entries
                            .into_iter()
                            .map(|(k, acc)| {
                                if scope.failed() {
                                    return placeholder();
                                }
                                let fin = match finish_agg(&agg, acc, &udfs) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        scope.fail(e);
                                        placeholder()
                                    }
                                };
                                let mut e = scope.env.borrow_mut();
                                let s1 = e.bind_shadowing(&key_param, k);
                                let s2 = e.bind_shadowing(&agg_param, fin);
                                let r = eval(&result, &e, &udfs);
                                e.restore(&agg_param, s2);
                                e.restore(&key_param, s1);
                                drop(e);
                                match r {
                                    Ok(v) => v,
                                    Err(err) => {
                                        scope.fail(err);
                                        placeholder()
                                    }
                                }
                            })
                            .collect();
                        Enumerable::from_vec(out).get_enumerator()
                    })
                }
                SinkKind::OrderBy { key, descending } => {
                    let param = sink.param.clone();
                    Enumerable::new(move || {
                        let mut decorated: Vec<(Value, Value)> = Vec::new();
                        let mut it = input.get_enumerator();
                        while it.move_next() {
                            if scope.failed() {
                                break;
                            }
                            let item = it.current();
                            decorated.push((
                                eval_with(&key, &param, item.clone(), &scope, &udfs),
                                item,
                            ));
                        }
                        decorated.sort_by(|(a, _), (b, _)| {
                            let ord = a.cmp_total(b);
                            if descending {
                                ord.reverse()
                            } else {
                                ord
                            }
                        });
                        let items: Vec<Value> =
                            decorated.into_iter().map(|(_, v)| v).collect();
                        Enumerable::from_vec(items).get_enumerator()
                    })
                }
                SinkKind::Distinct => input.distinct_by(|v| v.key()),
                SinkKind::ToVec => {
                    let materialized = input.to_vec();
                    Enumerable::from_vec(materialized)
                }
            }
        }
    }
}

fn execute_chain_cell(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    scope: &Scope,
) -> Result<Value, EvalError> {
    let stream = chain_enumerable(chain, ctx, udfs, scope)?;
    match &chain.agg {
        None => {
            let items = stream.to_vec();
            scope.check()?;
            Ok(Value::seq(items))
        }
        Some(agg) => {
            let mut acc = eval(&agg.init, &scope.env.borrow(), udfs)?;
            let mut it = stream.get_enumerator();
            while it.move_next() {
                scope.check()?;
                let item = it.current();
                let mut e = scope.env.borrow_mut();
                let s1 = e.bind_shadowing(&agg.acc_param, acc);
                let s2 = e.bind_shadowing(&agg.elem_param, item);
                let next = eval(&agg.update, &e, udfs);
                e.restore(&agg.elem_param, s2);
                e.restore(&agg.acc_param, s1);
                drop(e);
                acc = next?;
            }
            scope.check()?;
            finish_agg(agg, acc, udfs)
        }
    }
}

/// Executes a QUIL chain through iterator state machines, with an
/// enclosing scope (nested chains reference outer variables).
///
/// # Errors
///
/// Returns a structured [`EvalError`] for unresolvable sources *and* for
/// data-dependent failures (division by zero, shape mismatches, unknown
/// UDFs) — never panics, so the distributed runtime can classify engine
/// errors as deterministic.
pub fn execute_chain_in(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    env: &Env,
) -> Result<Value, EvalError> {
    let scope = Scope::new(env.clone());
    execute_chain_cell(chain, ctx, udfs, &scope)
}

/// Executes a QUIL chain with an empty enclosing scope.
///
/// # Errors
///
/// As [`execute_chain_in`].
pub fn execute_chain(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
) -> Result<Value, EvalError> {
    execute_chain_in(chain, ctx, udfs, &Env::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::{Expr, Ty};
    use steno_linq::interp;
    use steno_query::{GroupResult, Query};
    use steno_quil::lower;

    fn ctx() -> DataContext {
        DataContext::new()
            .with_source("xs", vec![1.0, -2.0, 3.0, 4.5])
            .with_source("ns", vec![5i64, 2, 7, 2, 9])
    }

    /// chain-interp == AST interp for a set of plans.
    #[track_caller]
    fn check(q: steno_query::QueryExpr) {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let chain = lower(&q, &(&c).into(), &udfs).unwrap();
        let via_chain = execute_chain(&chain, &c, &udfs).unwrap();
        let via_ast = interp::execute(&q, &c, &udfs).unwrap();
        assert_eq!(via_chain.key(), via_ast.key(), "query {q}");
    }

    #[test]
    fn matches_ast_interpreter() {
        use steno_expr::Expr;
        let x = || Expr::var("x");
        check(Query::source("xs").select(x() * x(), "x").sum().build());
        check(
            Query::source("ns")
                .where_((x() % Expr::liti(2)).eq(Expr::liti(0)), "x")
                .build(),
        );
        check(Query::source("xs").take(2).min().build());
        check(
            Query::source("ns")
                .group_by_result(
                    x() % Expr::liti(3),
                    "x",
                    GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
                )
                .build(),
        );
        check(
            Query::source("xs")
                .select_many(
                    Query::source("xs").select(Expr::var("y") * x(), "y"),
                    "x",
                )
                .sum()
                .build(),
        );
        check(Query::source("xs").order_by(x(), "x").build());
        check(Query::source("ns").distinct().count().build());
        // Same parameter name reused across nesting levels: the
        // bind/restore stack discipline must keep them straight.
        check(
            Query::source("xs")
                .select_many(
                    Query::source("xs").select(Expr::var("x") + Expr::litf(1.0), "x"),
                    "x",
                )
                .sum()
                .build(),
        );
    }

    #[test]
    fn combine_and_finish_helpers() {
        let udfs = UdfRegistry::new();
        let agg = steno_quil::lower::builtin_agg(steno_query::AggOp::Average, &Ty::F64).unwrap();
        // Two partials: (sum, count) = (6, 2) and (4, 2).
        let a = Value::pair(Value::F64(6.0), Value::I64(2));
        let b = Value::pair(Value::F64(4.0), Value::I64(2));
        let merged = combine_agg(&agg, a, b, &udfs).unwrap();
        let fin = finish_agg(&agg, merged, &udfs).unwrap();
        assert_eq!(fin, Value::F64(2.5));
    }

    #[test]
    fn combine_without_combiner_errors_instead_of_panicking() {
        let udfs = UdfRegistry::new();
        // A user fold without a declared combiner is non-associative.
        let c = ctx();
        let q = Query::source("ns")
            .aggregate(Expr::liti(1), "a", "v", Expr::var("a") * Expr::var("v"))
            .build();
        let chain = lower(&q, &(&c).into(), &udfs).unwrap();
        let agg = chain.agg.expect("fold aggregates");
        assert!(!agg.is_associative());
        let err = combine_agg(&agg, Value::F64(1.0), Value::F64(2.0), &udfs).unwrap_err();
        assert!(matches!(err, EvalError::TypeMismatch(_)));
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_panic() {
        let c = ctx();
        let udfs = UdfRegistry::new();
        // 100 / x over ns hits x == 2? no — force a zero divisor.
        let q = Query::source("ns")
            .select(Expr::liti(100) / (Expr::var("x") - Expr::liti(2)), "x")
            .sum()
            .build();
        let chain = lower(&q, &(&c).into(), &udfs).unwrap();
        let err = execute_chain(&chain, &c, &udfs).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
        // Byte-identical to the single-node VM's message for the same data.
        assert_eq!(err.to_string(), "integer division by zero");
    }

    #[test]
    fn failing_predicate_surfaces_first_error() {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let q = Query::source("ns")
            .where_(
                (Expr::liti(7) % (Expr::var("x") - Expr::liti(2))).eq(Expr::liti(1)),
                "x",
            )
            .count()
            .build();
        let chain = lower(&q, &(&c).into(), &udfs).unwrap();
        let err = execute_chain(&chain, &c, &udfs).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
    }

    #[test]
    fn grouped_aggregate_errors_propagate() {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let q = Query::source("ns")
            .group_by_result(
                Expr::liti(10) / (Expr::var("x") - Expr::liti(2)),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
            )
            .build();
        let chain = lower(&q, &(&c).into(), &udfs).unwrap();
        let err = execute_chain(&chain, &c, &udfs).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
    }
}
