/root/repo/target/debug/deps/steno-af47b1e7c7edd08d.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-af47b1e7c7edd08d.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-af47b1e7c7edd08d.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
