/root/repo/target/debug/deps/break_even-a4127abd683de611.d: crates/bench/src/bin/break_even.rs Cargo.toml

/root/repo/target/debug/deps/libbreak_even-a4127abd683de611.rmeta: crates/bench/src/bin/break_even.rs Cargo.toml

crates/bench/src/bin/break_even.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
