/root/repo/target/release/examples/quickstart-75f43f5280d45786.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-75f43f5280d45786: examples/quickstart.rs

examples/quickstart.rs:
