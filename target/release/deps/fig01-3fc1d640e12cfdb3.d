/root/repo/target/release/deps/fig01-3fc1d640e12cfdb3.d: crates/bench/src/bin/fig01.rs

/root/repo/target/release/deps/fig01-3fc1d640e12cfdb3: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
