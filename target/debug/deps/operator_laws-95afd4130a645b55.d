/root/repo/target/debug/deps/operator_laws-95afd4130a645b55.d: crates/steno-linq/tests/operator_laws.rs

/root/repo/target/debug/deps/operator_laws-95afd4130a645b55: crates/steno-linq/tests/operator_laws.rs

crates/steno-linq/tests/operator_laws.rs:
