//! The vectorized execution tier: typed column batches with selection
//! vectors.
//!
//! The fusion tier ([`crate::fuse`]) already collapses whole f64 loops
//! into superinstructions, but it is single-typed: one f64 slot bank,
//! masks encoded as 1.0/0.0, i64 pipelines left on the scalar path. This
//! module generalizes it into a proper vectorized engine in the
//! MonetDB/X100 style the paper's §9 gestures at:
//!
//! * **three unboxed slot banks** (`f64`, `i64`, `bool`), each a vector
//!   of 1024-lane batches, so integer and boolean pipelines vectorize
//!   too and comparisons produce real `bool` masks instead of float
//!   encodings;
//! * a **selection vector** (`Vec<u32>` of surviving lane indices) built
//!   by `Filter` ops, with a dense fast path when no filter has fired —
//!   compute stays branch-free and dense, while trapping ops, folds, and
//!   effects consult only the live lanes (see [`crate::kernels`]);
//! * a **unified tape** interleaving compute, filters, reductions,
//!   grouped-aggregate upserts, and output pushes in statement order, so
//!   one loop body with mixed effects still becomes one batch program.
//!
//! Results are **bit-identical** to the scalar reference semantics:
//! folds and effects consume live lanes in ascending element order, and
//! trapping integer division checks exactly the lanes the scalar loop
//! would evaluate (a dead lane dividing by zero must *not* fault).
//! Anything that does not fit — boxed elements, UDF calls, nested
//! loops, multiple yields — falls back to the scalar bytecode path, and
//! the compiler records why (see `Program::batch_fallbacks`).

use std::sync::Arc;

use steno_expr::Value;

use crate::exec::VmError;
use crate::instr::{FReg, IReg, SinkId, SrcId};
use crate::kernels;
use crate::sink::{upsert_sf, upsert_si, ScalarKey, SinkRt};

/// Batch width: lanes processed per tape pass. One batch of any bank
/// type fits comfortably in L1.
pub const BATCH: usize = 1024;

/// Which unboxed bank a source column (or group key) lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// The f64 bank.
    F,
    /// The i64 bank.
    I,
    /// The bool bank.
    B,
}

/// A loop-invariant slot fill, run once before the chunk loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BInit {
    /// Broadcast an f64 constant.
    ConstF(u8, f64),
    /// Broadcast an i64 constant.
    ConstI(u8, i64),
    /// Broadcast a bool constant.
    ConstB(u8, bool),
    /// Broadcast f64 parameter `p` (index into the snapshot).
    ParamF(u8, u8),
    /// Broadcast i64 parameter `p`.
    ParamI(u8, u8),
    /// Broadcast bool parameter `p` (i64 snapshot, nonzero = true).
    ParamB(u8, u8),
}

/// A group key operand: which bank and slot the key batch lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyRef {
    /// f64 key slot.
    F(u8),
    /// i64 key slot.
    I(u8),
    /// bool key slot.
    B(u8),
}

/// One vectorized tape operation.
///
/// The compiler emits slots in SSA order *per bank* (every destination a
/// fresh slot), but [`crate::lifetimes::pack_batch_slots`] then reuses
/// dead slots, so a destination may alias any source — including itself.
/// The executor therefore uses the aliasing-safe `_any` kernels (see
/// [`crate::kernels`]), which read each lane before writing it. Compute
/// ops run dense; `Div`/`Rem` on i64, folds, and effects consult the
/// selection vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BOp {
    // -- loads ---------------------------------------------------------
    /// `f[d] = current batch of f64 source elements`.
    LoadF(u8),
    /// `i[d] = current batch of i64 source elements`.
    LoadI(u8),
    /// `b[d] = current batch of bool source elements`.
    LoadB(u8),

    // -- f64 arithmetic (dense; float ops never trap) ------------------
    /// `f[d] = f[a] + f[b]`.
    AddF(u8, u8, u8),
    /// `f[d] = f[a] - f[b]`.
    SubF(u8, u8, u8),
    /// `f[d] = f[a] * f[b]`.
    MulF(u8, u8, u8),
    /// `f[d] = f[a] / f[b]` (IEEE, no trap).
    DivF(u8, u8, u8),
    /// `f[d] = f[a] % f[b]` (IEEE, no trap).
    RemF(u8, u8, u8),
    /// `f[d] = f[a].min(f[b])`.
    MinF(u8, u8, u8),
    /// `f[d] = f[a].max(f[b])`.
    MaxF(u8, u8, u8),
    /// `f[d] = -f[a]`.
    NegF(u8, u8),
    /// `f[d] = f[a].abs()`.
    AbsF(u8, u8),
    /// `f[d] = f[a].sqrt()`.
    SqrtF(u8, u8),
    /// `f[d] = f[a].floor()`.
    FloorF(u8, u8),

    // -- i64 arithmetic (dense, wrapping — matches the scalar VM) ------
    /// `i[d] = i[a].wrapping_add(i[b])`.
    AddI(u8, u8, u8),
    /// `i[d] = i[a].wrapping_sub(i[b])`.
    SubI(u8, u8, u8),
    /// `i[d] = i[a].wrapping_mul(i[b])`.
    MulI(u8, u8, u8),
    /// `i[d] = i[a].min(i[b])`.
    MinI(u8, u8, u8),
    /// `i[d] = i[a].max(i[b])`.
    MaxI(u8, u8, u8),
    /// `i[d] = i[a].wrapping_neg()`.
    NegI(u8, u8),
    /// `i[d] = i[a].wrapping_abs()`.
    AbsI(u8, u8),

    // -- trapping i64 division (selected lanes only) -------------------
    /// `i[d] = i[a].wrapping_div(i[b])` on live lanes; faults iff a live
    /// lane's divisor is zero (checked in ascending element order).
    DivI(u8, u8, u8),
    /// `i[d] = i[a].wrapping_rem(i[b])` on live lanes; faults as `DivI`.
    RemI(u8, u8, u8),

    // -- guard-free i64 division (dense) -------------------------------
    /// `i[d] = i[a].wrapping_div(i[b])` dense, with no zero-divisor
    /// check and no selection consult: emitted only when interval
    /// analysis proved the divisor expression excludes zero on *every*
    /// input, so no lane — live or dead — can fault.
    DivIUnchecked(u8, u8, u8),
    /// `i[d] = i[a].wrapping_rem(i[b])` dense; same proof obligation as
    /// `DivIUnchecked`.
    RemIUnchecked(u8, u8, u8),

    // -- comparisons into the bool bank --------------------------------
    /// `b[d] = f[a] == f[b]`.
    EqFB(u8, u8, u8),
    /// `b[d] = f[a] != f[b]`.
    NeFB(u8, u8, u8),
    /// `b[d] = f[a] < f[b]`.
    LtFB(u8, u8, u8),
    /// `b[d] = f[a] <= f[b]`.
    LeFB(u8, u8, u8),
    /// `b[d] = f[a] > f[b]`.
    GtFB(u8, u8, u8),
    /// `b[d] = f[a] >= f[b]`.
    GeFB(u8, u8, u8),
    /// `b[d] = i[a] == i[b]`.
    EqIB(u8, u8, u8),
    /// `b[d] = i[a] != i[b]`.
    NeIB(u8, u8, u8),
    /// `b[d] = i[a] < i[b]`.
    LtIB(u8, u8, u8),
    /// `b[d] = i[a] <= i[b]`.
    LeIB(u8, u8, u8),
    /// `b[d] = i[a] > i[b]`.
    GtIB(u8, u8, u8),
    /// `b[d] = i[a] >= i[b]`.
    GeIB(u8, u8, u8),
    /// `b[d] = b[a] == b[b]`.
    EqBB(u8, u8, u8),
    /// `b[d] = b[a] != b[b]`.
    NeBB(u8, u8, u8),

    // -- boolean algebra (eager; compiler rejects trapping RHS) --------
    /// `b[d] = b[a] & b[b]`.
    AndB(u8, u8, u8),
    /// `b[d] = b[a] | b[b]`.
    OrB(u8, u8, u8),
    /// `b[d] = !b[a]`.
    NotB(u8, u8),

    // -- casts ---------------------------------------------------------
    /// `i[d] = f[a] as i64` (saturating; NaN → 0 — Rust `as` semantics,
    /// same as the scalar VM).
    F2I(u8, u8),
    /// `f[d] = i[a] as f64`.
    I2F(u8, u8),

    // -- lane-wise selects ---------------------------------------------
    /// `f[dst] = b[mask] ? f[t] : f[e]`.
    SelF {
        /// Destination f64 slot.
        dst: u8,
        /// Mask bool slot.
        mask: u8,
        /// Value when set.
        t: u8,
        /// Value when clear.
        e: u8,
    },
    /// `i[dst] = b[mask] ? i[t] : i[e]`.
    SelI {
        /// Destination i64 slot.
        dst: u8,
        /// Mask bool slot.
        mask: u8,
        /// Value when set.
        t: u8,
        /// Value when clear.
        e: u8,
    },
    /// `b[dst] = b[mask] ? b[t] : b[e]`.
    SelB {
        /// Destination bool slot.
        dst: u8,
        /// Mask bool slot.
        mask: u8,
        /// Value when set.
        t: u8,
        /// Value when clear.
        e: u8,
    },

    // -- selection ------------------------------------------------------
    /// Intersect the selection vector with mask `b[m]` (a `Where`
    /// clause). Subsequent folds/effects see only surviving lanes.
    Filter(u8),

    // -- folds (strict, ascending element order over live lanes) -------
    /// `f_acc[acc] += f[val]` per live lane.
    RedAddF {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
    },
    /// `f_acc[acc] = f_acc[acc].min(f[val])` per live lane.
    RedMinF {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
    },
    /// `f_acc[acc] = f_acc[acc].max(f[val])` per live lane.
    RedMaxF {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
    },
    /// `i_acc[acc] = i_acc[acc].wrapping_add(i[val])` per live lane.
    RedAddI {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
    },
    /// `i_acc[acc] = i_acc[acc].min(i[val])` per live lane.
    RedMinI {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
    },
    /// `i_acc[acc] = i_acc[acc].max(i[val])` per live lane.
    RedMaxI {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
    },

    // -- grouped aggregates (§4.3 sinks, live lanes in order) ----------
    /// `table[key] += f[val]` per live lane into a `GroupAggSF` sink.
    GroupAddF {
        /// The scalar-key f64 sink.
        sink: SinkId,
        /// Key operand.
        key: KeyRef,
        /// f64 value slot.
        val: u8,
    },
    /// `table[key] += i[val]` per live lane into a `GroupAggSI` sink
    /// (a count is a sum of a broadcast 1).
    GroupAddI {
        /// The scalar-key i64 sink.
        sink: SinkId,
        /// Key operand.
        key: KeyRef,
        /// i64 value slot.
        val: u8,
    },

    // -- output (live lanes in order) ----------------------------------
    /// Push `f[s]` per live lane to the output buffer.
    OutF(u8),
    /// Push `i[s]` per live lane.
    OutI(u8),
    /// Push `b[s]` per live lane.
    OutB(u8),

    // -- two-op fused kernels (see crate::fuse_kernels::peephole) ------
    /// `f[d] = f[a] * f[b] + f[c]` in one pass (two roundings, exactly
    /// as the unfused pair — not an FMA).
    MulAddF(u8, u8, u8, u8),
    /// `i[d] = i[a].wrapping_mul(i[b]).wrapping_add(i[c])` in one pass.
    MulAddI(u8, u8, u8, u8),
    /// `f_acc[acc] += f[a] * f[b]` per live lane, without materializing
    /// the product column.
    MulRedAddF {
        /// Accumulator index.
        acc: u8,
        /// Left factor slot.
        a: u8,
        /// Right factor slot.
        b: u8,
    },
    /// `i_acc[acc] = i_acc[acc].wrapping_add(i[a].wrapping_mul(i[b]))`
    /// per live lane.
    MulRedAddI {
        /// Accumulator index.
        acc: u8,
        /// Left factor slot.
        a: u8,
        /// Right factor slot.
        b: u8,
    },
}

/// The batch tape exactly as the vectorizer emitted it, captured before
/// the backend passes (`fuse_kernels::plan`, `fuse_kernels::peephole`,
/// `lifetimes::pack_batch_slots`) rewrite it. The tape verifier
/// ([`crate::check`]) symbolically executes this against the optimized
/// tape; execution never touches it.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchShadow {
    /// f64 slot count before packing.
    pub n_f: u8,
    /// i64 slot count before packing.
    pub n_i: u8,
    /// bool slot count before packing.
    pub n_b: u8,
    /// Pre-optimization loop-invariant slot fills.
    pub prologue: Vec<BInit>,
    /// Pre-optimization per-batch tape.
    pub tape: Vec<BOp>,
}

/// The evidence the vectorizer recorded when it dropped a division trap
/// guard: the divisor expression and the type environment it analyzed it
/// under. The tape verifier re-runs `steno_analysis::analyze` on this and
/// independently re-derives that the interval excludes zero — the record
/// says *what* was proven, never *that* it was proven.
#[derive(Clone, Debug, PartialEq)]
pub struct DivProof {
    /// The divisor expression of the guarded division.
    pub divisor: steno_expr::Expr,
    /// Name→type bindings in scope at the division site, outer bindings
    /// first (loop locals shadow outer registers, so they bind last).
    pub env: Vec<(String, steno_expr::Ty)>,
}

/// A compiled batch program: one whole fused loop, vectorized.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchProgram {
    /// The source column the loop iterates.
    pub src: SrcId,
    /// The source's element lane.
    pub src_lane: Lane,
    /// Loop-invariant f64 inputs, read from these registers at entry.
    pub f_params: Vec<FReg>,
    /// Loop-invariant i64/bool inputs (bools live in I registers).
    pub i_params: Vec<IReg>,
    /// f64 accumulator registers, read at entry and written back at exit.
    pub f_accs: Vec<FReg>,
    /// i64/bool accumulator registers.
    pub i_accs: Vec<IReg>,
    /// Number of f64 slots.
    pub n_f: u8,
    /// Number of i64 slots.
    pub n_i: u8,
    /// Number of bool slots.
    pub n_b: u8,
    /// Loop-invariant slot fills, run once.
    pub prologue: Vec<BInit>,
    /// Per-batch operations, in statement order.
    pub tape: Vec<BOp>,
    /// Whole-tape fused kernel, when [`crate::fuse_kernels::plan`]
    /// recognized the loop. The tape is kept alongside it: profiled runs
    /// and differential tests execute the kernel sequence, plain runs
    /// take the fused single-pass loop.
    pub fused: Option<crate::fuse_kernels::FusedTape>,
    /// Pre-optimization reference tape for translation validation, or
    /// `None` for hand-assembled programs.
    pub shadow: Option<Arc<BatchShadow>>,
    /// One entry per `DivIUnchecked`/`RemIUnchecked` in the shadow tape,
    /// in emission order: the interval evidence that licensed dropping
    /// each trap guard.
    pub div_proofs: Vec<DivProof>,
}

/// A shared batch-program handle (keeps [`crate::instr::Instr`] small).
pub type BatchRef = Arc<BatchProgram>;

/// A borrowed typed source column.
#[derive(Clone, Copy, Debug)]
pub enum BatchData<'a> {
    /// f64 column.
    F(&'a [f64]),
    /// i64 column.
    I(&'a [i64]),
    /// bool column.
    B(&'a [bool]),
}

impl BatchData<'_> {
    /// Number of elements in the column.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            BatchData::F(xs) => xs.len(),
            BatchData::I(xs) => xs.len(),
            BatchData::B(xs) => xs.len(),
        }
    }

    /// Whether the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Executes a batch program over a typed column.
///
/// `f_accs`/`i_accs` are the accumulator snapshots (updated in place and
/// written back to registers by the caller); `f_params`/`i_params` are
/// loop-invariant snapshots; `out` receives yielded elements in order.
/// When `prof` is set, per-chunk batch counts and selection-vector
/// density are accumulated into it (the `None` path stays untouched by
/// profiling).
///
/// # Errors
///
/// [`VmError::DivisionByZero`] when a live lane of a `DivI`/`RemI`
/// divides by zero — the same error the scalar loop would produce, and
/// with the same observable outcome, because the caller discards all
/// partial state on `Err`.
#[allow(clippy::too_many_arguments)]
pub fn run_batch(
    bp: &BatchProgram,
    data: BatchData<'_>,
    f_accs: &mut [f64],
    i_accs: &mut [i64],
    f_params: &[f64],
    i_params: &[i64],
    sinks: &mut [SinkRt],
    out: &mut Vec<Value>,
    mut prof: Option<&mut crate::profile::QueryProfile>,
    interrupt: &crate::interrupt::Interrupt,
) -> Result<(), VmError> {
    // Whole-tape fused kernels bypass the column banks entirely.
    // Profiled runs take the tape so batch/selection statistics (and the
    // differential tests built on them) still observe the kernel path.
    if prof.is_none() {
        if let Some(ft) = &bp.fused {
            return crate::fuse_kernels::run_fused(
                ft, data, f_accs, i_accs, f_params, i_params, interrupt,
            );
        }
    }
    let mut f_bank: Vec<[f64; BATCH]> = vec![[0.0; BATCH]; bp.n_f as usize];
    let mut i_bank: Vec<[i64; BATCH]> = vec![[0; BATCH]; bp.n_i as usize];
    let mut b_bank: Vec<[bool; BATCH]> = vec![[false; BATCH]; bp.n_b as usize];

    // Loop-invariant broadcasts.
    for init in &bp.prologue {
        match *init {
            BInit::ConstF(d, x) => kernels::splat(&mut f_bank[d as usize], x),
            BInit::ConstI(d, x) => kernels::splat(&mut i_bank[d as usize], x),
            BInit::ConstB(d, x) => kernels::splat(&mut b_bank[d as usize], x),
            BInit::ParamF(d, p) => kernels::splat(&mut f_bank[d as usize], f_params[p as usize]),
            BInit::ParamI(d, p) => kernels::splat(&mut i_bank[d as usize], i_params[p as usize]),
            BInit::ParamB(d, p) => {
                kernels::splat(&mut b_bank[d as usize], i_params[p as usize] != 0);
            }
        }
    }

    let total = data.len();
    let mut sel: Vec<u32> = Vec::with_capacity(BATCH);
    let mut start = 0;
    while start < total {
        // Batch boundaries are the vectorized tier's cooperative poll
        // points: cancellation/deadline latency is bounded by one
        // 1024-lane tape pass. Inert interrupts cost two Option checks.
        interrupt.check()?;
        let len = (total - start).min(BATCH);
        // Selection state resets per chunk: dense until a Filter fires.
        let mut dense = true;
        sel.clear();

        // Kernel helpers. Slot packing reuses dead slots, so a
        // destination may alias its sources; the `_any` kernels pick a
        // borrow strategy per aliasing pattern. Cross-bank ops (cmp,
        // convert) can never alias and use the tight kernels directly.
        macro_rules! binf {
            ($d:expr, $a:expr, $b:expr, $f:expr) => {
                kernels::map2_any(&mut f_bank, $d, $a, $b, len, $f)
            };
        }
        macro_rules! unf {
            ($d:expr, $a:expr, $f:expr) => {
                kernels::map1_any(&mut f_bank, $d, $a, len, $f)
            };
        }
        macro_rules! bini {
            ($d:expr, $a:expr, $b:expr, $f:expr) => {
                kernels::map2_any(&mut i_bank, $d, $a, $b, len, $f)
            };
        }
        macro_rules! uni {
            ($d:expr, $a:expr, $f:expr) => {
                kernels::map1_any(&mut i_bank, $d, $a, len, $f)
            };
        }
        macro_rules! cmpf {
            ($d:expr, $a:expr, $b:expr, $f:expr) => {
                kernels::cmp2(
                    &mut b_bank[$d as usize],
                    &f_bank[$a as usize],
                    &f_bank[$b as usize],
                    len,
                    $f,
                )
            };
        }
        macro_rules! cmpi {
            ($d:expr, $a:expr, $b:expr, $f:expr) => {
                kernels::cmp2(
                    &mut b_bank[$d as usize],
                    &i_bank[$a as usize],
                    &i_bank[$b as usize],
                    len,
                    $f,
                )
            };
        }
        macro_rules! binb {
            ($d:expr, $a:expr, $b:expr, $f:expr) => {
                kernels::map2_any(&mut b_bank, $d, $a, $b, len, $f)
            };
        }
        macro_rules! sel_opt {
            () => {
                if dense { None } else { Some(sel.as_slice()) }
            };
        }

        for op in &bp.tape {
            match *op {
                BOp::LoadF(d) => {
                    if let BatchData::F(xs) = data {
                        f_bank[d as usize][..len].copy_from_slice(&xs[start..start + len]);
                    } else {
                        unreachable!("LoadF over a non-f64 source");
                    }
                }
                BOp::LoadI(d) => {
                    if let BatchData::I(xs) = data {
                        i_bank[d as usize][..len].copy_from_slice(&xs[start..start + len]);
                    } else {
                        unreachable!("LoadI over a non-i64 source");
                    }
                }
                BOp::LoadB(d) => {
                    if let BatchData::B(xs) = data {
                        b_bank[d as usize][..len].copy_from_slice(&xs[start..start + len]);
                    } else {
                        unreachable!("LoadB over a non-bool source");
                    }
                }

                BOp::AddF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x + y),
                BOp::SubF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x - y),
                BOp::MulF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x * y),
                BOp::DivF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x / y),
                BOp::RemF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x % y),
                BOp::MinF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x.min(y)),
                BOp::MaxF(d, a, b) => binf!(d, a, b, |x: f64, y: f64| x.max(y)),
                BOp::NegF(d, a) => unf!(d, a, |x: f64| -x),
                BOp::AbsF(d, a) => unf!(d, a, |x: f64| x.abs()),
                BOp::SqrtF(d, a) => unf!(d, a, |x: f64| x.sqrt()),
                BOp::FloorF(d, a) => unf!(d, a, |x: f64| x.floor()),

                BOp::AddI(d, a, b) => bini!(d, a, b, |x: i64, y: i64| x.wrapping_add(y)),
                BOp::SubI(d, a, b) => bini!(d, a, b, |x: i64, y: i64| x.wrapping_sub(y)),
                BOp::MulI(d, a, b) => bini!(d, a, b, |x: i64, y: i64| x.wrapping_mul(y)),
                BOp::MinI(d, a, b) => bini!(d, a, b, |x: i64, y: i64| x.min(y)),
                BOp::MaxI(d, a, b) => bini!(d, a, b, |x: i64, y: i64| x.max(y)),
                BOp::NegI(d, a) => uni!(d, a, |x: i64| x.wrapping_neg()),
                BOp::AbsI(d, a) => uni!(d, a, |x: i64| x.wrapping_abs()),

                BOp::DivI(d, a, b) => {
                    kernels::check_divisors(&i_bank[b as usize], sel_opt!(), len)?;
                    kernels::map2_sel_any(
                        &mut i_bank,
                        d,
                        a,
                        b,
                        sel_opt!(),
                        len,
                        |x: i64, y: i64| x.wrapping_div(y),
                    );
                }
                BOp::RemI(d, a, b) => {
                    kernels::check_divisors(&i_bank[b as usize], sel_opt!(), len)?;
                    kernels::map2_sel_any(
                        &mut i_bank,
                        d,
                        a,
                        b,
                        sel_opt!(),
                        len,
                        |x: i64, y: i64| x.wrapping_rem(y),
                    );
                }

                BOp::DivIUnchecked(d, a, b) => {
                    bini!(d, a, b, |x: i64, y: i64| x.wrapping_div(y))
                }
                BOp::RemIUnchecked(d, a, b) => {
                    bini!(d, a, b, |x: i64, y: i64| x.wrapping_rem(y))
                }

                BOp::EqFB(d, a, b) => cmpf!(d, a, b, |x: f64, y: f64| x == y),
                BOp::NeFB(d, a, b) => cmpf!(d, a, b, |x: f64, y: f64| x != y),
                BOp::LtFB(d, a, b) => cmpf!(d, a, b, |x: f64, y: f64| x < y),
                BOp::LeFB(d, a, b) => cmpf!(d, a, b, |x: f64, y: f64| x <= y),
                BOp::GtFB(d, a, b) => cmpf!(d, a, b, |x: f64, y: f64| x > y),
                BOp::GeFB(d, a, b) => cmpf!(d, a, b, |x: f64, y: f64| x >= y),
                BOp::EqIB(d, a, b) => cmpi!(d, a, b, |x: i64, y: i64| x == y),
                BOp::NeIB(d, a, b) => cmpi!(d, a, b, |x: i64, y: i64| x != y),
                BOp::LtIB(d, a, b) => cmpi!(d, a, b, |x: i64, y: i64| x < y),
                BOp::LeIB(d, a, b) => cmpi!(d, a, b, |x: i64, y: i64| x <= y),
                BOp::GtIB(d, a, b) => cmpi!(d, a, b, |x: i64, y: i64| x > y),
                BOp::GeIB(d, a, b) => cmpi!(d, a, b, |x: i64, y: i64| x >= y),
                BOp::EqBB(d, a, b) => binb!(d, a, b, |x: bool, y: bool| x == y),
                BOp::NeBB(d, a, b) => binb!(d, a, b, |x: bool, y: bool| x != y),

                BOp::AndB(d, a, b) => binb!(d, a, b, |x: bool, y: bool| x & y),
                BOp::OrB(d, a, b) => binb!(d, a, b, |x: bool, y: bool| x | y),
                BOp::NotB(d, a) => kernels::map1_any(&mut b_bank, d, a, len, |x: bool| !x),

                BOp::F2I(d, a) => {
                    kernels::convert(&mut i_bank[d as usize], &f_bank[a as usize], len, |x: f64| {
                        x as i64
                    });
                }
                BOp::I2F(d, a) => {
                    kernels::convert(&mut f_bank[d as usize], &i_bank[a as usize], len, |x: i64| {
                        x as f64
                    });
                }

                BOp::SelF { dst, mask, t, e } => {
                    kernels::select_any(&mut f_bank, dst, &b_bank[mask as usize], t, e, len);
                }
                BOp::SelI { dst, mask, t, e } => {
                    kernels::select_any(&mut i_bank, dst, &b_bank[mask as usize], t, e, len);
                }
                BOp::SelB { dst, mask, t, e } => {
                    kernels::select_same_any(&mut b_bank, dst, mask, t, e, len);
                }

                BOp::Filter(m) => {
                    let mask = &b_bank[m as usize];
                    if dense {
                        kernels::filter_dense(&mut sel, mask, len);
                        dense = false;
                    } else {
                        kernels::filter_sel(&mut sel, mask);
                    }
                }

                BOp::RedAddF { acc, val } => kernels::fold(
                    &mut f_accs[acc as usize],
                    &f_bank[val as usize],
                    sel_opt!(),
                    len,
                    |a, x| a + x,
                ),
                BOp::RedMinF { acc, val } => kernels::fold(
                    &mut f_accs[acc as usize],
                    &f_bank[val as usize],
                    sel_opt!(),
                    len,
                    f64::min,
                ),
                BOp::RedMaxF { acc, val } => kernels::fold(
                    &mut f_accs[acc as usize],
                    &f_bank[val as usize],
                    sel_opt!(),
                    len,
                    f64::max,
                ),
                BOp::RedAddI { acc, val } => kernels::fold(
                    &mut i_accs[acc as usize],
                    &i_bank[val as usize],
                    sel_opt!(),
                    len,
                    |a: i64, x: i64| a.wrapping_add(x),
                ),
                BOp::RedMinI { acc, val } => kernels::fold(
                    &mut i_accs[acc as usize],
                    &i_bank[val as usize],
                    sel_opt!(),
                    len,
                    |a: i64, x: i64| a.min(x),
                ),
                BOp::RedMaxI { acc, val } => kernels::fold(
                    &mut i_accs[acc as usize],
                    &i_bank[val as usize],
                    sel_opt!(),
                    len,
                    |a: i64, x: i64| a.max(x),
                ),

                BOp::GroupAddF { sink, key, val } => {
                    let SinkRt::GroupAggSF {
                        index,
                        entries,
                        default,
                        ..
                    } = &mut sinks[sink as usize]
                    else {
                        unreachable!("vectorized group sum over a non-SF sink");
                    };
                    let vals = &f_bank[val as usize];
                    for_each_live(sel_opt!(), len, |k| {
                        let sk = read_key(key, &f_bank, &i_bank, &b_bank, k);
                        let slot = upsert_sf(index, entries, *default, sk);
                        entries[slot].1 += vals[k];
                    });
                }
                BOp::GroupAddI { sink, key, val } => {
                    let SinkRt::GroupAggSI {
                        index,
                        entries,
                        default,
                        ..
                    } = &mut sinks[sink as usize]
                    else {
                        unreachable!("vectorized group sum over a non-SI sink");
                    };
                    let vals = &i_bank[val as usize];
                    for_each_live(sel_opt!(), len, |k| {
                        let sk = read_key(key, &f_bank, &i_bank, &b_bank, k);
                        let slot = upsert_si(index, entries, *default, sk);
                        entries[slot].1 = entries[slot].1.wrapping_add(vals[k]);
                    });
                }

                BOp::OutF(s) => {
                    let v = &f_bank[s as usize];
                    for_each_live(sel_opt!(), len, |k| out.push(Value::F64(v[k])));
                }
                BOp::OutI(s) => {
                    let v = &i_bank[s as usize];
                    for_each_live(sel_opt!(), len, |k| out.push(Value::I64(v[k])));
                }
                BOp::OutB(s) => {
                    let v = &b_bank[s as usize];
                    for_each_live(sel_opt!(), len, |k| out.push(Value::Bool(v[k])));
                }

                BOp::MulAddF(d, a, b, c) => {
                    kernels::map3_any(&mut f_bank, d, a, b, c, len, |x: f64, y: f64, z: f64| {
                        x * y + z
                    });
                }
                BOp::MulAddI(d, a, b, c) => {
                    kernels::map3_any(&mut i_bank, d, a, b, c, len, |x: i64, y: i64, z: i64| {
                        x.wrapping_mul(y).wrapping_add(z)
                    });
                }
                BOp::MulRedAddF { acc, a, b } => kernels::fold2(
                    &mut f_accs[acc as usize],
                    &f_bank[a as usize],
                    &f_bank[b as usize],
                    sel_opt!(),
                    len,
                    |s, x, y| s + x * y,
                ),
                BOp::MulRedAddI { acc, a, b } => kernels::fold2(
                    &mut i_accs[acc as usize],
                    &i_bank[a as usize],
                    &i_bank[b as usize],
                    sel_opt!(),
                    len,
                    |s: i64, x: i64, y: i64| s.wrapping_add(x.wrapping_mul(y)),
                ),
            }
        }
        if let Some(p) = prof.as_deref_mut() {
            p.batches += 1;
            p.batch_elements_in += len as u64;
            p.batch_elements_selected += if dense { len } else { sel.len() } as u64;
        }
        start += len;
    }
    Ok(())
}

/// Runs `f` on each live lane index, in ascending element order.
#[inline]
fn for_each_live(sel: Option<&[u32]>, len: usize, mut f: impl FnMut(usize)) {
    match sel {
        None => {
            for k in 0..len {
                f(k);
            }
        }
        Some(sel) => {
            for &k in sel {
                f(k as usize);
            }
        }
    }
}

/// Reads a group key from the addressed bank lane.
#[inline]
fn read_key(
    key: KeyRef,
    f_bank: &[[f64; BATCH]],
    i_bank: &[[i64; BATCH]],
    b_bank: &[[bool; BATCH]],
    k: usize,
) -> ScalarKey {
    match key {
        KeyRef::F(s) => ScalarKey::F(f_bank[s as usize][k]),
        KeyRef::I(s) => ScalarKey::I(i_bank[s as usize][k]),
        KeyRef::B(s) => ScalarKey::B(b_bank[s as usize][k]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn empty_sinks() -> Vec<SinkRt> {
        Vec::new()
    }

    #[test]
    fn sum_of_squares_is_bit_identical() {
        // f0 = x; f1 = x*x; facc0 += f1
        let bp = BatchProgram {
            src: 0,
            src_lane: Lane::F,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![0],
            i_accs: vec![],
            n_f: 2,
            n_i: 0,
            n_b: 0,
            prologue: vec![],
            tape: vec![
                BOp::LoadF(0),
                BOp::MulF(1, 0, 0),
                BOp::RedAddF { acc: 0, val: 1 },
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let data: Vec<f64> = (0..2500).map(|i| (i as f64) * 0.37 - 400.0).collect();
        let mut f_accs = vec![0.0];
        let mut out = Vec::new();
        run_batch(
            &bp,
            BatchData::F(&data),
            &mut f_accs,
            &mut [],
            &[],
            &[],
            &mut empty_sinks(),
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        )
        .unwrap();
        let mut expected = 0.0;
        for &x in &data {
            expected += x * x;
        }
        assert_eq!(f_accs[0].to_bits(), expected.to_bits());
        assert!(out.is_empty());
    }

    #[test]
    fn filtered_i64_pipeline_counts_and_outputs_in_order() {
        // where n % 2 == 0 { count += 1; yield n * n }
        let bp = BatchProgram {
            src: 0,
            src_lane: Lane::I,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![],
            i_accs: vec![0],
            n_f: 0,
            n_i: 5,
            n_b: 1,
            prologue: vec![BInit::ConstI(1, 2), BInit::ConstI(2, 0), BInit::ConstI(4, 1)],
            tape: vec![
                BOp::LoadI(0),
                BOp::RemI(3, 0, 1),
                BOp::EqIB(0, 3, 2),
                BOp::Filter(0),
                BOp::RedAddI { acc: 0, val: 4 },
                BOp::OutI(3),
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let data: Vec<i64> = (1..=10).collect();
        let mut i_accs = vec![0];
        let mut out = Vec::new();
        run_batch(
            &bp,
            BatchData::I(&data),
            &mut [],
            &mut i_accs,
            &[],
            &[],
            &mut empty_sinks(),
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        )
        .unwrap();
        assert_eq!(i_accs[0], 5);
        // remainder slot for the surviving (even) lanes is 0 each time.
        assert_eq!(out, vec![Value::I64(0); 5]);
    }

    #[test]
    fn division_faults_only_on_live_lanes() {
        // where n != 0 { acc += 10 / n }
        let bp = BatchProgram {
            src: 0,
            src_lane: Lane::I,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![],
            i_accs: vec![0],
            n_f: 0,
            n_i: 4,
            n_b: 1,
            prologue: vec![BInit::ConstI(1, 0), BInit::ConstI(2, 10)],
            tape: vec![
                BOp::LoadI(0),
                BOp::NeIB(0, 0, 1),
                BOp::Filter(0),
                BOp::DivI(3, 2, 0),
                BOp::RedAddI { acc: 0, val: 3 },
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let mut i_accs = vec![0];
        let mut out = Vec::new();
        // A zero on a dead (filtered-out) lane must not fault.
        run_batch(
            &bp,
            BatchData::I(&[5, 0, 2]),
            &mut [],
            &mut i_accs,
            &[],
            &[],
            &mut empty_sinks(),
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        )
        .unwrap();
        assert_eq!(i_accs[0], 2 + 5);

        // The same program without the filter faults.
        let unguarded = BatchProgram {
            n_b: 0,
            tape: vec![
                BOp::LoadI(0),
                BOp::DivI(3, 2, 0),
                BOp::RedAddI { acc: 0, val: 3 },
            ],
            ..bp
        };
        let mut i_accs = vec![0];
        let r = run_batch(
            &unguarded,
            BatchData::I(&[5, 0, 2]),
            &mut [],
            &mut i_accs,
            &[],
            &[],
            &mut empty_sinks(),
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        );
        assert_eq!(r, Err(VmError::DivisionByZero));
    }

    #[test]
    fn grouped_sum_preserves_first_appearance_order() {
        // key = x % 3 (f64), table[key] += x
        let bp = BatchProgram {
            src: 0,
            src_lane: Lane::F,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![],
            i_accs: vec![],
            n_f: 3,
            n_i: 0,
            n_b: 0,
            prologue: vec![BInit::ConstF(1, 3.0)],
            tape: vec![
                BOp::LoadF(0),
                BOp::RemF(2, 0, 1),
                BOp::GroupAddF {
                    sink: 0,
                    key: KeyRef::F(2),
                    val: 0,
                },
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let mut sinks = vec![SinkRt::GroupAggSF {
            index: HashMap::default(),
            entries: Vec::new(),
            default: 0.0,
            last: 0,
        }];
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = Vec::new();
        run_batch(
            &bp,
            BatchData::F(&data),
            &mut [],
            &mut [],
            &[],
            &[],
            &mut sinks,
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        )
        .unwrap();
        let SinkRt::GroupAggSF { entries, .. } = &sinks[0] else {
            unreachable!()
        };
        // Keys appear in first-appearance order: 1, 2, 0.
        assert_eq!(
            entries,
            &vec![
                (ScalarKey::F(1.0), 1.0 + 4.0),
                (ScalarKey::F(2.0), 2.0 + 5.0),
                (ScalarKey::F(0.0), 3.0 + 6.0),
            ]
        );
    }

    #[test]
    fn params_broadcast_and_bool_sources_work() {
        // yield b ? p : q  over a bool source, p = 2.5, q = -1.0
        let bp = BatchProgram {
            src: 0,
            src_lane: Lane::B,
            f_params: vec![3, 4],
            i_params: vec![],
            f_accs: vec![],
            i_accs: vec![],
            n_f: 3,
            n_i: 0,
            n_b: 1,
            prologue: vec![BInit::ParamF(0, 0), BInit::ParamF(1, 1)],
            tape: vec![
                BOp::LoadB(0),
                BOp::SelF {
                    dst: 2,
                    mask: 0,
                    t: 0,
                    e: 1,
                },
                BOp::OutF(2),
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let mut out = Vec::new();
        run_batch(
            &bp,
            BatchData::B(&[true, false, true]),
            &mut [],
            &mut [],
            &[2.5, -1.0],
            &[],
            &mut empty_sinks(),
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        )
        .unwrap();
        assert_eq!(
            out,
            vec![Value::F64(2.5), Value::F64(-1.0), Value::F64(2.5)]
        );
    }

    #[test]
    fn multi_chunk_selection_resets_per_batch() {
        // where x > 0 { acc += x } over > 1 batch of data.
        let bp = BatchProgram {
            src: 0,
            src_lane: Lane::F,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![0],
            i_accs: vec![],
            n_f: 2,
            n_i: 0,
            n_b: 1,
            prologue: vec![BInit::ConstF(1, 0.0)],
            tape: vec![
                BOp::LoadF(0),
                BOp::GtFB(0, 0, 1),
                BOp::Filter(0),
                BOp::RedAddF { acc: 0, val: 0 },
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let data: Vec<f64> = (0..(BATCH * 2 + 17))
            .map(|i| if i % 3 == 0 { -1.0 } else { i as f64 })
            .collect();
        let mut f_accs = vec![0.0];
        let mut out = Vec::new();
        run_batch(
            &bp,
            BatchData::F(&data),
            &mut f_accs,
            &mut [],
            &[],
            &[],
            &mut empty_sinks(),
            &mut out,
            None,
            &crate::interrupt::Interrupt::none(),
        )
        .unwrap();
        let mut expected = 0.0;
        for &x in &data {
            if x > 0.0 {
                expected += x;
            }
        }
        assert_eq!(f_accs[0].to_bits(), expected.to_bits());
    }
}
