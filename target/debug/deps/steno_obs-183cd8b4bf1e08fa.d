/root/repo/target/debug/deps/steno_obs-183cd8b4bf1e08fa.d: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_obs-183cd8b4bf1e08fa.rmeta: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs Cargo.toml

crates/steno-obs/src/lib.rs:
crates/steno-obs/src/json.rs:
crates/steno-obs/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
