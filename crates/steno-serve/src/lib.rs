//! The service front end: Steno as a shared, multi-tenant query service.
//!
//! The paper measures Steno inside a single process, but motivates it
//! with services "used by millions of users" where query latency is a
//! product constraint. This crate is that deployment shape: a
//! [`QueryService`] owns a worker pool and a [`Steno`] engine (with its
//! bounded plan cache) and exposes `submit` / `wait` with the contract a
//! front end actually needs under load:
//!
//! * **Deadlines** — every admitted query carries one. It is enforced
//!   *inside* the VM via [`steno_vm::Interrupt`]: a query past its
//!   deadline aborts within one poll stride instead of holding a worker
//!   until the data runs out.
//! * **Cancellation** — a caller that stops caring cancels its ticket;
//!   the cluster's `CancelToken` is bridged into the VM as a cancel
//!   probe, and backoff sleeps observe it too.
//! * **Admission control** — bounded per-tenant queues with per-tenant
//!   in-flight quotas, dispatched round-robin so one tenant's flood
//!   cannot starve another. Overflow is *shed* with an explicit
//!   [`ServeError::Rejected`] carrying a retry hint — never an unbounded
//!   queue, never a panic.
//! * **Retries** — transient failures (the [`FailureClass`] taxonomy of
//!   `steno-cluster`) are retried with deterministically jittered,
//!   cancellation-aware backoff; deterministic failures fail fast and
//!   are negatively cached so repeat offenders don't recompile.
//! * **Graceful degradation** — a [`CompileBreaker`] watches compile
//!   latency and verifier rejections; under sustained pressure it pins
//!   new compilations to the scalar tier (cheap to compile, still
//!   correct) and recovers automatically once compiles look healthy.
//! * **Observability** — every decision (admit/shed/retry/degrade) and
//!   the end-to-end latency distribution land in a
//!   [`steno_obs::Collector`], from which [`SaturationReport`] derives
//!   the p50/p99 SLO view.
//!
//! [`FailureClass`]: steno_cluster::FailureClass
//! [`Steno`]: steno::Steno

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod breaker;
pub mod loadgen;
pub mod report;
pub mod service;

pub use breaker::{BreakerConfig, BreakerState, CompileBreaker};
pub use loadgen::{SplitMix64, Zipf};
pub use report::SaturationReport;
pub use service::{QueryRequest, QueryService, QueryTicket, ServeConfig, ServeError};
