/root/repo/target/debug/deps/steno_vm-ee59bea74c9a0e9f.d: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/debug/deps/steno_vm-ee59bea74c9a0e9f: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

crates/steno-vm/src/lib.rs:
crates/steno-vm/src/batch.rs:
crates/steno-vm/src/compile.rs:
crates/steno-vm/src/fuse.rs:
crates/steno-vm/src/exec.rs:
crates/steno-vm/src/instr.rs:
crates/steno-vm/src/interrupt.rs:
crates/steno-vm/src/kernels.rs:
crates/steno-vm/src/prepared.rs:
crates/steno-vm/src/profile.rs:
crates/steno-vm/src/query.rs:
crates/steno-vm/src/sink.rs:
