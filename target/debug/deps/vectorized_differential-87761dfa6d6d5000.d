/root/repo/target/debug/deps/vectorized_differential-87761dfa6d6d5000.d: crates/steno-vm/tests/vectorized_differential.rs Cargo.toml

/root/repo/target/debug/deps/libvectorized_differential-87761dfa6d6d5000.rmeta: crates/steno-vm/tests/vectorized_differential.rs Cargo.toml

crates/steno-vm/tests/vectorized_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
