/root/repo/target/debug/examples/codegen_tour-2aff5a4f3dc766f6.d: examples/codegen_tour.rs

/root/repo/target/debug/examples/codegen_tour-2aff5a4f3dc766f6: examples/codegen_tour.rs

examples/codegen_tour.rs:
