//! The cluster scheduler: map vertices on a worker pool, then reduce.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use steno_expr::eval::{eval, Env};
use steno_expr::{Column, DataContext, Ty, UdfRegistry, Value};
use steno_query::typing::SourceTypes;
use steno_query::QueryExpr;
use steno_quil::ir::{QuilChain, SrcDesc};
use steno_quil::parallel::{self, ParallelPlan, Reduce};
use steno_quil::{lower, passes, LowerError};
use steno_vm::CompiledQuery;

use crate::chain_interp;
use crate::job::JobGraph;
use crate::partition::DistributedCollection;

/// Which executor runs inside each map vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexEngine {
    /// Steno-optimized: the subchain compiled once and applied per
    /// partition (the `HomomorphicApply` of §6).
    Steno,
    /// Unoptimized: the same subchain through boxed iterator state
    /// machines.
    Linq,
}

/// The simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of worker threads executing vertices.
    pub workers: usize,
}

impl Default for ClusterSpec {
    fn default() -> ClusterSpec {
        ClusterSpec { workers: 4 }
    }
}

/// What a distributed run did, for experiments and tests.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Number of input partitions (map vertices).
    pub partitions: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Which engine ran the map vertices.
    pub engine: VertexEngine,
    /// One-off optimization cost (zero for [`VertexEngine::Linq`]).
    pub compile_time: Duration,
    /// Wall time of the map phase.
    pub map_wall: Duration,
    /// Wall time of the reduce phase.
    pub reduce_wall: Duration,
    /// Elements crossing the map → reduce boundary (the coordination
    /// volume that partial aggregation shrinks, §6).
    pub exchanged_elements: usize,
    /// Whether the plan used `Agg_i`/partial-sink decomposition.
    pub partial_aggregation: bool,
    /// The job graph that ran.
    pub graph: JobGraph,
}

/// A distributed execution error.
#[derive(Debug)]
pub enum DistError {
    /// The query could not be lowered to QUIL.
    Lower(LowerError),
    /// The query's root source is not the partitioned collection.
    BadRoot(String),
    /// A vertex failed.
    Vertex(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Lower(e) => write!(f, "{e}"),
            DistError::BadRoot(msg) => write!(f, "bad root source: {msg}"),
            DistError::Vertex(msg) => write!(f, "vertex failed: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Applies `f` to every partition on a pool of `workers` threads and
/// collects results in partition order — the `HomomorphicApply` operator
/// added to PLINQ in §6 ("maps a function across partitions in parallel,
/// as opposed to each element").
pub fn homomorphic_apply<F>(
    partitions: &[Column],
    workers: usize,
    f: F,
) -> Result<Vec<Value>, DistError>
where
    F: Fn(usize, &Column) -> Result<Value, String> + Sync,
{
    let n = partitions.len();
    let workers = workers.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<Value, String>>> = (0..n).map(|_| None).collect();
    let slots: Vec<parking_lot::Mutex<Option<Result<Value, String>>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &partitions[i]);
                *slots[i].lock() = Some(out);
            });
        }
    });
    for (i, slot) in slots.into_iter().enumerate() {
        results[i] = slot.into_inner();
    }
    results
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => Ok(v),
            Some(Err(e)) => Err(DistError::Vertex(e)),
            None => Err(DistError::Vertex("vertex produced no result".into())),
        })
        .collect()
}

fn count_exchanged(values: &[Value]) -> usize {
    values
        .iter()
        .map(|v| match v {
            Value::Seq(s) => s.len(),
            _ => 1,
        })
        .sum()
}

fn run_chain_serial(
    chain: &QuilChain,
    ctx: &DataContext,
    udfs: &UdfRegistry,
    engine: VertexEngine,
) -> Result<Value, DistError> {
    match engine {
        VertexEngine::Steno => {
            let compiled = CompiledQuery::from_chain(chain, udfs)
                .map_err(|e| DistError::Vertex(e.to_string()))?;
            compiled
                .run(ctx, udfs)
                .map_err(|e| DistError::Vertex(e.to_string()))
        }
        VertexEngine::Linq => chain_interp::execute_chain(chain, ctx, udfs)
            .map_err(|e| DistError::Vertex(e.to_string())),
    }
}

/// Executes a query over a partitioned collection on the simulated
/// cluster (§6).
///
/// The query's root source must be `input`; any other named source it
/// references is *broadcast* — available in full at every vertex (the
/// k-means centroids, §7.2).
///
/// # Errors
///
/// Returns [`DistError`] for unloweable queries, mismatched roots, or
/// vertex failures.
pub fn execute_distributed(
    q: &QueryExpr,
    input: &DistributedCollection,
    broadcast: &DataContext,
    udfs: &UdfRegistry,
    spec: &ClusterSpec,
    engine: VertexEngine,
) -> Result<(Value, JobReport), DistError> {
    // Types: the partitioned source plus broadcast sources.
    let mut sources = SourceTypes::from(broadcast);
    let elem_ty = input
        .partitions
        .first()
        .map(Column::elem_ty)
        .unwrap_or(Ty::F64);
    sources.insert(input.name.clone(), elem_ty);

    let t0 = Instant::now();
    let chain = lower(q, &sources, udfs).map_err(DistError::Lower)?;
    let chain = passes::optimize(&chain);
    match &chain.src {
        SrcDesc::Collection { name, .. } if *name == input.name => {}
        other => {
            return Err(DistError::BadRoot(format!(
                "query iterates {other:?}, expected the partitioned collection `{}`",
                input.name
            )))
        }
    }
    let plan = parallel::plan(&chain);
    let compiled_map = match engine {
        VertexEngine::Steno => Some(
            CompiledQuery::from_chain(&plan.map_chain, udfs)
                .map_err(|e| DistError::Vertex(e.to_string()))?,
        ),
        VertexEngine::Linq => None,
    };
    let compile_time = t0.elapsed();

    // ---- map phase ----
    let t_map = Instant::now();
    let map_chain = &plan.map_chain;
    let partials = homomorphic_apply(&input.partitions, spec.workers, |_, part| {
        let mut ctx = broadcast.clone();
        ctx.insert(input.name.clone(), part.clone());
        match &compiled_map {
            Some(c) => c.run(&ctx, udfs).map_err(|e| e.to_string()),
            None => chain_interp::execute_chain(map_chain, &ctx, udfs)
                .map_err(|e| e.to_string()),
        }
    })?;
    let map_wall = t_map.elapsed();
    let exchanged_elements = count_exchanged(&partials);

    // ---- reduce phase ----
    let t_reduce = Instant::now();
    let result = reduce(&plan, partials, broadcast, udfs, engine)?;
    let reduce_wall = t_reduce.elapsed();

    let report = JobReport {
        partitions: input.partition_count(),
        workers: spec.workers,
        engine,
        compile_time,
        map_wall,
        reduce_wall,
        exchanged_elements,
        partial_aggregation: plan.uses_partial_aggregation(),
        graph: JobGraph::from_plan(&plan, input.partition_count()),
    };
    Ok((result, report))
}

/// Rebuilds a type-specialized column from boxed values, so downstream
/// Steno-compiled chains get the indexed access they were generated for.
fn typed_column(values: Vec<Value>, elem_ty: &Ty) -> Column {
    match elem_ty {
        Ty::F64 => Column::from_f64(
            values
                .iter()
                .map(|v| v.as_f64().expect("f64 element"))
                .collect(),
        ),
        Ty::I64 => Column::from_i64(
            values
                .iter()
                .map(|v| v.as_i64().expect("i64 element"))
                .collect(),
        ),
        Ty::Bool => Column::from_bool(
            values
                .iter()
                .map(|v| v.as_bool().expect("bool element"))
                .collect(),
        ),
        _ => Column::from_values(values),
    }
}

fn reduce(
    plan: &ParallelPlan,
    partials: Vec<Value>,
    broadcast: &DataContext,
    udfs: &UdfRegistry,
    engine: VertexEngine,
) -> Result<Value, DistError> {
    let vertex = |e: steno_expr::EvalError| DistError::Vertex(e.to_string());
    match &plan.reduce {
        Reduce::Concat => {
            let mut out = Vec::new();
            for p in partials {
                match p {
                    Value::Seq(s) => out.extend(s.iter().cloned()),
                    other => out.push(other),
                }
            }
            Ok(Value::seq(out))
        }
        Reduce::CombinePartials(agg) => {
            // The Agg* vertex of Fig. 12.
            let mut iter = partials.into_iter();
            let mut acc = iter
                .next()
                .ok_or_else(|| DistError::Vertex("no partitions".into()))?;
            for p in iter {
                acc = chain_interp::combine_agg(agg, acc, p, udfs).map_err(vertex)?;
            }
            chain_interp::finish_agg(agg, acc, udfs).map_err(vertex)
        }
        Reduce::MergeGroupedPartials {
            agg,
            key_param,
            agg_param,
            result,
        } => {
            // Merge per-key partials in partition order, then finish and
            // apply the result selector.
            let mut index = std::collections::HashMap::new();
            let mut entries: Vec<(Value, Value)> = Vec::new();
            for p in partials {
                let Value::Seq(pairs) = p else {
                    return Err(DistError::Vertex(
                        "grouped map vertex did not yield pairs".into(),
                    ));
                };
                for kv in pairs.iter() {
                    let (k, partial) = kv
                        .as_pair()
                        .ok_or_else(|| DistError::Vertex("expected (key, acc) pairs".into()))?;
                    match index.get(&k.key()) {
                        None => {
                            index.insert(k.key(), entries.len());
                            entries.push((k.clone(), partial.clone()));
                        }
                        Some(&slot) => {
                            let merged = chain_interp::combine_agg(
                                agg,
                                entries[slot].1.clone(),
                                partial.clone(),
                                udfs,
                            )
                            .map_err(vertex)?;
                            entries[slot].1 = merged;
                        }
                    }
                }
            }
            let mut out = Vec::with_capacity(entries.len());
            for (k, acc) in entries {
                let fin = chain_interp::finish_agg(agg, acc, udfs).map_err(vertex)?;
                let env = Env::new()
                    .with(key_param.clone(), k)
                    .with(agg_param.clone(), fin);
                out.push(eval(result, &env, udfs).map_err(vertex)?);
            }
            Ok(Value::seq(out))
        }
        Reduce::MergeSorted {
            param,
            key,
            descending,
        } => {
            // Partition outputs are sorted runs; merge by key.
            let mut decorated: Vec<(Value, Value)> = Vec::new();
            for p in partials {
                let Value::Seq(items) = p else {
                    return Err(DistError::Vertex("sorted vertex did not yield a run".into()));
                };
                for v in items.iter() {
                    let env = Env::new().with(param.clone(), v.clone());
                    let k = eval(key, &env, udfs).map_err(vertex)?;
                    decorated.push((k, v.clone()));
                }
            }
            decorated.sort_by(|(a, _), (b, _)| {
                let ord = a.cmp_total(b);
                if *descending {
                    ord.reverse()
                } else {
                    ord
                }
            });
            Ok(Value::seq(decorated.into_iter().map(|(_, v)| v).collect()))
        }
        Reduce::SerialRest { ops, agg } => {
            // Concatenate and run the remainder serially.
            let mut merged = Vec::new();
            for p in partials {
                match p {
                    Value::Seq(s) => merged.extend(s.iter().cloned()),
                    other => merged.push(other),
                }
            }
            let elem_ty = plan.map_chain.elem_ty();
            let rest_chain = QuilChain {
                src: SrcDesc::Collection {
                    name: "__cluster_merged".into(),
                    elem_ty: elem_ty.clone(),
                },
                ops: ops.clone(),
                agg: agg.clone(),
            };
            let mut ctx = broadcast.clone();
            ctx.insert("__cluster_merged", typed_column(merged, &elem_ty));
            run_chain_serial(&rest_chain, &ctx, udfs, engine)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;
    use steno_linq::interp;
    use steno_query::{GroupResult, Query};

    fn x() -> Expr {
        Expr::var("x")
    }

    /// Structural equality with a relative tolerance on floats:
    /// partitioned partial aggregation reassociates floating-point sums,
    /// so distributed results may differ from serial ones in the last
    /// ulps (as on the real system).
    fn assert_close(a: &Value, b: &Value, what: &str) {
        match (a, b) {
            (Value::F64(x), Value::F64(y)) => {
                let close = (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()))
                    || (x.is_nan() && y.is_nan());
                assert!(close, "{what}: {x} vs {y}");
            }
            (Value::Seq(xs), Value::Seq(ys)) => {
                assert_eq!(xs.len(), ys.len(), "{what}: length");
                for (x, y) in xs.iter().zip(ys.iter()) {
                    assert_close(x, y, what);
                }
            }
            (Value::Pair(x), Value::Pair(y)) => {
                assert_close(&x.0, &y.0, what);
                assert_close(&x.1, &y.1, what);
            }
            (x, y) => assert_eq!(x.key(), y.key(), "{what}"),
        }
    }

    /// Distributed result == serial interpreter result, on both engines.
    #[track_caller]
    fn check_equivalence(q: QueryExpr, data: Vec<f64>, partitions: usize) {
        let udfs = UdfRegistry::new();
        let serial_ctx = DataContext::new().with_source("xs", data.clone());
        let expected = interp::execute(&q, &serial_ctx, &udfs).unwrap();
        let input = DistributedCollection::from_f64("xs", data, partitions);
        let spec = ClusterSpec { workers: 3 };
        for engine in [VertexEngine::Steno, VertexEngine::Linq] {
            let (got, _) = execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &udfs,
                &spec,
                engine,
            )
            .unwrap();
            assert_close(&got, &expected, &format!("engine {engine:?}, query {q}"));
        }
    }

    #[test]
    fn partial_sums_match_serial() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.01 - 3.0).collect();
        let q = Query::source("xs").select(x() * x(), "x").sum().build();
        check_equivalence(q, data, 7);
    }

    #[test]
    fn elementwise_chains_concatenate_in_order() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let q = Query::source("xs")
            .where_((x() % Expr::litf(3.0)).eq(Expr::litf(0.0)), "x")
            .select(x() * Expr::litf(2.0), "x")
            .build();
        check_equivalence(q, data, 4);
    }

    #[test]
    fn grouped_aggregation_merges_across_partitions() {
        let data: Vec<f64> = (0..500).map(|i| (i % 13) as f64).collect();
        let q = Query::source("xs")
            .group_by_result(
                x().floor(),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
            )
            .build();
        check_equivalence(q, data, 5);
    }

    #[test]
    fn average_finishes_after_combining() {
        let data: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let q = Query::source("xs").average().build();
        check_equivalence(q, data, 8);
    }

    #[test]
    fn order_by_merges_sorted_runs() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 7919) % 451) as f64).collect();
        let q = Query::source("xs").order_by(x(), "x").build();
        check_equivalence(q, data, 6);
    }

    #[test]
    fn take_runs_serial_remainder() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let q = Query::source("xs")
            .select(x() + Expr::litf(1.0), "x")
            .take(10)
            .sum()
            .build();
        check_equivalence(q, data, 4);
    }

    #[test]
    fn partial_aggregation_reduces_exchange_volume() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let q = Query::source("xs").sum().build();
        let input = DistributedCollection::from_f64("xs", data, 10);
        let udfs = UdfRegistry::new();
        let (_, report) = execute_distributed(
            &q,
            &input,
            &DataContext::new(),
            &udfs,
            &ClusterSpec { workers: 2 },
            VertexEngine::Steno,
        )
        .unwrap();
        assert!(report.partial_aggregation);
        // One partial accumulator per partition, not 10k elements.
        assert_eq!(report.exchanged_elements, 10);
        assert_eq!(report.partitions, 10);
        assert!(report.graph.to_string().contains("Agg*"));
    }

    #[test]
    fn broadcast_sources_reach_every_vertex() {
        // xs.Select(x => x * scale.First()) with `scale` broadcast.
        let q = Query::source("xs")
            .select_query(
                Query::source("scale").first(),
                "x",
            )
            .sum()
            .build();
        let data: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
        let input = DistributedCollection::from_f64("xs", data, 2);
        let broadcast = DataContext::new().with_source("scale", vec![2.5f64]);
        let udfs = UdfRegistry::new();
        let (v, _) = execute_distributed(
            &q,
            &input,
            &broadcast,
            &udfs,
            &ClusterSpec { workers: 2 },
            VertexEngine::Steno,
        )
        .unwrap();
        assert_eq!(v, Value::F64(10.0));
    }

    #[test]
    fn root_must_be_the_partitioned_collection() {
        let q = Query::source("ys").sum().build();
        let input = DistributedCollection::from_f64("xs", vec![1.0], 1);
        let broadcast = DataContext::new().with_source("ys", vec![1.0f64]);
        let err = execute_distributed(
            &q,
            &input,
            &broadcast,
            &UdfRegistry::new(),
            &ClusterSpec::default(),
            VertexEngine::Steno,
        );
        assert!(matches!(err, Err(DistError::BadRoot(_))));
    }
}
