/root/repo/target/debug/deps/poison_stress-d97caa94f9c272a2.d: crates/steno-cluster/tests/poison_stress.rs Cargo.toml

/root/repo/target/debug/deps/libpoison_stress-d97caa94f9c272a2.rmeta: crates/steno-cluster/tests/poison_stress.rs Cargo.toml

crates/steno-cluster/tests/poison_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
