//! Register- and slot-lifetime analysis over the compiled bytecode.
//!
//! Three backend passes, all running after assembly and before the
//! program is cached, all semantics-preserving:
//!
//! * [`pack_batch_slots`] — live ranges for batch columns. The
//!   vectorizer emits SSA slots (every destination fresh), so an N-op
//!   tape allocates N 1024-lane columns even when only two are live at
//!   once. Packing reuses a column the moment its last reader has run,
//!   shrinking the scratch arena to the live-range width — the
//!   difference between spilling to L2 and staying resident in L1 on
//!   long tapes. The executor's `_any` kernels (see [`crate::kernels`])
//!   stay exact under the aliasing this introduces.
//! * [`hoist_loop_invariant_consts`] — scalar loop bodies reload every
//!   literal each iteration (`ConstI r, 3` per element in an
//!   `x % 3 == 0` loop). Constants whose register has exactly one
//!   writer and whose reads all follow it are moved to the program
//!   entry, so the loop body pays nothing.
//! * [`fuse_scalar_pairs`] — threaded dispatch for the scalar tier:
//!   the hottest adjacent instruction pairs (compare→branch,
//!   increment→jump, multiply→add) fuse into the superinstructions of
//!   [`crate::instr`], halving dispatch cost on loop back-edges. The
//!   fused forms poll the interrupt on back-edges exactly like the
//!   pairs they replace.
//!
//! [`shrink_frames`] then recomputes register-bank sizes, so frames
//! freed by the passes above are not allocated at run time.

use crate::batch::{BInit, BOp, BatchProgram, KeyRef};
use crate::instr::{CmpOp, Instr, Program, SKey};

// ---------------------------------------------------------------------
// Batch-slot lifetimes.
// ---------------------------------------------------------------------

/// A batch bank: which of the three typed column arenas a slot lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankK {
    /// The f64 bank.
    F,
    /// The i64 bank.
    I,
    /// The bool bank.
    B,
}

/// Visits every slot operand of a batch op. `is_def` marks the (single)
/// destination; everything else is a read. Exhaustive over [`BOp`] so a
/// new op cannot silently escape the analysis.
fn bop_slots_mut(op: &mut BOp, mut f: impl FnMut(BankK, &mut u8, bool)) {
    use BankK::{B, F, I};
    match op {
        BOp::LoadF(d) => f(F, d, true),
        BOp::LoadI(d) => f(I, d, true),
        BOp::LoadB(d) => f(B, d, true),

        BOp::AddF(d, a, b)
        | BOp::SubF(d, a, b)
        | BOp::MulF(d, a, b)
        | BOp::DivF(d, a, b)
        | BOp::RemF(d, a, b)
        | BOp::MinF(d, a, b)
        | BOp::MaxF(d, a, b) => {
            f(F, a, false);
            f(F, b, false);
            f(F, d, true);
        }
        BOp::NegF(d, a) | BOp::AbsF(d, a) | BOp::SqrtF(d, a) | BOp::FloorF(d, a) => {
            f(F, a, false);
            f(F, d, true);
        }

        BOp::AddI(d, a, b)
        | BOp::SubI(d, a, b)
        | BOp::MulI(d, a, b)
        | BOp::MinI(d, a, b)
        | BOp::MaxI(d, a, b)
        | BOp::DivI(d, a, b)
        | BOp::RemI(d, a, b)
        | BOp::DivIUnchecked(d, a, b)
        | BOp::RemIUnchecked(d, a, b) => {
            f(I, a, false);
            f(I, b, false);
            f(I, d, true);
        }
        BOp::NegI(d, a) | BOp::AbsI(d, a) => {
            f(I, a, false);
            f(I, d, true);
        }

        BOp::EqFB(d, a, b)
        | BOp::NeFB(d, a, b)
        | BOp::LtFB(d, a, b)
        | BOp::LeFB(d, a, b)
        | BOp::GtFB(d, a, b)
        | BOp::GeFB(d, a, b) => {
            f(F, a, false);
            f(F, b, false);
            f(B, d, true);
        }
        BOp::EqIB(d, a, b)
        | BOp::NeIB(d, a, b)
        | BOp::LtIB(d, a, b)
        | BOp::LeIB(d, a, b)
        | BOp::GtIB(d, a, b)
        | BOp::GeIB(d, a, b) => {
            f(I, a, false);
            f(I, b, false);
            f(B, d, true);
        }
        BOp::EqBB(d, a, b) | BOp::NeBB(d, a, b) | BOp::AndB(d, a, b) | BOp::OrB(d, a, b) => {
            f(B, a, false);
            f(B, b, false);
            f(B, d, true);
        }
        BOp::NotB(d, a) => {
            f(B, a, false);
            f(B, d, true);
        }

        BOp::F2I(d, a) => {
            f(F, a, false);
            f(I, d, true);
        }
        BOp::I2F(d, a) => {
            f(I, a, false);
            f(F, d, true);
        }

        BOp::SelF { dst, mask, t, e } => {
            f(B, mask, false);
            f(F, t, false);
            f(F, e, false);
            f(F, dst, true);
        }
        BOp::SelI { dst, mask, t, e } => {
            f(B, mask, false);
            f(I, t, false);
            f(I, e, false);
            f(I, dst, true);
        }
        BOp::SelB { dst, mask, t, e } => {
            f(B, mask, false);
            f(B, t, false);
            f(B, e, false);
            f(B, dst, true);
        }

        BOp::Filter(m) => f(B, m, false),

        BOp::RedAddF { val, .. } | BOp::RedMinF { val, .. } | BOp::RedMaxF { val, .. } => {
            f(F, val, false);
        }
        BOp::RedAddI { val, .. } | BOp::RedMinI { val, .. } | BOp::RedMaxI { val, .. } => {
            f(I, val, false);
        }

        BOp::GroupAddF { key, val, .. } => {
            key_slot(key, &mut f);
            f(F, val, false);
        }
        BOp::GroupAddI { key, val, .. } => {
            key_slot(key, &mut f);
            f(I, val, false);
        }

        BOp::OutF(s) => f(F, s, false),
        BOp::OutI(s) => f(I, s, false),
        BOp::OutB(s) => f(B, s, false),

        BOp::MulAddF(d, a, b, c) => {
            f(F, a, false);
            f(F, b, false);
            f(F, c, false);
            f(F, d, true);
        }
        BOp::MulAddI(d, a, b, c) => {
            f(I, a, false);
            f(I, b, false);
            f(I, c, false);
            f(I, d, true);
        }
        BOp::MulRedAddF { a, b, .. } => {
            f(F, a, false);
            f(F, b, false);
        }
        BOp::MulRedAddI { a, b, .. } => {
            f(I, a, false);
            f(I, b, false);
        }
    }
}

fn key_slot(key: &mut KeyRef, f: &mut impl FnMut(BankK, &mut u8, bool)) {
    match key {
        KeyRef::F(s) => f(BankK::F, s, false),
        KeyRef::I(s) => f(BankK::I, s, false),
        KeyRef::B(s) => f(BankK::B, s, false),
    }
}

/// Visits every slot a batch op *reads*.
pub fn bop_uses(op: &BOp, mut f: impl FnMut(BankK, u8)) {
    let mut tmp = *op;
    bop_slots_mut(&mut tmp, |bank, slot, is_def| {
        if !is_def {
            f(bank, *slot);
        }
    });
}

fn bop_def(op: &BOp) -> Option<(BankK, u8)> {
    let mut tmp = *op;
    let mut def = None;
    bop_slots_mut(&mut tmp, |bank, slot, is_def| {
        if is_def {
            def = Some((bank, *slot));
        }
    });
    def
}

/// Per-bank slot allocation state for [`pack_batch_slots`].
struct SlotAlloc {
    /// Old slot → packed slot, once defined.
    map: Vec<Option<u8>>,
    /// Packed slots whose last reader has run.
    free: Vec<u8>,
    /// Next fresh packed slot.
    next: u8,
    /// High-water mark of packed slots.
    high: u8,
    /// Packed slots that must never be reused (prologue broadcasts stay
    /// live across every chunk).
    pinned: Vec<bool>,
}

impl SlotAlloc {
    fn new(n: u8) -> SlotAlloc {
        SlotAlloc {
            map: vec![None; n as usize],
            free: Vec::new(),
            next: 0,
            high: 0,
            pinned: vec![false; n as usize],
        }
    }

    fn alloc(&mut self, old: u8, reused: &mut u32) -> Option<u8> {
        // SSA input: a second definition of the same old slot means the
        // tape is not in the form the compiler emits — refuse to pack.
        if self.map.get(old as usize)?.is_some() {
            return None;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                *reused += 1;
                s
            }
            None => {
                let s = self.next;
                self.next = self.next.checked_add(1)?;
                s
            }
        };
        self.high = self.high.max(self.next);
        self.map[old as usize] = Some(slot);
        Some(slot)
    }

    fn lookup(&self, old: u8) -> Option<u8> {
        *self.map.get(old as usize)?
    }

    fn release(&mut self, old: u8) {
        if let Some(Some(packed)) = self.map.get(old as usize) {
            if !self.pinned[*packed as usize] {
                self.free.push(*packed);
            }
        }
    }
}

/// Reassigns batch-column slots by live range: a column is recycled as
/// soon as its last reader has run. Returns the number of slot reuses
/// (columns that would otherwise have been fresh allocations).
///
/// The input must be in the compiler's SSA form (each slot defined
/// once); any violation, or a read of an undefined slot, aborts the pass
/// and leaves the program untouched — packing is an optimization, never
/// an obligation.
pub fn pack_batch_slots(bp: &mut BatchProgram) -> u32 {
    // Last read position per (bank, slot). Prologue = position 0,
    // tape op k = position k + 1.
    let n = [bp.n_f as usize, bp.n_i as usize, bp.n_b as usize];
    let mut last_read = [
        vec![0usize; n[0]],
        vec![0usize; n[1]],
        vec![0usize; n[2]],
    ];
    let idx = |bank: BankK| match bank {
        BankK::F => 0,
        BankK::I => 1,
        BankK::B => 2,
    };
    for (k, op) in bp.tape.iter().enumerate() {
        let mut ok = true;
        bop_uses(op, |bank, slot| {
            match last_read[idx(bank)].get_mut(slot as usize) {
                Some(p) => *p = k + 1,
                None => ok = false,
            }
        });
        if !ok {
            return 0;
        }
        if let Some((bank, d)) = bop_def(op) {
            if (d as usize) >= n[idx(bank)] {
                return 0;
            }
        }
    }

    let mut allocs = [
        SlotAlloc::new(bp.n_f),
        SlotAlloc::new(bp.n_i),
        SlotAlloc::new(bp.n_b),
    ];
    let mut reused = 0u32;

    // Prologue slots first: allocated fresh and pinned (their broadcast
    // values persist across chunk iterations).
    let mut prologue = bp.prologue.clone();
    for init in &mut prologue {
        let (bank, slot) = match init {
            BInit::ConstF(d, _) | BInit::ParamF(d, _) => (BankK::F, d),
            BInit::ConstI(d, _) | BInit::ParamI(d, _) => (BankK::I, d),
            BInit::ConstB(d, _) | BInit::ParamB(d, _) => (BankK::B, d),
        };
        let a = &mut allocs[idx(bank)];
        let Some(packed) = a.alloc(*slot, &mut 0) else {
            return 0;
        };
        a.pinned[packed as usize] = true;
        *slot = packed;
    }

    let mut tape = bp.tape.clone();
    for (k, op) in tape.iter_mut().enumerate() {
        let pos = k + 1;
        // Remap reads, then release the ones dying here, then allocate
        // the definition — which may legally land on a slot freed by its
        // own source (the `_any` kernels are aliasing-exact).
        let mut dying: Vec<(BankK, u8)> = Vec::new();
        let mut ok = true;
        bop_slots_mut(op, |bank, slot, is_def| {
            if is_def || !ok {
                return;
            }
            let old = *slot;
            match allocs[idx(bank)].lookup(old) {
                Some(packed) => {
                    *slot = packed;
                    if last_read[idx(bank)][old as usize] == pos
                        && !dying.contains(&(bank, old))
                    {
                        dying.push((bank, old));
                    }
                }
                None => ok = false,
            }
        });
        if !ok {
            return 0;
        }
        for (bank, old) in dying {
            allocs[idx(bank)].release(old);
        }
        let mut def_ok = true;
        bop_slots_mut(op, |bank, slot, is_def| {
            if !is_def || !def_ok {
                return;
            }
            match allocs[idx(bank)].alloc(*slot, &mut reused) {
                Some(packed) => *slot = packed,
                None => def_ok = false,
            }
        });
        if !def_ok {
            return 0;
        }
    }

    bp.prologue = prologue;
    bp.tape = tape;
    bp.n_f = allocs[0].high;
    bp.n_i = allocs[1].high;
    bp.n_b = allocs[2].high;
    reused
}

// ---------------------------------------------------------------------
// Scalar register IO.
// ---------------------------------------------------------------------

/// A scalar register bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum RegBank {
    F,
    I,
    V,
}

/// Visits every register an instruction touches (`is_write` marks
/// definitions; read-modify-write registers are visited twice).
/// Exhaustive over [`Instr`].
pub(crate) fn instr_io(instr: &Instr, mut f: impl FnMut(RegBank, u32, bool)) {
    use RegBank::{F, I, V};
    let skey = |k: &SKey, f: &mut dyn FnMut(RegBank, u32, bool)| match k {
        SKey::F(r) => f(F, *r, false),
        SKey::I(r) | SKey::B(r) => f(I, *r, false),
    };
    match instr {
        Instr::Jump(_) | Instr::HaltOut => {}
        Instr::JumpIfFalse(c, _) | Instr::JumpIfTrue(c, _) => f(I, *c, false),
        Instr::BrCmpF { a, b, .. } => {
            f(F, *a, false);
            f(F, *b, false);
        }
        Instr::BrCmpI { a, b, .. } => {
            f(I, *a, false);
            f(I, *b, false);
        }
        Instr::IncJump { r, .. } => {
            f(I, *r, false);
            f(I, *r, true);
        }

        Instr::ConstF(d, _) => f(F, *d, true),
        Instr::ConstI(d, _) => f(I, *d, true),
        Instr::ConstV(d, _) => f(V, *d, true),
        Instr::MovF(d, s) => {
            f(F, *s, false);
            f(F, *d, true);
        }
        Instr::MovI(d, s) => {
            f(I, *s, false);
            f(I, *d, true);
        }
        Instr::MovV(d, s) => {
            f(V, *s, false);
            f(V, *d, true);
        }

        Instr::AddF(d, a, b)
        | Instr::SubF(d, a, b)
        | Instr::MulF(d, a, b)
        | Instr::DivF(d, a, b)
        | Instr::RemF(d, a, b)
        | Instr::MinF(d, a, b)
        | Instr::MaxF(d, a, b) => {
            f(F, *a, false);
            f(F, *b, false);
            f(F, *d, true);
        }
        Instr::NegF(d, a) | Instr::AbsF(d, a) | Instr::SqrtF(d, a) | Instr::FloorF(d, a) => {
            f(F, *a, false);
            f(F, *d, true);
        }
        Instr::MulAddF(d, a, b, c) => {
            f(F, *a, false);
            f(F, *b, false);
            f(F, *c, false);
            f(F, *d, true);
        }

        Instr::AddI(d, a, b)
        | Instr::SubI(d, a, b)
        | Instr::MulI(d, a, b)
        | Instr::DivI(d, a, b)
        | Instr::RemI(d, a, b)
        | Instr::MinI(d, a, b)
        | Instr::MaxI(d, a, b) => {
            f(I, *a, false);
            f(I, *b, false);
            f(I, *d, true);
        }
        Instr::NegI(d, a) | Instr::AbsI(d, a) | Instr::NotB(d, a) => {
            f(I, *a, false);
            f(I, *d, true);
        }
        Instr::IncI(r) => {
            f(I, *r, false);
            f(I, *r, true);
        }
        Instr::MulAddI(d, a, b, c) => {
            f(I, *a, false);
            f(I, *b, false);
            f(I, *c, false);
            f(I, *d, true);
        }

        Instr::EqF(d, a, b)
        | Instr::NeF(d, a, b)
        | Instr::LtF(d, a, b)
        | Instr::LeF(d, a, b)
        | Instr::GtF(d, a, b)
        | Instr::GeF(d, a, b) => {
            f(F, *a, false);
            f(F, *b, false);
            f(I, *d, true);
        }
        Instr::EqI(d, a, b)
        | Instr::NeI(d, a, b)
        | Instr::LtI(d, a, b)
        | Instr::LeI(d, a, b)
        | Instr::GtI(d, a, b)
        | Instr::GeI(d, a, b) => {
            f(I, *a, false);
            f(I, *b, false);
            f(I, *d, true);
        }
        Instr::EqV(d, a, b) | Instr::CmpV(d, a, b) => {
            f(V, *a, false);
            f(V, *b, false);
            f(I, *d, true);
        }

        Instr::F2I(d, a) => {
            f(F, *a, false);
            f(I, *d, true);
        }
        Instr::I2F(d, a) => {
            f(I, *a, false);
            f(F, *d, true);
        }
        Instr::FToV(d, a) => {
            f(F, *a, false);
            f(V, *d, true);
        }
        Instr::IToV(d, a) | Instr::BToV(d, a) => {
            f(I, *a, false);
            f(V, *d, true);
        }
        Instr::VToF(d, a) => {
            f(V, *a, false);
            f(F, *d, true);
        }
        Instr::VToI(d, a) | Instr::VToB(d, a) => {
            f(V, *a, false);
            f(I, *d, true);
        }

        Instr::MkPair(d, a, b) => {
            f(V, *a, false);
            f(V, *b, false);
            f(V, *d, true);
        }
        Instr::Field0(d, a) | Instr::Field1(d, a) => {
            f(V, *a, false);
            f(V, *d, true);
        }
        Instr::RowIdx(d, v, i) => {
            f(V, *v, false);
            f(I, *i, false);
            f(F, *d, true);
        }
        Instr::RowLen(d, v) | Instr::SeqLen(d, v) => {
            f(V, *v, false);
            f(I, *d, true);
        }
        Instr::SeqIdx(d, v, i) => {
            f(V, *v, false);
            f(I, *i, false);
            f(V, *d, true);
        }

        Instr::CallUdf { dst, args, .. } => {
            for a in args {
                f(V, *a, false);
            }
            f(V, *dst, true);
        }

        Instr::SrcLen(d, _) => f(I, *d, true),
        Instr::SrcGetF(d, _, i) => {
            f(I, *i, false);
            f(F, *d, true);
        }
        Instr::SrcGetI(d, _, i) | Instr::SrcGetB(d, _, i) => {
            f(I, *i, false);
            f(I, *d, true);
        }
        Instr::SrcGetV(d, _, i) => {
            f(I, *i, false);
            f(V, *d, true);
        }

        Instr::SinkNewGroup(_)
        | Instr::SinkNewSorted(_, _)
        | Instr::SinkNewDistinct(_)
        | Instr::SinkNewVec(_)
        | Instr::SinkSeal(_)
        | Instr::SinkFreeze(_) => {}
        Instr::SinkNewGroupAggV(_, v) => f(V, *v, false),
        Instr::SinkNewGroupAggF(_, r) | Instr::SinkNewGroupAggSF(_, r) => f(F, *r, false),
        Instr::SinkNewGroupAggI(_, r) | Instr::SinkNewGroupAggSI(_, r) => f(I, *r, false),
        Instr::GroupPut(_, k, v) => {
            f(V, *k, false);
            f(V, *v, false);
        }
        Instr::GroupAccLoadV(_, d, k) => {
            f(V, *k, false);
            f(V, *d, true);
        }
        Instr::GroupAccStoreV(_, s) => f(V, *s, false),
        Instr::GroupAccLoadF(_, d, k) => {
            f(V, *k, false);
            f(F, *d, true);
        }
        Instr::GroupAccStoreF(_, s) | Instr::GroupAccStoreSF(_, s) => f(F, *s, false),
        Instr::GroupAccLoadI(_, d, k) => {
            f(V, *k, false);
            f(I, *d, true);
        }
        Instr::GroupAccStoreI(_, s) | Instr::GroupAccStoreSI(_, s) => f(I, *s, false),
        Instr::GroupAccLoadSF(_, d, k) => {
            skey(k, &mut f);
            f(F, *d, true);
        }
        Instr::GroupAccLoadSI(_, d, k) => {
            skey(k, &mut f);
            f(I, *d, true);
        }
        Instr::SinkPush(_, v) => f(V, *v, false),
        Instr::SinkPushKeyed(_, k, v) => {
            f(V, *k, false);
            f(V, *v, false);
        }
        Instr::SinkLen(d, _) => f(I, *d, true),
        Instr::SinkGet(d, _, i) => {
            f(I, *i, false);
            f(V, *d, true);
        }

        Instr::OutPush(v) => f(V, *v, false),
        Instr::FusedLoop(k) => {
            for p in &k.params {
                f(F, *p, false);
            }
            for a in &k.accs {
                f(F, *a, false);
                f(F, *a, true);
            }
        }
        Instr::BatchLoop(bp) => {
            for p in &bp.f_params {
                f(F, *p, false);
            }
            for p in &bp.i_params {
                f(I, *p, false);
            }
            for a in &bp.f_accs {
                f(F, *a, false);
                f(F, *a, true);
            }
            for a in &bp.i_accs {
                f(I, *a, false);
                f(I, *a, true);
            }
        }
        Instr::HaltF(r) => f(F, *r, false),
        Instr::HaltI(r) | Instr::HaltB(r) => f(I, *r, false),
        Instr::HaltV(r) => f(V, *r, false),
    }
}

/// Per-register read/write counts and positions over a whole program.
struct RegFacts {
    reads: std::collections::HashMap<(RegBank, u32), u32>,
    writes: std::collections::HashMap<(RegBank, u32), u32>,
}

fn reg_facts(instrs: &[Instr]) -> RegFacts {
    let mut facts = RegFacts {
        reads: std::collections::HashMap::new(),
        writes: std::collections::HashMap::new(),
    };
    for instr in instrs {
        instr_io(instr, |bank, reg, is_write| {
            let m = if is_write {
                &mut facts.writes
            } else {
                &mut facts.reads
            };
            *m.entry((bank, reg)).or_insert(0) += 1;
        });
    }
    facts
}

/// All branch-target positions in a program (every jump form, including
/// the fused ones).
fn jump_targets(instrs: &[Instr]) -> Vec<(usize, usize)> {
    // (position of the jump, target)
    let mut ts = Vec::new();
    for (q, instr) in instrs.iter().enumerate() {
        match instr {
            Instr::Jump(t) | Instr::JumpIfFalse(_, t) | Instr::JumpIfTrue(_, t) => {
                ts.push((q, *t as usize));
            }
            Instr::BrCmpF { target, .. } | Instr::BrCmpI { target, .. } => {
                ts.push((q, *target as usize));
            }
            Instr::IncJump { target, .. } => ts.push((q, *target as usize)),
            _ => {}
        }
    }
    ts
}

fn retarget(instr: &mut Instr, f: impl Fn(usize) -> usize) {
    match instr {
        Instr::Jump(t) | Instr::JumpIfFalse(_, t) | Instr::JumpIfTrue(_, t) => {
            *t = f(*t as usize) as u32;
        }
        Instr::BrCmpF { target, .. }
        | Instr::BrCmpI { target, .. }
        | Instr::IncJump { target, .. } => {
            *target = f(*target as usize) as u32;
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Loop-invariant constant hoisting.
// ---------------------------------------------------------------------

/// Moves `ConstF`/`ConstI` loads out of loop bodies to the program
/// entry. Returns the number of constants hoisted.
///
/// A constant at position `p` is hoisted when:
///
/// * its destination register has **exactly one writer** in the whole
///   program (so the value is genuinely invariant),
/// * every read of the register sits at a position `> p`, and no jump
///   anywhere targets the span `(p, last_read]` (so no path observes
///   the register before the load would have run),
/// * some back-edge encloses `p` (a jump at `q ≥ p` targeting `t ≤ p`)
///   — hoisting a straight-line constant would only reorder it.
pub fn hoist_loop_invariant_consts(p: &mut Program) -> u32 {
    let facts = reg_facts(&p.instrs);
    let jumps = jump_targets(&p.instrs);

    // Last read position per register, for the skip-over check.
    let mut last_read: std::collections::HashMap<(RegBank, u32), usize> =
        std::collections::HashMap::new();
    for (pos, instr) in p.instrs.iter().enumerate() {
        instr_io(instr, |bank, reg, is_write| {
            if !is_write {
                last_read.insert((bank, reg), pos);
            }
        });
    }
    let mut first_read: std::collections::HashMap<(RegBank, u32), usize> =
        std::collections::HashMap::new();
    for (pos, instr) in p.instrs.iter().enumerate().rev() {
        instr_io(instr, |bank, reg, is_write| {
            if !is_write {
                first_read.insert((bank, reg), pos);
            }
        });
    }

    let mut hoist: Vec<usize> = Vec::new();
    for (pos, instr) in p.instrs.iter().enumerate() {
        let key = match instr {
            Instr::ConstF(d, _) => (RegBank::F, *d),
            Instr::ConstI(d, _) => (RegBank::I, *d),
            _ => continue,
        };
        if facts.writes.get(&key).copied().unwrap_or(0) != 1 {
            continue;
        }
        let (Some(&first), Some(&last)) = (first_read.get(&key), last_read.get(&key)) else {
            continue; // dead constant: leave it for shrink passes
        };
        if first <= pos {
            continue;
        }
        // No jump may land strictly inside (pos, last]: such a path
        // would reach a read without passing the load.
        if jumps.iter().any(|&(_, t)| t > pos && t <= last) {
            continue;
        }
        // Only hoist out of loops: some back-edge must enclose pos.
        if !jumps.iter().any(|&(q, t)| t <= pos && q >= pos) {
            continue;
        }
        hoist.push(pos);
    }
    if hoist.is_empty() {
        return 0;
    }

    let h = hoist.len();
    let mut front: Vec<Instr> = Vec::with_capacity(p.instrs.len());
    for &pos in &hoist {
        front.push(p.instrs[pos].clone());
    }
    let mut rest: Vec<Instr> = Vec::with_capacity(p.instrs.len() - h);
    for (pos, instr) in p.instrs.iter().enumerate() {
        if !hoist.contains(&pos) {
            rest.push(instr.clone());
        }
    }
    front.append(&mut rest);

    // Remap jump targets: a non-hoisted position shifts by (hoisted
    // count) forward minus the hoisted entries before it; a hoisted
    // target redirects to the next surviving instruction (re-running a
    // unique-writer constant early is exactly what we just did anyway).
    let new_pc = |t: usize| -> usize {
        let mut t = t;
        while hoist.binary_search(&t).is_ok() {
            t += 1;
        }
        let before = hoist.partition_point(|&x| x < t);
        h + t - before
    };
    for instr in &mut front {
        retarget(instr, new_pc);
    }
    p.instrs = front;
    p.n_hoisted += h as u32;
    h as u32
}

// ---------------------------------------------------------------------
// Scalar superinstruction fusion.
// ---------------------------------------------------------------------

fn cmp_op_f(instr: &Instr) -> Option<(CmpOp, u32, u32, u32)> {
    match *instr {
        Instr::EqF(d, a, b) => Some((CmpOp::Eq, d, a, b)),
        Instr::NeF(d, a, b) => Some((CmpOp::Ne, d, a, b)),
        Instr::LtF(d, a, b) => Some((CmpOp::Lt, d, a, b)),
        Instr::LeF(d, a, b) => Some((CmpOp::Le, d, a, b)),
        Instr::GtF(d, a, b) => Some((CmpOp::Gt, d, a, b)),
        Instr::GeF(d, a, b) => Some((CmpOp::Ge, d, a, b)),
        _ => None,
    }
}

fn cmp_op_i(instr: &Instr) -> Option<(CmpOp, u32, u32, u32)> {
    match *instr {
        Instr::EqI(d, a, b) => Some((CmpOp::Eq, d, a, b)),
        Instr::NeI(d, a, b) => Some((CmpOp::Ne, d, a, b)),
        Instr::LtI(d, a, b) => Some((CmpOp::Lt, d, a, b)),
        Instr::LeI(d, a, b) => Some((CmpOp::Le, d, a, b)),
        Instr::GtI(d, a, b) => Some((CmpOp::Gt, d, a, b)),
        Instr::GeI(d, a, b) => Some((CmpOp::Ge, d, a, b)),
        _ => None,
    }
}

/// Fuses the hottest adjacent scalar pairs into superinstructions:
/// compare→branch, increment→jump, and multiply→add. Returns the number
/// of pairs fused.
///
/// A pair `(p, p+1)` fuses only when `p+1` is not a jump target (no
/// path may enter the middle of a superinstruction) and, where the pair
/// communicates through a register, that register has exactly one
/// writer and one reader (both inside the pair), so eliding it is
/// unobservable.
pub fn fuse_scalar_pairs(p: &mut Program) -> u32 {
    let facts = reg_facts(&p.instrs);
    let targets: std::collections::HashSet<usize> =
        jump_targets(&p.instrs).into_iter().map(|(_, t)| t).collect();
    let one_use = |bank: RegBank, reg: u32| {
        facts.reads.get(&(bank, reg)).copied().unwrap_or(0) == 1
            && facts.writes.get(&(bank, reg)).copied().unwrap_or(0) == 1
    };

    let instrs = &p.instrs;
    let mut out: Vec<Instr> = Vec::with_capacity(instrs.len());
    // Original position → new position, for retargeting.
    let mut new_pos: Vec<usize> = Vec::with_capacity(instrs.len() + 1);
    let mut fused = 0u32;
    let mut i = 0usize;
    while i < instrs.len() {
        new_pos.push(out.len());
        let next = instrs.get(i + 1);
        let fusable_next = next.is_some() && !targets.contains(&(i + 1));
        let replacement: Option<Instr> = if !fusable_next {
            None
        } else {
            match (&instrs[i], next) {
                (a, Some(Instr::JumpIfFalse(c, t))) if cmp_op_f(a).is_some() => {
                    let (op, d, x, y) = match cmp_op_f(a) {
                        Some(v) => v,
                        None => unreachable!(),
                    };
                    (d == *c && one_use(RegBank::I, d)).then_some(Instr::BrCmpF {
                        op,
                        a: x,
                        b: y,
                        on_true: false,
                        target: *t,
                    })
                }
                (a, Some(Instr::JumpIfTrue(c, t))) if cmp_op_f(a).is_some() => {
                    let (op, d, x, y) = match cmp_op_f(a) {
                        Some(v) => v,
                        None => unreachable!(),
                    };
                    (d == *c && one_use(RegBank::I, d)).then_some(Instr::BrCmpF {
                        op,
                        a: x,
                        b: y,
                        on_true: true,
                        target: *t,
                    })
                }
                (a, Some(Instr::JumpIfFalse(c, t))) if cmp_op_i(a).is_some() => {
                    let (op, d, x, y) = match cmp_op_i(a) {
                        Some(v) => v,
                        None => unreachable!(),
                    };
                    (d == *c && d != x && d != y && one_use(RegBank::I, d)).then_some(
                        Instr::BrCmpI {
                            op,
                            a: x,
                            b: y,
                            on_true: false,
                            target: *t,
                        },
                    )
                }
                (a, Some(Instr::JumpIfTrue(c, t))) if cmp_op_i(a).is_some() => {
                    let (op, d, x, y) = match cmp_op_i(a) {
                        Some(v) => v,
                        None => unreachable!(),
                    };
                    (d == *c && d != x && d != y && one_use(RegBank::I, d)).then_some(
                        Instr::BrCmpI {
                            op,
                            a: x,
                            b: y,
                            on_true: true,
                            target: *t,
                        },
                    )
                }
                (Instr::IncI(r), Some(Instr::Jump(t))) => Some(Instr::IncJump {
                    r: *r,
                    target: *t,
                }),
                (Instr::MulF(t1, a, b), Some(Instr::AddF(d, l, r)))
                    if l == t1 && r != t1 && d != t1 && one_use(RegBank::F, *t1) =>
                {
                    Some(Instr::MulAddF(*d, *a, *b, *r))
                }
                (Instr::MulI(t1, a, b), Some(Instr::AddI(d, l, r)))
                    if ((l == t1) != (r == t1)) && d != t1 && one_use(RegBank::I, *t1) =>
                {
                    let c = if l == t1 { *r } else { *l };
                    Some(Instr::MulAddI(*d, *a, *b, c))
                }
                _ => None,
            }
        };
        match replacement {
            Some(instr) => {
                out.push(instr);
                // The swallowed slot maps to the fused instruction.
                new_pos.push(out.len() - 1);
                fused += 1;
                i += 2;
            }
            None => {
                out.push(instrs[i].clone());
                i += 1;
            }
        }
    }
    new_pos.push(out.len());

    if fused == 0 {
        return 0;
    }
    for instr in &mut out {
        retarget(instr, |t| new_pos[t]);
    }
    p.instrs = out;
    p.n_superinstrs += fused;
    fused
}

// ---------------------------------------------------------------------
// Frame shrinking.
// ---------------------------------------------------------------------

/// Recomputes register-bank sizes from actual usage, so frames freed by
/// constant hoisting and pair fusion are not allocated at run time.
pub fn shrink_frames(p: &mut Program) {
    let mut max: [Option<u32>; 3] = [None; 3];
    for instr in &p.instrs {
        instr_io(instr, |bank, reg, _| {
            let k = match bank {
                RegBank::F => 0,
                RegBank::I => 1,
                RegBank::V => 2,
            };
            max[k] = Some(max[k].map_or(reg, |m: u32| m.max(reg)));
        });
    }
    let need = |m: Option<u32>| m.map_or(0, |m| m + 1);
    p.n_fregs = p.n_fregs.min(need(max[0]));
    p.n_iregs = p.n_iregs.min(need(max[1]));
    p.n_vregs = p.n_vregs.min(need(max[2]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Lane;

    #[test]
    fn packing_reuses_dead_columns_and_stays_exact() {
        // SSA chain: f0=x; f1=x*x; f2=f1+f1; acc += f2.
        // f0 dies at op 1, f1 at op 2 → f2 can land on a recycled slot.
        let mut bp = BatchProgram {
            src: 0,
            src_lane: Lane::F,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![0],
            i_accs: vec![],
            n_f: 3,
            n_i: 0,
            n_b: 0,
            prologue: vec![],
            tape: vec![
                BOp::LoadF(0),
                BOp::MulF(1, 0, 0),
                BOp::AddF(2, 1, 1),
                BOp::RedAddF { acc: 0, val: 2 },
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let orig = bp.clone();
        let reused = pack_batch_slots(&mut bp);
        assert!(reused >= 1, "expected at least one slot reuse");
        assert!(bp.n_f < orig.n_f);

        // Differential check against the unpacked program.
        let data: Vec<f64> = (0..2500).map(|i| (i as f64) * 0.31 - 180.0).collect();
        let run = |bp: &BatchProgram| {
            let mut f_accs = vec![0.0];
            let mut out = Vec::new();
            crate::batch::run_batch(
                bp,
                crate::batch::BatchData::F(&data),
                &mut f_accs,
                &mut [],
                &[],
                &[],
                &mut [],
                &mut out,
                None,
                &crate::interrupt::Interrupt::none(),
            )
            .unwrap();
            f_accs[0]
        };
        assert_eq!(run(&orig).to_bits(), run(&bp).to_bits());
    }

    #[test]
    fn packing_pins_prologue_slots() {
        // i1 = const 2 (prologue) is read by every chunk's RemI and must
        // keep its column even though its "last read" is mid-tape.
        let mut bp = BatchProgram {
            src: 0,
            src_lane: Lane::I,
            f_params: vec![],
            i_params: vec![],
            f_accs: vec![],
            i_accs: vec![0],
            n_f: 0,
            n_i: 3,
            n_b: 0,
            prologue: vec![BInit::ConstI(1, 2)],
            tape: vec![
                BOp::LoadI(0),
                BOp::RemIUnchecked(2, 0, 1),
                BOp::RedAddI { acc: 0, val: 2 },
            ],
            fused: None,
            shadow: None,
            div_proofs: Vec::new(),
        };
        let orig = bp.clone();
        pack_batch_slots(&mut bp);
        let data: Vec<i64> = (0..2100).collect();
        let run = |bp: &BatchProgram| {
            let mut i_accs = vec![0i64];
            let mut out = Vec::new();
            crate::batch::run_batch(
                bp,
                crate::batch::BatchData::I(&data),
                &mut [],
                &mut i_accs,
                &[],
                &[],
                &mut [],
                &mut out,
                None,
                &crate::interrupt::Interrupt::none(),
            )
            .unwrap();
            i_accs[0]
        };
        assert_eq!(run(&orig), run(&bp));
    }

    #[test]
    fn hoist_moves_loop_constants_to_entry() {
        use steno_expr::Ty;
        // i0 = 0 (induction); loop: i1 = 5; i2 = i0 < i1; brfalse end;
        // inc i0; jump loop. The `ConstI(1, 5)` inside the loop hoists.
        let mut p = Program {
            instrs: vec![
                Instr::ConstI(0, 0),
                Instr::ConstI(1, 5),
                Instr::LtI(2, 0, 1),
                Instr::JumpIfFalse(2, 6),
                Instr::IncI(0),
                Instr::Jump(1),
                Instr::HaltI(0),
            ],
            n_fregs: 0,
            n_iregs: 3,
            n_vregs: 0,
            n_sinks: 0,
            n_fused: 0,
            n_batch: 0,
            batch_fallbacks: vec![],
            n_guards_dropped: 0,
            loop_plans: vec![],
            fused_kernels: vec![],
            n_slots_reused: 0,
            n_hoisted: 0,
            n_superinstrs: 0,
            source_names: vec![],
            udf_names: vec![],
            result_ty: Ty::I64,
            shadow: None,
        };
        let hoisted = hoist_loop_invariant_consts(&mut p);
        assert_eq!(hoisted, 1);
        // The constant now leads the program; the loop still terminates
        // with the same value.
        assert_eq!(p.instrs[0], Instr::ConstI(1, 5));
        let bindings = crate::prepared::Bindings {
            sources: vec![],
            udfs: vec![],
        };
        let v = crate::exec::run_program(&p, &bindings).unwrap();
        assert_eq!(v, steno_expr::Value::I64(5));
    }

    #[test]
    fn pair_fusion_preserves_loop_semantics() {
        use steno_expr::Ty;
        // Same counting loop; after fusion the body is
        // BrCmpI + IncJump and still counts to 5.
        let mut p = Program {
            instrs: vec![
                Instr::ConstI(0, 0),
                Instr::ConstI(1, 5),
                Instr::LtI(2, 0, 1),
                Instr::JumpIfFalse(2, 6),
                Instr::IncI(0),
                Instr::Jump(2),
                Instr::HaltI(0),
            ],
            n_fregs: 0,
            n_iregs: 3,
            n_vregs: 0,
            n_sinks: 0,
            n_fused: 0,
            n_batch: 0,
            batch_fallbacks: vec![],
            n_guards_dropped: 0,
            loop_plans: vec![],
            fused_kernels: vec![],
            n_slots_reused: 0,
            n_hoisted: 0,
            n_superinstrs: 0,
            source_names: vec![],
            udf_names: vec![],
            result_ty: Ty::I64,
            shadow: None,
        };
        let fused = fuse_scalar_pairs(&mut p);
        assert_eq!(fused, 2, "cmp+branch and inc+jump should both fuse");
        shrink_frames(&mut p);
        assert_eq!(p.n_iregs, 2, "the branch flag register is gone");
        let bindings = crate::prepared::Bindings {
            sources: vec![],
            udfs: vec![],
        };
        let v = crate::exec::run_program(&p, &bindings).unwrap();
        assert_eq!(v, steno_expr::Value::I64(5));
    }
}
