/root/repo/target/debug/deps/steno_obs-af3b0dfe45795ec7.d: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_obs-af3b0dfe45795ec7.rmeta: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs Cargo.toml

crates/steno-obs/src/lib.rs:
crates/steno-obs/src/json.rs:
crates/steno-obs/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
