/root/repo/target/debug/deps/fig_vectorized-74e09214ee72df11.d: crates/bench/src/bin/fig_vectorized.rs Cargo.toml

/root/repo/target/debug/deps/libfig_vectorized-74e09214ee72df11.rmeta: crates/bench/src/bin/fig_vectorized.rs Cargo.toml

crates/bench/src/bin/fig_vectorized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
