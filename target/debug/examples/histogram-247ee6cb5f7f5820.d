/root/repo/target/debug/examples/histogram-247ee6cb5f7f5820.d: examples/histogram.rs Cargo.toml

/root/repo/target/debug/examples/libhistogram-247ee6cb5f7f5820.rmeta: examples/histogram.rs Cargo.toml

examples/histogram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
