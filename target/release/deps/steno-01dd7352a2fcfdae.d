/root/repo/target/release/deps/steno-01dd7352a2fcfdae.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/release/deps/libsteno-01dd7352a2fcfdae.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/release/deps/libsteno-01dd7352a2fcfdae.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
