/root/repo/target/debug/deps/steno_vm-6e1d2236e77d7cf0.d: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_vm-6e1d2236e77d7cf0.rmeta: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs Cargo.toml

crates/steno-vm/src/lib.rs:
crates/steno-vm/src/batch.rs:
crates/steno-vm/src/compile.rs:
crates/steno-vm/src/fuse.rs:
crates/steno-vm/src/exec.rs:
crates/steno-vm/src/instr.rs:
crates/steno-vm/src/interrupt.rs:
crates/steno-vm/src/kernels.rs:
crates/steno-vm/src/prepared.rs:
crates/steno-vm/src/profile.rs:
crates/steno-vm/src/query.rs:
crates/steno-vm/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
