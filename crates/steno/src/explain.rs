//! `EXPLAIN` for Steno queries: where the optimizer sent each loop, and
//! why.
//!
//! [`crate::engine::Steno::explain`] renders the full lowering pipeline
//! for a query — the original AST, the canonical QUIL sentence it
//! lowered to, and the tier decision for every compiled loop
//! (vectorized / fused / scalar, with the vectorizer's exact refusal
//! reason when one was recorded). Queries outside the QUIL operator
//! classes explain as the fallback path with the lowering error.
//!
//! Two renderings: [`Explain::render`] for humans, [`Explain::to_json`]
//! as a stable machine-readable form (field order fixed; volatile data
//! like compile time deliberately excluded so equal plans render
//! byte-equal).

use steno_obs::json;
use steno_opt::RewriteEvent;
use steno_vm::{EngineKind, LoopPlan, LoopTier};

/// The explained plan for one query.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The query, printed in its canonical AST form.
    pub query: String,
    /// What the optimizer decided.
    pub plan: ExplainPlan,
}

/// The optimizer's decision for a query.
// EXPLAIN is constructed a handful of times per process, never stored
// in bulk; boxing the big variant would just push indirection into the
// many call sites that pattern-match it.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum ExplainPlan {
    /// The query lowered to QUIL and compiled to bytecode.
    Optimized {
        /// The canonical QUIL sentence.
        quil: String,
        /// Which engine the hot loops run on.
        engine: EngineKind,
        /// Total bytecode instructions.
        instr_count: usize,
        /// Tier decision per loop, in compilation order.
        loops: Vec<LoopPlan>,
        /// Loops on the vectorized tier (agrees with `loops`).
        vectorized_loops: u32,
        /// Loops on the fused tier (agrees with `loops`).
        fused_loops: u32,
        /// Batch width of the vectorized engine.
        batch_size: usize,
        /// The query's result type.
        result_ty: String,
        /// Per-lane trap guards dropped because range analysis proved
        /// the divisor non-zero.
        guards_dropped: u32,
        /// Fused batch kernels the backend selected, in compilation
        /// order (whole-tape shapes first, then pairwise fusions).
        fused_kernels: Vec<String>,
        /// Batch columns recycled by lifetime packing instead of
        /// allocated fresh.
        slots_reused: u32,
        /// Loop-invariant constants hoisted out of scalar loop bodies.
        hoisted: u32,
        /// Adjacent scalar pairs threaded into superinstructions.
        superinstrs: u32,
        /// Lint diagnostics over the QUIL chain, rendered
        /// (`severity[lint]: message (span)`), in chain order.
        lints: Vec<String>,
        /// The algebraic rewrite log: every rewrite the optimizer
        /// attempted on this plan, in application order, including
        /// rewrites the plan verifier rejected (`applied: false`).
        rewrites: Vec<RewriteEvent>,
        /// Drift-triggered re-optimization events for this query's
        /// cached plan, oldest first (empty when the plan never
        /// drifted).
        reopt: Vec<String>,
        /// The measured per-loop facts this plan was compiled against
        /// (decayed element count, selection density, span-measured
        /// ns/elem), rendered; `None` for a blind first compile.
        measured: Option<String>,
        /// The tape verifier's verdict on the compiled bytecode:
        /// `passed (...)` with per-obligation counts, or `rejected: ...`
        /// with the violated proof obligation.
        tape_check: String,
    },
    /// The query runs on the unoptimized iterator interpreter.
    Fallback {
        /// The lowering error that sent it there.
        reason: String,
    },
}

impl Explain {
    /// `true` when the query compiled (the plan is
    /// [`ExplainPlan::Optimized`]).
    pub fn is_optimized(&self) -> bool {
        matches!(self.plan, ExplainPlan::Optimized { .. })
    }

    /// The human-readable plan, one decision per line.
    pub fn render(&self) -> String {
        let mut out = format!("EXPLAIN: {}\n", self.query);
        match &self.plan {
            ExplainPlan::Optimized {
                quil,
                engine,
                instr_count,
                loops,
                batch_size,
                result_ty,
                guards_dropped,
                fused_kernels,
                slots_reused,
                hoisted,
                superinstrs,
                lints,
                rewrites,
                reopt,
                measured,
                tape_check,
                ..
            } => {
                out.push_str(&format!("  QUIL: {quil}\n"));
                out.push_str(&format!(
                    "  engine: {engine} (batch size {batch_size}), {instr_count} instrs, result {result_ty}\n"
                ));
                for ev in rewrites {
                    out.push_str(&format!("  rewrite: {ev}\n"));
                }
                if loops.is_empty() {
                    out.push_str("  loops: none (straight-line program)\n");
                }
                for (i, plan) in loops.iter().enumerate() {
                    out.push_str(&format!("  loop {i}: tier={}", plan.tier));
                    if let Some(reason) = &plan.vectorize_fallback {
                        out.push_str(&format!("  vectorize-fallback: \"{reason}\""));
                    }
                    if let Some(why) = &plan.chosen_by {
                        out.push_str(&format!("  chosen-by: \"{why}\""));
                    }
                    out.push('\n');
                }
                for event in reopt {
                    out.push_str(&format!("  reopt: {event}\n"));
                }
                if let Some(m) = measured {
                    out.push_str(&format!("  measured: {m}\n"));
                }
                if *guards_dropped > 0 {
                    out.push_str(&format!(
                        "  guards-dropped: {guards_dropped} (divisor proven non-zero)\n"
                    ));
                }
                for kernel in fused_kernels {
                    out.push_str(&format!("  fused-kernel: {kernel}\n"));
                }
                if *slots_reused > 0 {
                    out.push_str(&format!(
                        "  slots-reused: {slots_reused} (batch columns recycled)\n"
                    ));
                }
                if *hoisted > 0 {
                    out.push_str(&format!("  hoisted: {hoisted} (loop-invariant consts)\n"));
                }
                if *superinstrs > 0 {
                    out.push_str(&format!(
                        "  superinstrs: {superinstrs} (scalar pairs threaded)\n"
                    ));
                }
                for lint in lints {
                    out.push_str(&format!("  lint: {lint}\n"));
                }
                out.push_str(&format!("  tape-check: {tape_check}\n"));
            }
            ExplainPlan::Fallback { reason } => {
                out.push_str("  fallback: unoptimized iterator interpreter\n");
                out.push_str(&format!("  reason: {reason}\n"));
            }
        }
        out
    }

    /// The stable JSON form: fixed field order, no volatile fields
    /// (compile time is excluded so equal plans serialize byte-equal).
    pub fn to_json(&self) -> String {
        match &self.plan {
            ExplainPlan::Optimized {
                quil,
                engine,
                instr_count,
                loops,
                vectorized_loops,
                fused_loops,
                batch_size,
                result_ty,
                guards_dropped,
                fused_kernels,
                slots_reused,
                hoisted,
                superinstrs,
                lints,
                rewrites,
                reopt,
                measured,
                tape_check,
            } => {
                let loops_json: Vec<String> = loops
                    .iter()
                    .map(|p| {
                        let fallback = match &p.vectorize_fallback {
                            Some(r) => format!(
                                "\"{}\", \"fallback_code\": \"{}\"",
                                json::escape(&r.to_string()),
                                r.code()
                            ),
                            None => "null".to_string(),
                        };
                        let chosen = match &p.chosen_by {
                            Some(why) => format!("\"{}\"", json::escape(why)),
                            None => "null".to_string(),
                        };
                        format!(
                            "{{\"tier\": \"{}\", \"vectorize_fallback\": {fallback}, \
                             \"chosen_by\": {chosen}}}",
                            tier_name(p.tier)
                        )
                    })
                    .collect();
                let lints_json: Vec<String> = lints
                    .iter()
                    .map(|l| format!("\"{}\"", json::escape(l)))
                    .collect();
                let kernels_json: Vec<String> = fused_kernels
                    .iter()
                    .map(|k| format!("\"{}\"", json::escape(k)))
                    .collect();
                let rewrites_json: Vec<String> = rewrites
                    .iter()
                    .map(|ev| {
                        format!(
                            "{{\"rule\": \"{}\", \"detail\": \"{}\", \"applied\": {}}}",
                            json::escape(ev.rule),
                            json::escape(&ev.detail),
                            ev.applied
                        )
                    })
                    .collect();
                let reopt_json: Vec<String> = reopt
                    .iter()
                    .map(|r| format!("\"{}\"", json::escape(r)))
                    .collect();
                let measured_json = match measured {
                    Some(m) => format!("\"{}\"", json::escape(m)),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"query\": \"{}\", \"optimized\": true, \"quil\": \"{}\", \
                     \"engine\": \"{engine}\", \"instr_count\": {instr_count}, \
                     \"vectorized_loops\": {vectorized_loops}, \"fused_loops\": {fused_loops}, \
                     \"batch_size\": {batch_size}, \"result_ty\": \"{}\", \
                     \"guards_dropped\": {guards_dropped}, \"fused_kernels\": [{}], \
                     \"slots_reused\": {slots_reused}, \"hoisted\": {hoisted}, \
                     \"superinstrs\": {superinstrs}, \"loops\": [{}], \"lints\": [{}], \
                     \"rewrites\": [{}], \"reopt\": [{}], \"measured\": {measured_json}, \
                     \"tape_check\": \"{}\"}}",
                    json::escape(&self.query),
                    json::escape(quil),
                    json::escape(result_ty),
                    kernels_json.join(", "),
                    loops_json.join(", "),
                    lints_json.join(", "),
                    rewrites_json.join(", "),
                    reopt_json.join(", "),
                    json::escape(tape_check)
                )
            }
            ExplainPlan::Fallback { reason } => format!(
                "{{\"query\": \"{}\", \"optimized\": false, \"reason\": \"{}\"}}",
                json::escape(&self.query),
                json::escape(reason)
            ),
        }
    }
}

fn tier_name(t: LoopTier) -> &'static str {
    match t {
        LoopTier::Vectorized => "vectorized",
        LoopTier::Fused => "fused",
        LoopTier::Scalar => "scalar",
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_vm::FallbackReason;

    #[test]
    fn fallback_renders_reason_in_text_and_json() {
        let e = Explain {
            query: "xs.concat(ys)".to_string(),
            plan: ExplainPlan::Fallback {
                reason: "unsupported operator: Concat".to_string(),
            },
        };
        assert!(!e.is_optimized());
        let text = e.render();
        assert!(text.contains("fallback: unoptimized iterator interpreter"));
        assert!(text.contains("unsupported operator: Concat"));
        let v = steno_obs::json::parse(&e.to_json()).unwrap();
        assert_eq!(v.get("optimized").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("reason").unwrap().as_str(),
            Some("unsupported operator: Concat")
        );
    }

    #[test]
    fn optimized_plan_json_round_trips_loop_tiers() {
        let e = Explain {
            query: "q".to_string(),
            plan: ExplainPlan::Optimized {
                quil: "Src Agg[Sum] Ret".to_string(),
                engine: EngineKind::Vectorized,
                instr_count: 7,
                loops: vec![
                    LoopPlan {
                        tier: LoopTier::Vectorized,
                        vectorize_fallback: None,
                        chosen_by: None,
                    },
                    LoopPlan {
                        tier: LoopTier::Scalar,
                        vectorize_fallback: Some(FallbackReason::Shape("loop is \"weird\"")),
                        chosen_by: Some("observed ~100 elements < 2048 break-even".to_string()),
                    },
                ],
                vectorized_loops: 1,
                fused_loops: 0,
                batch_size: 1024,
                result_ty: "f64".to_string(),
                guards_dropped: 2,
                fused_kernels: vec!["sum(x*x):f64".to_string()],
                slots_reused: 3,
                hoisted: 1,
                superinstrs: 2,
                lints: vec!["warning[dead-filter]: filter is always false (op 1)".to_string()],
                rewrites: vec![
                    RewriteEvent {
                        rule: "reorder-filters",
                        detail: "filter op#1 (sel≈0.05) before filter op#0 (sel≈0.90)".to_string(),
                        applied: true,
                    },
                    RewriteEvent {
                        rule: "pushdown-filter",
                        detail: "filter op#1 pushed before map op#0".to_string(),
                        applied: false,
                    },
                ],
                reopt: vec![
                    "selectivity drift: assumed density 0.90, observed 0.05".to_string(),
                ],
                measured: Some(
                    "~100 elements, density 0.05, ~2.4 ns/elem".to_string(),
                ),
                tape_check: "passed (cfg 2, dataflow 9, polls 1, div 2, equiv 4)".to_string(),
            },
        };
        let v = steno_obs::json::parse(&e.to_json()).unwrap();
        let loops = v.get("loops").and_then(|l| l.as_array()).unwrap();
        assert_eq!(loops[0].get("tier").unwrap().as_str(), Some("vectorized"));
        assert_eq!(
            loops[1].get("vectorize_fallback").unwrap().as_str(),
            Some("loop is \"weird\"")
        );
        assert_eq!(
            loops[1].get("chosen_by").unwrap().as_str(),
            Some("observed ~100 elements < 2048 break-even")
        );
        let rewrites = v.get("rewrites").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rewrites.len(), 2);
        assert_eq!(
            rewrites[0].get("rule").unwrap().as_str(),
            Some("reorder-filters")
        );
        assert_eq!(rewrites[0].get("applied").unwrap().as_bool(), Some(true));
        assert_eq!(rewrites[1].get("applied").unwrap().as_bool(), Some(false));
        let reopt = v.get("reopt").and_then(|r| r.as_array()).unwrap();
        assert!(reopt[0]
            .as_str()
            .is_some_and(|s| s.contains("selectivity drift")));
        assert_eq!(v.get("guards_dropped").unwrap().as_f64(), Some(2.0));
        let lints = v.get("lints").and_then(|l| l.as_array()).unwrap();
        assert_eq!(
            lints[0].as_str(),
            Some("warning[dead-filter]: filter is always false (op 1)")
        );
        let text = e.render();
        assert!(text.contains("loop 0: tier=vectorized"), "{text}");
        assert!(
            text.contains("loop 1: tier=scalar  vectorize-fallback: \"loop is \"weird\"\""),
            "{text}"
        );
        assert!(
            text.contains("guards-dropped: 2 (divisor proven non-zero)"),
            "{text}"
        );
        assert!(text.contains("fused-kernel: sum(x*x):f64"), "{text}");
        assert!(text.contains("slots-reused: 3"), "{text}");
        assert!(text.contains("hoisted: 1"), "{text}");
        assert!(text.contains("superinstrs: 2"), "{text}");
        assert!(text.contains("lint: warning[dead-filter]"), "{text}");
        assert!(
            text.contains("rewrite: reorder-filters: filter op#1"),
            "{text}"
        );
        assert!(
            text.contains("rewrite: pushdown-filter: filter op#1 pushed before map op#0 [dropped: failed verification]"),
            "{text}"
        );
        assert!(
            text.contains("chosen-by: \"observed ~100 elements < 2048 break-even\""),
            "{text}"
        );
        assert!(text.contains("reopt: selectivity drift"), "{text}");
        assert!(
            text.contains("measured: ~100 elements, density 0.05, ~2.4 ns/elem"),
            "{text}"
        );
        assert_eq!(
            v.get("measured").unwrap().as_str(),
            Some("~100 elements, density 0.05, ~2.4 ns/elem")
        );
        assert!(
            text.contains("tape-check: passed (cfg 2, dataflow 9, polls 1, div 2, equiv 4)"),
            "{text}"
        );
        assert_eq!(
            v.get("tape_check").unwrap().as_str(),
            Some("passed (cfg 2, dataflow 9, polls 1, div 2, equiv 4)")
        );
    }

    /// Pins the machine-readable schema: every backend-optimization
    /// field is always present (zero/empty included), so downstream
    /// tooling can rely on the keys without probing.
    #[test]
    fn optimized_json_schema_includes_backend_fields() {
        let e = Explain {
            query: "q".to_string(),
            plan: ExplainPlan::Optimized {
                quil: "Src Agg[Sum] Ret".to_string(),
                engine: EngineKind::Scalar,
                instr_count: 3,
                loops: vec![],
                vectorized_loops: 0,
                fused_loops: 0,
                batch_size: 1024,
                result_ty: "i64".to_string(),
                guards_dropped: 0,
                fused_kernels: vec![],
                slots_reused: 0,
                hoisted: 0,
                superinstrs: 0,
                lints: vec![],
                rewrites: vec![],
                reopt: vec![],
                measured: None,
                tape_check: "passed (cfg 1, dataflow 2, polls 0, div 0, equiv 0)".to_string(),
            },
        };
        let v = steno_obs::json::parse(&e.to_json()).unwrap();
        for key in [
            "query",
            "optimized",
            "quil",
            "engine",
            "instr_count",
            "vectorized_loops",
            "fused_loops",
            "batch_size",
            "result_ty",
            "guards_dropped",
            "fused_kernels",
            "slots_reused",
            "hoisted",
            "superinstrs",
            "loops",
            "lints",
            "rewrites",
            "reopt",
            "measured",
            "tape_check",
        ] {
            assert!(v.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            v.get("fused_kernels").and_then(|k| k.as_array()).map(|k| k.len()),
            Some(0)
        );
        assert_eq!(v.get("slots_reused").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("hoisted").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("superinstrs").unwrap().as_f64(), Some(0.0));
    }
}
