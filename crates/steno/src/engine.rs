//! The high-level engine: `WithSteno()` as an API.
//!
//! The paper applies Steno by marking a query with the `WithSteno()`
//! extension method (§3). The [`Steno`] engine is that entry point here:
//! it runs the full optimization pipeline, caches compiled queries
//! (§3.3), and — like the real system, which "can only optimize the
//! standard LINQ queries" — transparently falls back to the unoptimized
//! iterator-based executor for shapes it does not handle.

use std::fmt;
use std::sync::Arc;

use steno_cluster::exec::{DistError, RuntimeConfig};
use steno_cluster::{ClusterSpec, DistributedCollection, JobReport, VertexEngine};
use steno_expr::{DataContext, EvalError, UdfRegistry, Value};
use steno_linq::interp;
use steno_obs::{Collector, FlightRecorder, NoopCollector, SpanId, Tracer};
use steno_query::typing::SourceTypes;
use steno_query::QueryExpr;
use steno_syntax::ParseError;
use steno_opt::{DriftConfig, ObservedRun};
use steno_vm::query::{CompileFeedback, OptimizeError};
use steno_vm::{
    CompiledQuery, Interrupt, QueryCache, QueryProfile, StenoOptions, VectorizationPolicy, VmError,
};

use crate::explain::{Explain, ExplainPlan};

/// Which executor ran a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionPath {
    /// The Steno pipeline: QUIL → generated loops → bytecode.
    Optimized,
    /// The unoptimized boxed-iterator interpreter (fallback).
    Fallback,
}

/// An error from the engine.
#[derive(Debug)]
pub enum StenoError {
    /// Query text failed to parse.
    Parse(ParseError),
    /// Both the optimizer and the fallback rejected the query.
    Eval(EvalError),
    /// The compiled query failed at run time.
    Vm(VmError),
    /// Optimization failed for a reason other than an unsupported shape.
    Optimize(OptimizeError),
    /// A distributed execution failed (vertex failure, exhausted retry
    /// budget, caught vertex panic, bad root source).
    Dist(DistError),
    /// The independent plan verifier rejected the optimized QUIL chain
    /// — an optimizer bug was caught before it could produce a wrong
    /// answer (only when verification is enabled, see
    /// [`Steno::with_verify`]).
    Verify(steno_analysis::VerifyError),
    /// The tape verifier rejected a compiled bytecode program — a
    /// backend (register-allocation, fusion, peephole, packing) bug was
    /// caught before the tape could run (only when verification is
    /// enabled, see [`Steno::with_verify`]; re-optimizations are always
    /// checked).
    TapeCheck(steno_vm::CheckError),
}

impl From<DistError> for StenoError {
    fn from(e: DistError) -> StenoError {
        StenoError::Dist(e)
    }
}

impl fmt::Display for StenoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StenoError::Parse(e) => write!(f, "{e}"),
            StenoError::Eval(e) => write!(f, "{e}"),
            StenoError::Vm(e) => write!(f, "{e}"),
            StenoError::Optimize(e) => write!(f, "{e}"),
            StenoError::Dist(e) => write!(f, "{e}"),
            StenoError::Verify(e) => write!(f, "plan verification failed: {e}"),
            StenoError::TapeCheck(e) => write!(f, "tape verification failed: {e}"),
        }
    }
}

impl std::error::Error for StenoError {}

/// The query optimizer and executor.
///
/// Owns a [`QueryCache`], so repeated executions of the same query pay
/// the one-off optimization cost once (§7.1: "the compiled query object
/// can then be cached by the application").
pub struct Steno {
    cache: QueryCache,
    runtime: RuntimeConfig,
    options: StenoOptions,
    collector: Arc<dyn Collector>,
    recorder: Option<Arc<FlightRecorder>>,
    verify: bool,
    adaptive: bool,
    drift: DriftConfig,
}

impl Default for Steno {
    fn default() -> Steno {
        Steno {
            cache: QueryCache::new(),
            runtime: RuntimeConfig::default(),
            options: StenoOptions::default(),
            collector: Arc::new(NoopCollector),
            recorder: None,
            // Debug builds (and CI, which sets the flag explicitly)
            // cross-check every optimized plan; release builds skip the
            // re-typecheck by default.
            verify: cfg!(debug_assertions),
            adaptive: false,
            drift: DriftConfig::default(),
        }
    }
}

/// Adaptive sampling cadence: the first `ADAPTIVE_WARMUP` executions of
/// a plan run the profiled interpreter (establishing the plan's
/// assumptions quickly), then every `ADAPTIVE_PERIOD`-th run keeps the
/// decayed statistics fresh without paying profiling overhead on the
/// steady state.
const ADAPTIVE_WARMUP: u64 = 16;
const ADAPTIVE_PERIOD: u64 = 16;

impl Steno {
    /// Creates an engine with an empty query cache and the default
    /// fault-tolerance runtime (retries and straggler speculation on, no
    /// injected faults).
    pub fn new() -> Steno {
        Steno::default()
    }

    /// Attaches a metrics [`Collector`]: every execution reports cache
    /// hit/miss counters, optimized/fallback path counters, and
    /// compile/execution latency histograms, and
    /// [`Steno::execute_distributed`] folds the [`JobReport`] in too.
    /// The default is [`NoopCollector`], which costs nothing.
    #[must_use = "with_collector returns the configured engine"]
    pub fn with_collector(mut self, collector: Arc<dyn Collector>) -> Steno {
        self.collector = collector;
        self
    }

    /// The engine's metrics collector.
    pub fn collector(&self) -> &Arc<dyn Collector> {
        &self.collector
    }

    /// Attaches a [`FlightRecorder`]: serving layers (see `steno-serve`)
    /// open a per-query [`Tracer`] through it, thread span recording
    /// through compile/verify/execution, and dump full annotated traces
    /// when a query trips an anomaly. The engine itself stays passive —
    /// without a recorder (the default) every traced entry point runs
    /// with a disabled tracer and records nothing.
    #[must_use = "with_flight_recorder returns the configured engine"]
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Steno {
        self.recorder = Some(recorder);
        self
    }

    /// The engine's flight recorder, when one is attached.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Sets the fault-tolerance runtime (retry policy, straggler
    /// speculation, fault injection) used by
    /// [`Steno::execute_distributed`].
    #[must_use = "with_runtime returns the configured engine"]
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Steno {
        self.runtime = runtime;
        self
    }

    /// The engine's fault-tolerance runtime configuration.
    pub fn runtime(&self) -> &RuntimeConfig {
        &self.runtime
    }

    /// Sets the vectorization policy for every query this engine
    /// compiles. [`VectorizationPolicy::Auto`] (the default) batch-
    /// compiles eligible loops; [`VectorizationPolicy::Off`] pins the
    /// scalar tiers (ablation baselines, debugging).
    #[must_use = "with_vectorization returns the configured engine"]
    pub fn with_vectorization(mut self, policy: VectorizationPolicy) -> Steno {
        self.options.vectorize = policy;
        self
    }

    /// The engine's compilation options.
    pub fn options(&self) -> &StenoOptions {
        &self.options
    }

    /// Bounds the query cache to at most `capacity` compiled plans,
    /// evicted least-recently-used. Hit/miss/eviction counts stay
    /// visible through [`Steno::detailed_cache_stats`]. The default
    /// cache is unbounded, which is fine for a single application but
    /// not for a multi-tenant service where the key space is open-ended.
    #[must_use = "with_cache_capacity returns the configured engine"]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Steno {
        self.cache = QueryCache::with_capacity(capacity);
        self
    }

    /// Turns the independent plan verifier on or off. When on, every
    /// fresh compilation's optimized QUIL chain is re-typechecked and
    /// its parallel plan cross-derived by `steno-analysis` before the
    /// query is returned; a rejection surfaces as
    /// [`StenoError::Verify`] instead of a silently wrong plan. The
    /// default is on in debug builds and off in release builds (cache
    /// hits never re-verify, so the steady-state cost is zero either
    /// way).
    #[must_use = "with_verify returns the configured engine"]
    pub fn with_verify(mut self, on: bool) -> Steno {
        self.verify = on;
        self
    }

    /// Whether this engine verifies freshly compiled plans.
    pub fn verify_enabled(&self) -> bool {
        self.verify
    }

    /// Turns feedback-directed re-optimization on or off (default off).
    /// When on, [`Steno::execute`] samples a profiled run periodically,
    /// folds the observed element counts / selection density / wall
    /// time into the cached plan's decayed statistics, and — when the
    /// workload drifts past the plan's assumptions (see [`DriftConfig`])
    /// — recompiles with the measured facts and swaps the cached plan in
    /// place. Re-optimized plans go through the same verifier gate as
    /// fresh compilations; `EXPLAIN` surfaces every event as a `reopt:`
    /// line.
    #[must_use = "with_adaptive returns the configured engine"]
    pub fn with_adaptive(mut self, on: bool) -> Steno {
        self.adaptive = on;
        self
    }

    /// Whether this engine re-optimizes drifted plans.
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive
    }

    /// Overrides the drift-detection tuning (sampling decay, hysteresis
    /// gates, re-opt budget) used when [`Steno::with_adaptive`] is on.
    #[must_use = "with_drift_config returns the configured engine"]
    pub fn with_drift_config(mut self, cfg: DriftConfig) -> Steno {
        self.drift = cfg;
        self
    }

    /// Executes a query AST, optimizing when possible.
    ///
    /// # Errors
    ///
    /// Returns [`StenoError`] for ill-typed queries or runtime failures.
    pub fn execute(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<Value, StenoError> {
        self.execute_traced(q, ctx, udfs).map(|(v, _)| v)
    }

    /// Compiles through the cache, reporting hit/miss into the
    /// engine's collector (compile latency is recorded on misses).
    /// Freshly compiled plans are checked by the independent verifier
    /// when [`Steno::with_verify`] is on; cache hits were verified when
    /// they were first compiled and are not re-checked.
    fn compile_metered(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
    ) -> Result<(Arc<CompiledQuery>, bool), StenoError> {
        self.compile_metered_with(q, sources, udfs, self.options)
    }

    /// As [`Steno::compile_metered`], with explicit per-call options
    /// (the cache keys on the options, so plans compiled under
    /// different policies coexist).
    fn compile_metered_with(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        options: StenoOptions,
    ) -> Result<(Arc<CompiledQuery>, bool), StenoError> {
        self.compile_metered_spanned(q, sources, udfs, options, &Tracer::disabled(), None)
    }

    /// The traced core of every compile path: records an
    /// `engine.compile` span (annotated with cache hit and compile
    /// time) plus an `engine.verify` span for fresh compilations when
    /// the verifier is on. With a disabled tracer this is exactly the
    /// metered compile.
    fn compile_metered_spanned(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        options: StenoOptions,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<(Arc<CompiledQuery>, bool), StenoError> {
        let mut cspan = tracer.span("engine.compile", parent);
        let result = self
            .cache
            .get_or_compile_tuned_traced(q, sources, udfs, options);
        if self.collector.enabled() {
            match &result {
                Ok((_, true)) => self.collector.add("steno.cache.hit", 1),
                Ok((compiled, false)) => {
                    self.collector.add("steno.cache.miss", 1);
                    let ns = u64::try_from(compiled.compile_time().as_nanos()).unwrap_or(u64::MAX);
                    self.collector.observe_ns("steno.compile_ns", ns);
                }
                Err(_) => self.collector.add("steno.compile.error", 1),
            }
        }
        if let Ok((compiled, hit)) = &result {
            cspan.note("cache_hit", u64::from(*hit));
            if !hit {
                let ns = u64::try_from(compiled.compile_time().as_nanos()).unwrap_or(u64::MAX);
                cspan.note("compile_ns", ns);
            }
        }
        let compile_id = cspan.id();
        drop(cspan);
        let (compiled, hit) = result.map_err(StenoError::Optimize)?;
        if self.verify && !hit {
            {
                let _vspan = tracer.span("engine.verify", compile_id.or(parent));
                steno_analysis::verify(compiled.chain(), udfs).map_err(StenoError::Verify)?;
                self.collector.add("steno.verify.passed", 1);
            }
            // Second, independent line of defense: the QUIL verifier
            // above checks the *plan*; the tape verifier re-derives
            // proof obligations over the compiled *bytecode* (dataflow,
            // control flow, poll reachability, unchecked-division
            // proofs, pass equivalence), so a backend miscompile is
            // caught even when the plan was sound.
            let mut tspan = tracer.span("engine.tapecheck", compile_id.or(parent));
            match steno_vm::check_program(compiled.program()) {
                Ok(report) => {
                    tspan.note("obligations", u64::from(report.total()));
                    self.collector.add("steno.tapecheck.passed", 1);
                }
                Err(e) => {
                    tspan.note("outcome", "rejected");
                    self.collector.add("steno.tapecheck.rejected", 1);
                    return Err(StenoError::TapeCheck(e));
                }
            }
        }
        Ok((compiled, hit))
    }

    /// As [`Steno::execute`], also reporting which path ran.
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`].
    pub fn execute_traced(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<(Value, ExecutionPath), StenoError> {
        match self.compile_metered(q, SourceTypes::from(ctx), udfs) {
            Ok((compiled, _hit)) => {
                let span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                let result = if self.adaptive {
                    self.run_adaptive(q, ctx, udfs, &compiled)
                } else {
                    compiled.run(ctx, udfs).map_err(StenoError::Vm)
                };
                drop(span);
                self.collector.add("steno.query.executed", 1);
                result.map(|v| (v, ExecutionPath::Optimized))
            }
            Err(StenoError::Optimize(OptimizeError::Lower(
                steno_quil::LowerError::Unsupported(_),
            ))) => {
                // The paper's behaviour: shapes Steno does not optimize
                // run through the stock iterator implementation.
                self.collector.add("steno.query.fallback", 1);
                let _span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                interp::execute(q, ctx, udfs)
                    .map(|v| (v, ExecutionPath::Fallback))
                    .map_err(StenoError::Eval)
            }
            Err(e) => Err(e),
        }
    }

    /// The adaptive arm of [`Steno::execute_traced`]: runs the plan
    /// (profiled on the sampling cadence — the first
    /// [`ADAPTIVE_WARMUP`] runs and every [`ADAPTIVE_PERIOD`]-th run
    /// after), folds the observed facts into the cached plan's decayed
    /// statistics, and on drift recompiles with the measured feedback
    /// and swaps the cached plan. The query's own result is never at
    /// stake: re-optimization happens after the value is computed, and
    /// a failed or verifier-rejected recompile only counts a metric and
    /// leaves the current plan installed.
    fn run_adaptive(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        compiled: &CompiledQuery,
    ) -> Result<Value, StenoError> {
        self.run_compiled_adaptive(q, ctx, udfs, compiled, &Interrupt::none(), self.options)
    }

    /// Runs an already-compiled plan under `interrupt`, applying the
    /// engine's adaptive sampling and drift-triggered re-optimization
    /// when [`Steno::with_adaptive`] is on. `opts` must be the options
    /// the plan was compiled under — the cache keys its statistics and
    /// any re-optimized replacement on them. This is the entry a
    /// serving layer uses to run plans it compiled itself (e.g. under a
    /// degraded policy) while still feeding the profile→plan loop.
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`]; additionally [`VmError::DeadlineExceeded`]
    /// / [`VmError::Cancelled`] (wrapped in [`StenoError::Vm`]) once
    /// `interrupt` fires.
    pub fn run_compiled_adaptive(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        compiled: &CompiledQuery,
        interrupt: &Interrupt,
        opts: StenoOptions,
    ) -> Result<Value, StenoError> {
        self.run_compiled_traced(q, ctx, udfs, compiled, interrupt, opts, &Tracer::disabled(), None)
    }

    /// As [`Steno::run_compiled_adaptive`], recording `vm.run`/`vm.loop`
    /// spans into `tracer` and an `engine.reopt` span when the run
    /// triggers a drift recompilation. A live tracer forces the profiled
    /// interpreter (the spans *are* the measurement), so traced runs
    /// always feed the plan's decayed statistics; with a disabled tracer
    /// the adaptive sampling cadence is unchanged.
    ///
    /// # Errors
    ///
    /// As [`Steno::run_compiled_adaptive`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_compiled_traced(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        compiled: &CompiledQuery,
        interrupt: &Interrupt,
        opts: StenoOptions,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<Value, StenoError> {
        if !self.adaptive {
            if tracer.enabled() {
                let (value, _) = compiled
                    .run_traced(ctx, udfs, interrupt, tracer, parent)
                    .map_err(StenoError::Vm)?;
                return Ok(value);
            }
            return compiled.run_with(ctx, udfs, interrupt).map_err(StenoError::Vm);
        }
        let runs = self.cache.begin_run(q, opts);
        let sample = runs < ADAPTIVE_WARMUP || runs.is_multiple_of(ADAPTIVE_PERIOD);
        if !sample && !tracer.enabled() {
            return compiled.run_with(ctx, udfs, interrupt).map_err(StenoError::Vm);
        }
        let (value, prof) = compiled
            .run_traced(ctx, udfs, interrupt, tracer, parent)
            .map_err(StenoError::Vm)?;
        // Exactly one tier runs each loop, so summing the per-tier
        // element counters yields the elements that flowed through.
        let observed = ObservedRun {
            elements: (prof.src_reads + prof.batch_elements_in + prof.fused_elements) as f64,
            density: prof.selection_density(),
            exec_ns: prof.wall.as_nanos() as f64,
            loop_ns: prof.loop_ns as f64,
        };
        if let Some(reason) = self.cache.note_run(q, opts, observed, &self.drift) {
            self.reoptimize(q, ctx, udfs, &reason, opts, tracer, parent);
        }
        Ok(value)
    }

    /// Recompiles `q` with measured feedback (sampled selectivities from
    /// the live data, decayed loop stats from the cache) and installs
    /// the result — but only after the independent plan verifier accepts
    /// it, regardless of [`Steno::with_verify`]: a re-optimization
    /// replaces a known-good plan, so it is never trusted blind.
    #[allow(clippy::too_many_arguments)]
    fn reoptimize(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        reason: &str,
        opts: StenoOptions,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) {
        let mut rspan = tracer.span("engine.reopt", parent);
        let feedback = CompileFeedback {
            sample_ctx: Some(ctx),
            loop_stats: self.cache.plan_loop_stats(q, opts),
        };
        let recompiled = match CompiledQuery::compile_tuned_feedback(
            q,
            SourceTypes::from(ctx),
            udfs,
            opts,
            feedback,
        ) {
            Ok(c) => c,
            Err(_) => {
                rspan.note("outcome", "error");
                self.collector.add("steno.reopt.error", 1);
                return;
            }
        };
        if steno_analysis::verify(recompiled.chain(), udfs).is_err() {
            rspan.note("outcome", "rejected");
            self.collector.add("steno.reopt.rejected", 1);
            return;
        }
        // A re-optimization replaces a plan that has been producing
        // correct answers, so its tape is held to the same standard:
        // the bytecode verifier must accept it before it is installed.
        if steno_vm::check_program(recompiled.program()).is_err() {
            rspan.note("outcome", "tape-rejected");
            self.collector.add("steno.tapecheck.rejected", 1);
            self.collector.add("steno.reopt.rejected", 1);
            return;
        }
        self.collector.add("steno.tapecheck.passed", 1);
        self.cache
            .install_reoptimized(q, opts, Arc::new(recompiled), reason);
        rspan.note("outcome", "installed");
        rspan.note("reason", reason.to_string());
        self.collector.add("steno.reopt", 1);
    }

    /// As [`Steno::execute_traced`], threading a deadline/cancellation
    /// [`Interrupt`] into *both* executors: the VM polls it at loop
    /// back-edges and batch boundaries, and the iterator fallback polls
    /// it per stride of elements — so unsupported shapes no longer run
    /// to completion past their deadline.
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`]; once the interrupt fires, both paths
    /// report [`StenoError::Vm`] with [`VmError::DeadlineExceeded`] or
    /// [`VmError::Cancelled`].
    pub fn execute_with_interrupt(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        interrupt: &Interrupt,
    ) -> Result<(Value, ExecutionPath), StenoError> {
        match self.compile_metered(q, SourceTypes::from(ctx), udfs) {
            Ok((compiled, _hit)) => {
                let span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                let result =
                    self.run_compiled_adaptive(q, ctx, udfs, &compiled, interrupt, self.options);
                drop(span);
                self.collector.add("steno.query.executed", 1);
                result.map(|v| (v, ExecutionPath::Optimized))
            }
            Err(StenoError::Optimize(OptimizeError::Lower(
                steno_quil::LowerError::Unsupported(_),
            ))) => {
                self.collector.add("steno.query.fallback", 1);
                let _span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                let probe: interp::StopProbe = {
                    let interrupt = interrupt.clone();
                    Arc::new(move || match interrupt.check() {
                        Ok(()) => None,
                        Err(VmError::DeadlineExceeded) => Some(interp::Stop::Deadline),
                        Err(_) => Some(interp::Stop::Cancelled),
                    })
                };
                interp::execute_interruptible(q, ctx, udfs, probe)
                    .map(|v| (v, ExecutionPath::Fallback))
                    .map_err(|e| match e {
                        // Interruptions surface uniformly as VM errors,
                        // matching the optimized path, so callers handle
                        // one shape.
                        EvalError::Interrupted { deadline: true } => {
                            StenoError::Vm(VmError::DeadlineExceeded)
                        }
                        EvalError::Interrupted { deadline: false } => {
                            StenoError::Vm(VmError::Cancelled)
                        }
                        other => StenoError::Eval(other),
                    })
            }
            Err(e) => Err(e),
        }
    }

    /// As [`Steno::execute_with_interrupt`], recording the full engine
    /// span hierarchy into `tracer`: `engine.compile` / `engine.verify`
    /// on the compile side, `vm.run` + per-loop `vm.loop` spans on the
    /// optimized path, `engine.fallback_exec` on the iterator fallback,
    /// and `engine.reopt` when a traced run triggers drift
    /// recompilation. With a disabled tracer this is exactly
    /// [`Steno::execute_with_interrupt`].
    ///
    /// # Errors
    ///
    /// As [`Steno::execute_with_interrupt`].
    pub fn execute_with_interrupt_traced(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        interrupt: &Interrupt,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<(Value, ExecutionPath), StenoError> {
        match self.compile_metered_spanned(
            q,
            SourceTypes::from(ctx),
            udfs,
            self.options,
            tracer,
            parent,
        ) {
            Ok((compiled, _hit)) => {
                let span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                let result = self.run_compiled_traced(
                    q,
                    ctx,
                    udfs,
                    &compiled,
                    interrupt,
                    self.options,
                    tracer,
                    parent,
                );
                drop(span);
                self.collector.add("steno.query.executed", 1);
                result.map(|v| (v, ExecutionPath::Optimized))
            }
            Err(StenoError::Optimize(OptimizeError::Lower(
                steno_quil::LowerError::Unsupported(_),
            ))) => {
                self.collector.add("steno.query.fallback", 1);
                let _span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                let _fspan = tracer.span("engine.fallback_exec", parent);
                let probe: interp::StopProbe = {
                    let interrupt = interrupt.clone();
                    Arc::new(move || match interrupt.check() {
                        Ok(()) => None,
                        Err(VmError::DeadlineExceeded) => Some(interp::Stop::Deadline),
                        Err(_) => Some(interp::Stop::Cancelled),
                    })
                };
                interp::execute_interruptible(q, ctx, udfs, probe)
                    .map(|v| (v, ExecutionPath::Fallback))
                    .map_err(|e| match e {
                        EvalError::Interrupted { deadline: true } => {
                            StenoError::Vm(VmError::DeadlineExceeded)
                        }
                        EvalError::Interrupted { deadline: false } => {
                            StenoError::Vm(VmError::Cancelled)
                        }
                        other => StenoError::Eval(other),
                    })
            }
            Err(e) => Err(e),
        }
    }

    /// As [`Steno::execute_traced`], additionally returning a
    /// [`QueryProfile`] of where elements and time went: per-operator
    /// element counts, batches executed, selection-vector density, and
    /// whether this compilation hit the query cache. Runs the profiled
    /// interpreter monomorphization; use [`Steno::execute`] when the
    /// counters are not needed. Fallback executions return the profile
    /// with only `wall` and `cache_hit: Some(false)` semantics absent
    /// (`cache_hit` is `None` — the fallback never touches the cache).
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`].
    pub fn execute_profiled(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<(Value, ExecutionPath, QueryProfile), StenoError> {
        match self.compile_metered(q, SourceTypes::from(ctx), udfs) {
            Ok((compiled, hit)) => {
                let span = steno_obs::Span::start(self.collector.as_ref(), "steno.exec_ns");
                let result = compiled.run_profiled(ctx, udfs);
                drop(span);
                self.collector.add("steno.query.executed", 1);
                result
                    .map(|(v, mut prof)| {
                        prof.cache_hit = Some(hit);
                        (v, ExecutionPath::Optimized, prof)
                    })
                    .map_err(StenoError::Vm)
            }
            Err(StenoError::Optimize(OptimizeError::Lower(
                steno_quil::LowerError::Unsupported(_),
            ))) => {
                self.collector.add("steno.query.fallback", 1);
                let start = std::time::Instant::now();
                let value = interp::execute(q, ctx, udfs).map_err(StenoError::Eval)?;
                let prof = QueryProfile {
                    wall: start.elapsed(),
                    ..QueryProfile::default()
                };
                Ok((value, ExecutionPath::Fallback, prof))
            }
            Err(e) => Err(e),
        }
    }

    /// Explains how this engine would execute `q` against sources of
    /// the given types: the canonical QUIL form, the engine the hot
    /// loops land on, and the tier decision per loop — including the
    /// vectorizer's exact refusal reason for loops that fell back.
    /// Unsupported shapes explain as the iterator-interpreter fallback
    /// with the lowering error. Compilation goes through the query
    /// cache, so explaining then executing compiles once.
    ///
    /// # Errors
    ///
    /// Returns [`StenoError::Optimize`] only for internal compilation
    /// failures; unsupported shapes are a successful `Fallback` plan.
    pub fn explain(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
    ) -> Result<Explain, StenoError> {
        self.explain_with_options(q, sources, udfs, self.options)
    }

    /// As [`Steno::explain`], explaining the plan compiled under
    /// explicit per-call options (the serving layer attaches the
    /// EXPLAIN of the policy a query *actually* ran under — which may
    /// be a degraded one — to flight-recorder dumps).
    ///
    /// # Errors
    ///
    /// As [`Steno::explain`].
    pub fn explain_with_options(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        options: StenoOptions,
    ) -> Result<Explain, StenoError> {
        let query = q.to_string();
        match self.compile_metered_with(q, sources, udfs, options) {
            Ok((compiled, _hit)) => {
                let lints = steno_analysis::run_default_lints(compiled.chain(), udfs)
                    .iter()
                    .map(|d| d.to_string())
                    .collect();
                // EXPLAIN runs the tape verifier unconditionally (even
                // with `with_verify` off): the obligation counts are
                // plan facts, and a rejection here is exactly what an
                // operator inspecting a suspect plan wants surfaced.
                let tape_check = match steno_vm::check_program(compiled.program()) {
                    Ok(report) => report.summary(),
                    Err(e) => format!("rejected: {e}"),
                };
                Ok(Explain {
                    query,
                    plan: ExplainPlan::Optimized {
                        quil: compiled.quil().to_string(),
                        engine: compiled.engine(),
                        instr_count: compiled.instr_count(),
                        loops: compiled.loop_plans().to_vec(),
                        vectorized_loops: compiled.vectorized_loops(),
                        fused_loops: compiled.fused_loops(),
                        batch_size: compiled.batch_size(),
                        result_ty: compiled.result_ty().to_string(),
                        guards_dropped: compiled.guards_dropped(),
                        fused_kernels: compiled.fused_kernels().to_vec(),
                        slots_reused: compiled.slots_reused(),
                        hoisted: compiled.hoisted(),
                        superinstrs: compiled.superinstrs(),
                        lints,
                        rewrites: compiled.rewrite_log().to_vec(),
                        reopt: self.cache.reopt_events(q, options),
                        measured: compiled.measured_stats().map(render_measured),
                        tape_check,
                    },
                })
            }
            Err(StenoError::Optimize(OptimizeError::Lower(
                e @ steno_quil::LowerError::Unsupported(_),
            ))) => Ok(Explain {
                query,
                plan: ExplainPlan::Fallback {
                    reason: e.to_string(),
                },
            }),
            Err(e) => Err(e),
        }
    }

    /// Parses and executes query text.
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`], plus parse errors.
    pub fn execute_text(
        &self,
        text: &str,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<Value, StenoError> {
        let (q, _) = steno_syntax::parse_query(text).map_err(StenoError::Parse)?;
        self.execute(&q, ctx, udfs)
    }

    /// Compiles a query without running it (inspect
    /// [`CompiledQuery::rust_source`] to see the generated loops).
    ///
    /// # Errors
    ///
    /// Returns [`StenoError::Optimize`] when the query cannot be
    /// optimized, and [`StenoError::Verify`] when the plan verifier is
    /// on and rejects the optimized chain.
    pub fn compile(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
    ) -> Result<Arc<CompiledQuery>, StenoError> {
        self.compile_metered(q, sources, udfs)
            .map(|(compiled, _hit)| compiled)
    }

    /// As [`Steno::compile`], with per-call [`StenoOptions`] overriding
    /// the engine default. The cache keys on the options, so a service
    /// layer can degrade individual compilations (e.g. pin
    /// [`VectorizationPolicy::Off`] while a breaker is open) without
    /// poisoning plans cached under the healthy policy. Goes through
    /// the same metering and verifier as every other compile.
    ///
    /// # Errors
    ///
    /// As [`Steno::compile`].
    pub fn compile_with_options(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        options: StenoOptions,
    ) -> Result<Arc<CompiledQuery>, StenoError> {
        self.compile_metered_with(q, sources, udfs, options)
            .map(|(compiled, _hit)| compiled)
    }

    /// As [`Steno::compile_with_options`], recording `engine.compile`
    /// (and, on fresh compilations, `engine.verify`) spans into the
    /// caller's per-query trace. With a disabled tracer this is exactly
    /// `compile_with_options`.
    ///
    /// # Errors
    ///
    /// As [`Steno::compile`].
    pub fn compile_with_options_traced(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        options: StenoOptions,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<Arc<CompiledQuery>, StenoError> {
        self.compile_metered_spanned(q, sources, udfs, options, tracer, parent)
            .map(|(compiled, _hit)| compiled)
    }

    /// `(hits, misses)` of the query cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Full query-cache counters: hits, misses, evictions, live
    /// entries, and the configured capacity (if bounded).
    pub fn detailed_cache_stats(&self) -> steno_vm::CacheStats {
        self.cache.detailed_stats()
    }

    /// Executes a query over a partitioned collection on the simulated
    /// cluster (§6), under the engine's fault-tolerance runtime: vertex
    /// panics are isolated, transient failures retried with backoff,
    /// stragglers speculatively duplicated, and deterministic errors
    /// surfaced byte-identical to the single-node engines.
    ///
    /// The returned [`JobReport`] records retry counts, the retry log,
    /// speculation wins, and per-vertex attempt/wall-time data alongside
    /// the usual phase timings.
    ///
    /// # Errors
    ///
    /// Returns [`StenoError::Dist`] for unloweable queries, mismatched
    /// roots, and vertex failures that survive the retry budget.
    pub fn execute_distributed(
        &self,
        q: &QueryExpr,
        input: &DistributedCollection,
        broadcast: &DataContext,
        udfs: &UdfRegistry,
        spec: &ClusterSpec,
        engine: VertexEngine,
    ) -> Result<(Value, JobReport), StenoError> {
        self.execute_distributed_traced(
            q,
            input,
            broadcast,
            udfs,
            spec,
            engine,
            &Tracer::disabled(),
            None,
        )
    }

    /// As [`Steno::execute_distributed`], additionally recording the
    /// job's phase timings (`cluster.job` → compile/map/reduce, one
    /// `cluster.vertex` span per map vertex) into `tracer` via
    /// [`JobReport::record_spans`]. With a disabled tracer this is
    /// exactly [`Steno::execute_distributed`].
    ///
    /// # Errors
    ///
    /// As [`Steno::execute_distributed`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_distributed_traced(
        &self,
        q: &QueryExpr,
        input: &DistributedCollection,
        broadcast: &DataContext,
        udfs: &UdfRegistry,
        spec: &ClusterSpec,
        engine: VertexEngine,
        tracer: &Tracer,
        parent: Option<SpanId>,
    ) -> Result<(Value, JobReport), StenoError> {
        let result = steno_cluster::execute_distributed_with(
            q,
            input,
            broadcast,
            udfs,
            spec,
            engine,
            &self.runtime,
        )
        .map_err(StenoError::Dist);
        if let Ok((_, report)) = &result {
            // Unified telemetry: cluster jobs land in the same
            // collector as single-node executions.
            report.record_to(self.collector.as_ref());
            report.record_spans(tracer, parent);
        }
        result
    }
}

/// Renders the measured loop facts a plan was compiled against for the
/// EXPLAIN `measured:` line.
fn render_measured(ls: steno_opt::LoopStats) -> String {
    let mut out = format!("~{:.0} elements", ls.elements);
    if let Some(d) = ls.density {
        out.push_str(&format!(", density {d:.2}"));
    }
    if let Some(npe) = ls.ns_per_elem {
        out.push_str(&format!(", ~{npe:.1} ns/elem"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::{Expr, Ty};
    use steno_query::Query;

    fn ctx() -> DataContext {
        DataContext::new().with_source("xs", vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn optimized_path_runs_supported_queries() {
        let engine = Steno::new();
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let (v, path) = engine
            .execute_traced(&q, &ctx(), &UdfRegistry::new())
            .unwrap();
        assert_eq!(v, Value::F64(30.0));
        assert_eq!(path, ExecutionPath::Optimized);
    }

    #[test]
    fn unsupported_queries_fall_back_to_iterators() {
        let engine = Steno::new();
        // Concat is outside the QUIL operator classes.
        let q = Query::source("xs").concat(Query::source("xs")).count().build();
        let (v, path) = engine
            .execute_traced(&q, &ctx(), &UdfRegistry::new())
            .unwrap();
        assert_eq!(v, Value::I64(8));
        assert_eq!(path, ExecutionPath::Fallback);
    }

    #[test]
    fn text_queries_execute() {
        let engine = Steno::new();
        let v = engine
            .execute_text(
                "(from x in xs where x > 1.5 select x * x).sum()",
                &ctx(),
                &UdfRegistry::new(),
            )
            .unwrap();
        assert_eq!(v, Value::F64(29.0));
    }

    #[test]
    fn vectorization_knob_selects_the_engine() {
        use steno_vm::EngineKind;

        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let c = ctx();
        let udfs = UdfRegistry::new();

        let auto = Steno::new();
        let compiled = auto.compile(&q, SourceTypes::from(&c), &udfs).unwrap();
        assert_eq!(compiled.engine(), EngineKind::Vectorized);
        assert!(compiled.vectorized_loops() > 0);

        let scalar = Steno::new().with_vectorization(VectorizationPolicy::Off);
        let compiled_off = scalar.compile(&q, SourceTypes::from(&c), &udfs).unwrap();
        assert_eq!(compiled_off.engine(), EngineKind::Scalar);
        assert_eq!(compiled_off.vectorized_loops(), 0);

        // Both engines agree on the answer.
        assert_eq!(
            auto.execute(&q, &c, &udfs).unwrap(),
            scalar.execute(&q, &c, &udfs).unwrap()
        );
    }

    #[test]
    fn cache_amortizes_compilation() {
        let engine = Steno::new();
        let q = Query::source("xs").sum().build();
        let c = ctx();
        let udfs = UdfRegistry::new();
        for _ in 0..5 {
            engine.execute(&q, &c, &udfs).unwrap();
        }
        let (hits, misses) = engine.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 4);
    }

    #[test]
    fn distributed_execution_through_the_facade() {
        use steno_cluster::FaultPlan;

        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let input = DistributedCollection::from_f64(
            "xs",
            (0..100).map(f64::from).collect(),
            4,
        );
        // Inject one transient failure per map vertex: the answer must
        // match the fault-free run and the report must show the retries.
        let engine = Steno::new()
            .with_runtime(RuntimeConfig::with_faults(FaultPlan::fail_each_once(4)));
        let (v, report) = engine
            .execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &UdfRegistry::new(),
                &ClusterSpec { workers: 2 },
                VertexEngine::Steno,
            )
            .unwrap();
        let clean = Steno::new()
            .execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &UdfRegistry::new(),
                &ClusterSpec { workers: 2 },
                VertexEngine::Steno,
            )
            .unwrap()
            .0;
        assert_eq!(v, clean);
        assert!(report.retries >= 4, "one retry per vertex: {}", report.retries);
    }

    #[test]
    fn explain_names_the_tier_for_where_select_sum() {
        let engine = Steno::new();
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(1.5)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let c = ctx();
        let explain = engine
            .explain(&q, SourceTypes::from(&c), &UdfRegistry::new())
            .unwrap();
        assert!(explain.is_optimized());
        let text = explain.render();
        assert!(text.contains("QUIL:"), "{text}");
        assert!(text.contains("loop 0: tier=vectorized"), "{text}");
        let v = steno_obs::json::parse(&explain.to_json()).unwrap();
        assert_eq!(v.get("optimized").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("engine").unwrap().as_str(), Some("vectorized"));
        let loops = v.get("loops").and_then(|l| l.as_array()).unwrap();
        assert_eq!(loops[0].get("tier").unwrap().as_str(), Some("vectorized"));
    }

    #[test]
    fn explain_reports_the_exact_vectorize_fallback_reason() {
        // A UDF call refuses vectorization; EXPLAIN must carry the
        // compiler's exact reason string.
        let mut udfs = UdfRegistry::new();
        udfs.register("twice", vec![Ty::F64], Ty::F64, |args: &[Value]| {
            Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0)
        });
        let engine = Steno::new();
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(1.5)), "x")
            .select(Expr::call("twice", vec![Expr::var("x")]), "x")
            .sum()
            .build();
        let c = ctx();
        let compiled = engine.compile(&q, SourceTypes::from(&c), &udfs).unwrap();
        let expected_reason = compiled.batch_fallbacks()[0].clone();
        let explain = engine.explain(&q, SourceTypes::from(&c), &udfs).unwrap();
        let text = explain.render();
        assert!(
            text.contains(&format!("vectorize-fallback: \"{expected_reason}\"")),
            "explain must quote the exact reason {expected_reason:?}: {text}"
        );
        let v = steno_obs::json::parse(&explain.to_json()).unwrap();
        let loops = v.get("loops").and_then(|l| l.as_array()).unwrap();
        assert_eq!(
            loops[0].get("vectorize_fallback").unwrap().as_str(),
            Some(expected_reason.to_string().as_str())
        );
        assert_eq!(
            loops[0].get("fallback_code").unwrap().as_str(),
            Some(expected_reason.code())
        );
    }

    #[test]
    fn verifier_accepts_fresh_compilations_when_enabled() {
        use steno_obs::MemoryCollector;

        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new().with_verify(true).with_collector(metrics.clone());
        assert!(engine.verify_enabled());
        let c = ctx();
        let udfs = UdfRegistry::new();
        let queries = [
            Query::source("xs").sum().build(),
            Query::source("xs")
                .where_(Expr::var("x").gt(Expr::litf(1.5)), "x")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .sum()
                .build(),
            Query::source("xs").order_by(Expr::var("x"), "x").take(2).build(),
        ];
        for q in &queries {
            engine.execute(q, &c, &udfs).unwrap();
            // Re-execution hits the cache: no second verification.
            engine.execute(q, &c, &udfs).unwrap();
        }
        assert_eq!(
            metrics.counter_value("steno.verify.passed"),
            queries.len() as u64
        );
        // The tape verifier runs alongside the plan verifier on every
        // cache-miss compile — and never on hits.
        assert_eq!(
            metrics.counter_value("steno.tapecheck.passed"),
            queries.len() as u64
        );
        assert_eq!(metrics.counter_value("steno.tapecheck.rejected"), 0);
    }

    #[test]
    fn explain_surfaces_tape_check_verdict() {
        let engine = Steno::new();
        let c = ctx();
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let explain = engine
            .explain(&q, SourceTypes::from(&c), &UdfRegistry::new())
            .unwrap();
        let text = explain.render();
        assert!(text.contains("tape-check: passed (cfg "), "{text}");
        let v = steno_obs::json::parse(&explain.to_json()).unwrap();
        let verdict = v.get("tape_check").unwrap().as_str().unwrap();
        assert!(verdict.starts_with("passed (cfg "), "{verdict}");
    }

    #[test]
    fn explain_surfaces_lints_and_dropped_guards() {
        // `where 1 > 2` is always false: the dead-filter lint must fire,
        // and the proven-non-zero division must report its dropped guard.
        let engine = Steno::new();
        let c = DataContext::new().with_source("ns", vec![1i64, 2, 3, 4]);
        let q = Query::source("ns")
            .where_(Expr::liti(1).gt(Expr::liti(2)), "x")
            .select(
                Expr::if_(
                    (Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)),
                    Expr::var("x") / Expr::liti(2),
                    Expr::var("x"),
                ),
                "x",
            )
            .sum_by(Expr::var("y"), "y")
            .build();
        let explain = engine
            .explain(&q, SourceTypes::from(&c), &UdfRegistry::new())
            .unwrap();
        let text = explain.render();
        // Two guards: `x % 2` and `x / 2` both divide by the literal 2.
        assert!(text.contains("guards-dropped: 2"), "{text}");
        assert!(text.contains("lint: warning[dead-filter]"), "{text}");
        let v = steno_obs::json::parse(&explain.to_json()).unwrap();
        assert_eq!(v.get("guards_dropped").unwrap().as_u64(), Some(2));
        let lints = v.get("lints").and_then(|l| l.as_array()).unwrap();
        assert!(
            lints
                .iter()
                .any(|l| l.as_str().is_some_and(|s| s.contains("dead-filter"))),
            "{lints:?}"
        );
    }

    #[test]
    fn explain_renders_the_fallback_path_for_unsupported_shapes() {
        let engine = Steno::new();
        let q = Query::source("xs").concat(Query::source("xs")).count().build();
        let c = ctx();
        let explain = engine
            .explain(&q, SourceTypes::from(&c), &UdfRegistry::new())
            .unwrap();
        assert!(!explain.is_optimized());
        assert!(explain.render().contains("fallback"), "{}", explain.render());
    }

    #[test]
    fn profiled_execution_reports_cache_and_density() {
        let engine = Steno::new();
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(1.5)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let c = ctx();
        let udfs = UdfRegistry::new();
        let (v, path, prof) = engine.execute_profiled(&q, &c, &udfs).unwrap();
        assert_eq!(v, Value::F64(29.0));
        assert_eq!(path, ExecutionPath::Optimized);
        assert_eq!(prof.cache_hit, Some(false));
        assert_eq!(prof.batch_elements_in, 4);
        assert_eq!(prof.batch_elements_selected, 3);
        // Second run: same counters, but served from the cache.
        let (_, _, prof2) = engine.execute_profiled(&q, &c, &udfs).unwrap();
        assert_eq!(prof2.cache_hit, Some(true));
        assert_eq!(prof2.selection_density(), Some(0.75));
    }

    #[test]
    fn collector_sees_cache_and_execution_metrics() {
        use steno_obs::MemoryCollector;

        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new().with_collector(metrics.clone());
        let q = Query::source("xs").sum().build();
        let c = ctx();
        let udfs = UdfRegistry::new();
        for _ in 0..3 {
            engine.execute(&q, &c, &udfs).unwrap();
        }
        assert_eq!(metrics.counter_value("steno.cache.miss"), 1);
        assert_eq!(metrics.counter_value("steno.cache.hit"), 2);
        assert_eq!(metrics.counter_value("steno.query.executed"), 3);
        assert_eq!(metrics.counter_value("steno.query.fallback"), 0);
        let snap = metrics.snapshot();
        let exec = snap
            .histograms
            .iter()
            .find(|h| h.name == "steno.exec_ns")
            .unwrap();
        assert_eq!(exec.count, 3);
        assert!(snap.histograms.iter().any(|h| h.name == "steno.compile_ns"));
        // The snapshot JSON parses back.
        assert!(steno_obs::json::parse(&snap.to_json()).is_ok());
    }

    #[test]
    fn distributed_jobs_report_into_the_collector() {
        use steno_obs::MemoryCollector;

        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new().with_collector(metrics.clone());
        let q = Query::source("xs").sum().build();
        let input =
            DistributedCollection::from_f64("xs", (0..100).map(f64::from).collect(), 4);
        engine
            .execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &UdfRegistry::new(),
                &ClusterSpec { workers: 2 },
                VertexEngine::Steno,
            )
            .unwrap();
        assert_eq!(metrics.counter_value("cluster.jobs"), 1);
        assert_eq!(metrics.counter_value("cluster.input_elements"), 100);
        assert_eq!(metrics.counter_value("cluster.vertex_attempts"), 4);
    }

    #[test]
    fn distributed_jobs_record_phase_spans() {
        use steno_obs::{FlightRecorder, TraceConfig, TraceMeta};

        let recorder = FlightRecorder::new(TraceConfig::default());
        let engine = Steno::new();
        let q = Query::source("xs").sum().build();
        let input =
            DistributedCollection::from_f64("xs", (0..100).map(f64::from).collect(), 4);
        let tracer = recorder.begin();
        let root = tracer.span("serve.request", None);
        let root_id = root.id();
        engine
            .execute_distributed_traced(
                &q,
                &input,
                &DataContext::new(),
                &UdfRegistry::new(),
                &ClusterSpec { workers: 2 },
                VertexEngine::Steno,
                &tracer,
                root_id,
            )
            .unwrap();
        drop(root);
        recorder.finish(
            &tracer,
            TraceMeta {
                query: q.to_string(),
                ..TraceMeta::default()
            },
        );
        let traces = recorder.recent();
        let trace = traces.last().unwrap();
        let job = trace.span("cluster.job").unwrap();
        assert_eq!(job.parent, root_id);
        for phase in ["cluster.compile", "cluster.map", "cluster.reduce"] {
            let s = trace.span(phase).unwrap();
            assert_eq!(s.parent, Some(job.id), "{phase} parents the job span");
        }
        let map_id = trace.span("cluster.map").unwrap().id;
        let vertices: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "cluster.vertex")
            .collect();
        assert_eq!(vertices.len(), 4, "one span per map vertex");
        assert!(vertices.iter().all(|v| v.parent == Some(map_id)));
        assert!(vertices
            .iter()
            .any(|v| v.note("elements").is_some_and(|n| n.to_string() == "25")));
    }

    #[test]
    fn per_call_options_compile_distinct_cached_plans() {
        use steno_vm::EngineKind;

        let engine = Steno::new();
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let c = ctx();
        let udfs = UdfRegistry::new();

        let auto = engine.compile(&q, SourceTypes::from(&c), &udfs).unwrap();
        assert_eq!(auto.engine(), EngineKind::Vectorized);

        let degraded = StenoOptions {
            vectorize: VectorizationPolicy::Off,
            ..*engine.options()
        };
        let scalar = engine
            .compile_with_options(&q, SourceTypes::from(&c), &udfs, degraded)
            .unwrap();
        assert_eq!(scalar.engine(), EngineKind::Scalar);

        // Both plans live in the cache under distinct keys: recompiling
        // under either policy is a hit, and the stored plans agree.
        let stats = engine.detailed_cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
        let again = engine
            .compile_with_options(&q, SourceTypes::from(&c), &udfs, degraded)
            .unwrap();
        assert!(Arc::ptr_eq(&scalar, &again));
        assert_eq!(engine.detailed_cache_stats().hits, 1);
    }

    #[test]
    fn bounded_cache_evicts_through_the_facade() {
        let engine = Steno::new().with_cache_capacity(1);
        let c = ctx();
        let udfs = UdfRegistry::new();
        engine
            .execute(&Query::source("xs").sum().build(), &c, &udfs)
            .unwrap();
        engine
            .execute(&Query::source("xs").count().build(), &c, &udfs)
            .unwrap();
        let stats = engine.detailed_cache_stats();
        assert_eq!(stats.capacity, Some(1));
        assert_eq!(stats.len, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn ill_typed_queries_error() {
        let engine = Steno::new();
        let q = Query::source("missing").sum().build();
        assert!(engine.execute(&q, &ctx(), &UdfRegistry::new()).is_err());
        assert!(engine
            .execute_text("xs.sum() nonsense", &ctx(), &UdfRegistry::new())
            .is_err());
    }

    #[test]
    fn interrupts_reach_the_iterator_fallback() {
        use std::time::{Duration, Instant};

        let engine = Steno::new();
        // Concat is outside QUIL: this query always takes the iterator
        // fallback, which previously ran to completion regardless of
        // deadlines.
        let big: Vec<f64> = (0..200_000).map(f64::from).collect();
        let c = DataContext::new().with_source("xs", big);
        let q = Query::source("xs")
            .concat(Query::source("xs"))
            .sum()
            .build();
        let udfs = UdfRegistry::new();

        // Inert interrupt: identical to the plain entry, still fallback.
        let inert = Interrupt::none();
        let (v, path) = engine.execute_with_interrupt(&q, &c, &udfs, &inert).unwrap();
        assert_eq!(path, ExecutionPath::Fallback);
        assert_eq!(v, engine.execute(&q, &c, &udfs).unwrap());

        // Expired deadline: the fallback aborts mid-run with the same
        // error shape the VM path reports.
        let expired =
            Interrupt::none().with_deadline(Instant::now() - Duration::from_millis(1));
        match engine.execute_with_interrupt(&q, &c, &udfs, &expired) {
            Err(StenoError::Vm(VmError::DeadlineExceeded)) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }

        // Cancel probe: same, with the cancellation error.
        let probe = Arc::new(|| true) as steno_vm::CancelProbe;
        let cancelled = Interrupt::none().with_cancel_probe(probe);
        match engine.execute_with_interrupt(&q, &c, &udfs, &cancelled) {
            Err(StenoError::Vm(VmError::Cancelled)) => {}
            other => panic!("expected cancelled error, got {other:?}"),
        }

        // The optimized path threads the same interrupt.
        let supported = Query::source("xs").sum().build();
        let expired =
            Interrupt::none().with_deadline(Instant::now() - Duration::from_millis(1));
        match engine.execute_with_interrupt(&supported, &c, &udfs, &expired) {
            Err(StenoError::Vm(VmError::DeadlineExceeded)) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_engine_recompiles_on_selectivity_drift_without_flapping() {
        // End-to-end drift: the same query runs against a workload
        // whose filter keeps ~95% of elements, then the workload shifts
        // so it keeps ~2%. The adaptive engine must notice, recompile
        // once, surface the event in EXPLAIN, and then settle — the
        // sustained new regime must not keep re-triggering.
        use steno_obs::MemoryCollector;

        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new()
            .with_adaptive(true)
            .with_collector(metrics.clone());
        assert!(engine.adaptive_enabled());
        let q = Query::source("xs")
            .where_(Expr::var("x").lt(Expr::litf(1.0)), "x")
            .sum()
            .build();
        let udfs = UdfRegistry::new();
        let n = 200_000;
        // Dense regime: 95% of values sit below the threshold. Large
        // enough that accumulated execution dwarfs the one-off compile
        // (the break-even gate uses real measured times).
        let dense: Vec<f64> = (0..n).map(|i| if i % 20 == 0 { 2.0 } else { 0.5 }).collect();
        let dense_ctx = DataContext::new().with_source("xs", dense);
        // Sparse regime: only 2% below the threshold.
        let sparse: Vec<f64> = (0..n).map(|i| if i % 50 == 0 { 0.5 } else { 2.0 }).collect();
        let sparse_ctx = DataContext::new().with_source("xs", sparse);
        let expect_dense = Value::F64(0.5 * f64::from(n / 20 * 19));
        let expect_sparse = Value::F64(0.5 * f64::from(n / 50));

        for _ in 0..12 {
            assert_eq!(engine.execute(&q, &dense_ctx, &udfs).unwrap(), expect_dense);
        }
        let sources = SourceTypes::from(&dense_ctx);
        let before = engine.explain(&q, sources.clone(), &udfs).unwrap();
        let ExplainPlan::Optimized { reopt, .. } = &before.plan else {
            panic!("expected optimized plan");
        };
        assert!(reopt.is_empty(), "no drift yet: {reopt:?}");

        // Shift the workload and keep running until the engine reacts.
        // Sampling happens on a cadence, so give it plenty of runs.
        let mut events = Vec::new();
        for _ in 0..128 {
            assert_eq!(
                engine.execute(&q, &sparse_ctx, &udfs).unwrap(),
                expect_sparse
            );
            let explained = engine.explain(&q, sources.clone(), &udfs).unwrap();
            let ExplainPlan::Optimized { reopt, .. } = &explained.plan else {
                panic!("expected optimized plan");
            };
            if !reopt.is_empty() {
                events = reopt.clone();
                break;
            }
        }
        assert_eq!(events.len(), 1, "exactly one re-opt: {events:?}");
        assert!(
            events[0].contains("selectivity drift"),
            "got: {}",
            events[0]
        );

        // Settle: the sustained sparse regime must never flap the plan.
        for _ in 0..96 {
            assert_eq!(
                engine.execute(&q, &sparse_ctx, &udfs).unwrap(),
                expect_sparse
            );
        }
        let after = engine.explain(&q, sources, &udfs).unwrap();
        let ExplainPlan::Optimized { reopt, .. } = &after.plan else {
            panic!("expected optimized plan");
        };
        assert_eq!(reopt.len(), 1, "plan flapped: {reopt:?}");
        // The counter agrees with the surfaced events.
        assert_eq!(metrics.counter_value("steno.reopt"), 1);
        assert_eq!(metrics.counter_value("steno.reopt.rejected"), 0);
        assert_eq!(metrics.counter_value("steno.reopt.error"), 0);

        // The re-optimized plan was compiled against measured run facts:
        // EXPLAIN surfaces them as the `measured:` line, and the tier
        // choice consumed the span-measured per-element time (the
        // rationale switches from the element-count heuristic to the
        // measured-cost rule).
        let explained = engine
            .explain(&q, SourceTypes::from(&sparse_ctx), &udfs)
            .unwrap();
        let text = explained.render();
        assert!(text.contains("\n  measured: "), "{text}");
        assert!(text.contains("ns/elem"), "{text}");
        assert!(text.contains("chosen-by: \"measured-cost:"), "{text}");
    }
}
