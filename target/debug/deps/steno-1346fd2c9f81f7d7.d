/root/repo/target/debug/deps/steno-1346fd2c9f81f7d7.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-1346fd2c9f81f7d7.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-1346fd2c9f81f7d7.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/rt.rs:
