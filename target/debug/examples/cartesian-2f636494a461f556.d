/root/repo/target/debug/examples/cartesian-2f636494a461f556.d: examples/cartesian.rs

/root/repo/target/debug/examples/cartesian-2f636494a461f556: examples/cartesian.rs

examples/cartesian.rs:
