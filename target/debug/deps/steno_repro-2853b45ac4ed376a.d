/root/repo/target/debug/deps/steno_repro-2853b45ac4ed376a.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-2853b45ac4ed376a.rlib: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-2853b45ac4ed376a.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
