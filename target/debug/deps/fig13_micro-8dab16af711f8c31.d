/root/repo/target/debug/deps/fig13_micro-8dab16af711f8c31.d: crates/bench/benches/fig13_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_micro-8dab16af711f8c31.rmeta: crates/bench/benches/fig13_micro.rs Cargo.toml

crates/bench/benches/fig13_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
