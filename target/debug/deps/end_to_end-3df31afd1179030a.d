/root/repo/target/debug/deps/end_to_end-3df31afd1179030a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3df31afd1179030a: tests/end_to_end.rs

tests/end_to_end.rs:
