/root/repo/target/debug/deps/bench-baaaf62a9c7c8a70.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/bench-baaaf62a9c7c8a70: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
