/root/repo/target/debug/deps/steno_serve-682121649e8ac038.d: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

/root/repo/target/debug/deps/steno_serve-682121649e8ac038: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

crates/steno-serve/src/lib.rs:
crates/steno-serve/src/breaker.rs:
crates/steno-serve/src/loadgen.rs:
crates/steno-serve/src/report.rs:
crates/steno-serve/src/service.rs:
