/root/repo/target/debug/examples/histogram-76af537a096f5dfa.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-76af537a096f5dfa: examples/histogram.rs

examples/histogram.rs:
