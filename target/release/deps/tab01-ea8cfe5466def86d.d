/root/repo/target/release/deps/tab01-ea8cfe5466def86d.d: crates/bench/src/bin/tab01.rs

/root/repo/target/release/deps/tab01-ea8cfe5466def86d: crates/bench/src/bin/tab01.rs

crates/bench/src/bin/tab01.rs:
