/root/repo/target/release/deps/steno_repro-0ff29f79d43fbd27.d: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-0ff29f79d43fbd27.rlib: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-0ff29f79d43fbd27.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
