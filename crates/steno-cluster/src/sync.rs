//! Poison-recovering wrappers over `std::sync` primitives.
//!
//! The fault-tolerant scheduler *expects* panics: vertex bodies are run
//! under `catch_unwind`, and a panicking attempt must not wedge the
//! shared scheduler state behind a poisoned lock. These wrappers recover
//! the inner guard on poisoning — safe here because every critical
//! section leaves the protected state consistent (single-field writes,
//! queue push/pop, counter bumps) and the vertex boundary converts the
//! panic itself into a structured [`VertexFailure`].
//!
//! [`VertexFailure`]: crate::fault::VertexFailure

use std::sync::PoisonError;
use std::time::Duration;

/// A guard for [`Mutex`] (the plain `std` guard).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` recovers from poisoning instead of returning a
/// `Result` (the `parking_lot`-style API the scheduler is written
/// against, without the external dependency).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering the guard if a panicking holder
    /// poisoned it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Waits on `guard` for at most `dur`, returning the re-acquired
    /// guard (poison-recovering; spurious wakes allowed, as usual).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> MutexGuard<'a, T> {
        match self.0.wait_timeout(guard, dur) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7_i32));
        let m2 = Arc::clone(&m);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        }));
        assert_eq!(*m.lock(), 7, "guard recovered after a panicking holder");
        let m = Arc::try_unwrap(m).map_err(|_| ()).expect("sole owner");
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn wait_timeout_returns_the_guard() {
        let m = Mutex::new(1_i32);
        let cv = Condvar::new();
        let g = m.lock();
        let g = cv.wait_timeout(g, Duration::from_millis(1));
        assert_eq!(*g, 1);
    }
}
