/root/repo/target/debug/examples/vec_sanity-575c3215e046b852.d: crates/steno-vm/examples/vec_sanity.rs

/root/repo/target/debug/examples/vec_sanity-575c3215e046b852: crates/steno-vm/examples/vec_sanity.rs

crates/steno-vm/examples/vec_sanity.rs:
