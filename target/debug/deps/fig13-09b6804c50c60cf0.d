/root/repo/target/debug/deps/fig13-09b6804c50c60cf0.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-09b6804c50c60cf0: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
