/root/repo/target/debug/examples/quickstart-361c42086cc7acb9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-361c42086cc7acb9: examples/quickstart.rs

examples/quickstart.rs:
