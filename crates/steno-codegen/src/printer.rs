//! Rendering generated programs as Rust source.
//!
//! The paper builds a C# AST with CodeDOM and hands it to `csc`; this
//! printer is the equivalent emitter. Its output is valid, readable Rust
//! (modulo the small `Lookup`/`GroupAggTable` runtime helpers), and it is
//! exactly what the `steno!` proc macro splices into the caller's crate —
//! so the printed text is not documentation, it is the compile-time
//! backend.

use std::collections::HashSet;

use steno_expr::{Expr, Value};

use crate::imp::{BlockId, ImpProgram, LoopHeader, SinkDecl, Stmt, Terminal};

/// A growing indented text buffer.
struct Writer {
    out: String,
    indent: usize,
}

impl Writer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }
}

fn lit_f64(x: f64) -> String {
    if x == f64::INFINITY {
        "f64::INFINITY".into()
    } else if x == f64::NEG_INFINITY {
        "f64::NEG_INFINITY".into()
    } else if x.is_nan() {
        "f64::NAN".into()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::F64(x) => lit_f64(*x),
        Value::I64(x) => format!("{x}i64"),
        Value::Bool(b) => format!("{b}"),
        other => format!("/* const */ {other}"),
    }
}

/// Renders an expression as Rust source.
pub fn render_expr(e: &Expr) -> String {
    use steno_expr::expr::{BinOp, UnOp};
    match e {
        Expr::Var(v) => v.clone(),
        Expr::LitF64(x) => lit_f64(*x),
        Expr::LitI64(x) => format!("{x}"),
        Expr::LitBool(b) => format!("{b}"),
        Expr::Bin(BinOp::Min, a, b) => format!("{}.min({})", render_expr(a), render_expr(b)),
        Expr::Bin(BinOp::Max, a, b) => format!("{}.max({})", render_expr(a), render_expr(b)),
        Expr::Bin(op, a, b) => format!("({} {} {})", render_expr(a), op.symbol(), render_expr(b)),
        Expr::Un(UnOp::Neg, a) => format!("(-{})", render_expr(a)),
        Expr::Un(UnOp::Not, a) => format!("(!{})", render_expr(a)),
        Expr::Un(op, a) => format!("{}.{}()", render_expr(a), op.symbol()),
        Expr::Call(f, args) => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!("{f}({})", args.join(", "))
        }
        Expr::Field(a, i) => format!("{}.{i}", render_expr(a)),
        Expr::RowIndex(a, i) => format!("{}[{} as usize]", render_expr(a), render_expr(i)),
        Expr::RowLen(a) => format!("({}.len() as i64)", render_expr(a)),
        Expr::MkPair(a, b) => format!("({}, {})", render_expr(a), render_expr(b)),
        Expr::If(c, t, els) => format!(
            "if {} {{ {} }} else {{ {} }}",
            render_expr(c),
            render_expr(t),
            render_expr(els)
        ),
        Expr::Cast(ty, a) => format!("({} as {ty})", render_expr(a)),
    }
}

fn collect_assigned(p: &ImpProgram, id: BlockId, out: &mut HashSet<String>) {
    for stmt in p.block(id) {
        match stmt {
            Stmt::Assign { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::BlockRef(b) => collect_assigned(p, *b, out),
            Stmt::For { body, .. } => collect_assigned(p, *body, out),
            Stmt::If { then, els, .. } => {
                for s in then.iter().chain(els) {
                    if let Stmt::Assign { name, .. } = s {
                        out.insert(name.clone());
                    }
                }
            }
            _ => {}
        }
    }
}

fn render_inline(w: &mut Writer, stmts: &[Stmt], assigned: &HashSet<String>, p: &ImpProgram) {
    for s in stmts {
        render_stmt(w, s, assigned, p);
    }
}

fn render_stmt(w: &mut Writer, stmt: &Stmt, assigned: &HashSet<String>, p: &ImpProgram) {
    match stmt {
        Stmt::Decl { name, ty, init } => {
            let mutability = if assigned.contains(name) { "mut " } else { "" };
            w.line(&format!(
                "let {mutability}{name}: {ty} = {};",
                render_expr(init)
            ));
        }
        Stmt::Assign { name, expr } => w.line(&format!("{name} = {};", render_expr(expr))),
        Stmt::For {
            header,
            elem_var,
            body,
        } => {
            match header {
                LoopHeader::Source { name, .. } => {
                    // Indexed access "enables the compiler to hoist the
                    // array bounds check" (§4.2).
                    w.line(&format!("for __i in 0..{name}.len() {{"));
                    w.indent += 1;
                    w.line(&format!("let {elem_var} = {name}[__i];"));
                }
                LoopHeader::Range { start, count } => {
                    w.line(&format!("for __i in 0..{count}usize {{"));
                    w.indent += 1;
                    w.line(&format!("let {elem_var} = {start}i64 + __i as i64;"));
                }
                LoopHeader::Repeat { value, count } => {
                    w.line(&format!("for __i in 0..{count}usize {{"));
                    w.indent += 1;
                    w.line(&format!("let {elem_var} = {};", value_literal(value)));
                }
                LoopHeader::SeqExpr { expr, .. } => {
                    w.line(&format!("let __seq = {};", render_expr(expr)));
                    w.line("for __i in 0..__seq.len() {");
                    w.indent += 1;
                    w.line(&format!("let {elem_var} = __seq[__i];"));
                }
                LoopHeader::Sink { name, .. } => {
                    w.line(&format!("for {elem_var} in {name}.iter() {{"));
                    w.indent += 1;
                }
            }
            render_inline(w, &p.flatten(*body), assigned, p);
            w.indent -= 1;
            w.line("}");
        }
        Stmt::IfNotContinue { cond } => {
            w.line(&format!("if !{} {{ continue; }}", render_expr(cond)));
        }
        Stmt::IfBreak { cond } => {
            w.line(&format!("if {} {{ break; }}", render_expr(cond)));
        }
        Stmt::If { cond, then, els } => {
            w.line(&format!("if {} {{", render_expr(cond)));
            w.indent += 1;
            render_inline(w, then, assigned, p);
            w.indent -= 1;
            if els.is_empty() {
                w.line("}");
            } else {
                w.line("} else {");
                w.indent += 1;
                render_inline(w, els, assigned, p);
                w.indent -= 1;
                w.line("}");
            }
        }
        Stmt::Continue => w.line("continue;"),
        Stmt::DeclSink { name, decl } => match decl {
            SinkDecl::Group => w.line(&format!("let mut {name} = Lookup::new();")),
            SinkDecl::GroupAgg { init, .. } => w.line(&format!(
                "let mut {name} = GroupAggTable::new({});",
                render_expr(init)
            )),
            SinkDecl::SortedVec { .. } => {
                w.line(&format!("let mut {name} = Vec::new(); // sorted at seal"))
            }
            SinkDecl::DistinctVec => w.line(&format!(
                "let mut {name} = Vec::new(); let mut {name}_seen = HashSet::new();"
            )),
            SinkDecl::Vec => w.line(&format!("let mut {name} = Vec::new();")),
        },
        Stmt::GroupPut { sink, key, value } => {
            // Fig. 7(b): sink = sink.put(key, elem).
            w.line(&format!(
                "{sink} = {sink}.put({}, {});",
                render_expr(key),
                render_expr(value)
            ));
        }
        Stmt::GroupAggUpdate {
            sink,
            key,
            acc_param,
            elem_param,
            value,
            update,
        } => {
            w.line(&format!(
                "{sink}.update({}, |{acc_param}| {{ let {elem_param} = {}; {} }});",
                render_expr(key),
                render_expr(value),
                render_expr(update)
            ));
        }
        Stmt::SinkPush { sink, value, key } => match key {
            Some(k) => w.line(&format!(
                "{sink}.push(({}, {}));",
                render_expr(k),
                render_expr(value)
            )),
            None => w.line(&format!("{sink}.push({});", render_expr(value))),
        },
        Stmt::SinkSeal { sink } => {
            w.line(&format!("{sink}.sort_by(|a, b| a.0.total_cmp(&b.0));"));
        }
        Stmt::Yield { value } => w.line(&format!("__out.push({});", render_expr(value))),
        Stmt::Return { value } => w.line(&format!("return {};", render_expr(value))),
        Stmt::ReturnSink { sink } => w.line(&format!("return {sink};")),
        Stmt::BlockRef(b) => render_inline(w, &p.flatten(*b), assigned, p),
    }
}

/// Renders the whole program as a Rust function body.
///
/// The `steno!` macro emits this text verbatim inside a block expression;
/// it is also useful for inspecting what Steno generated (the `Steno
/// .Sum()` column of Fig. 1 is running exactly this code).
pub fn render_rust(p: &ImpProgram) -> String {
    let mut assigned = HashSet::new();
    collect_assigned(p, p.root, &mut assigned);
    let mut w = Writer {
        out: String::new(),
        indent: 0,
    };
    match &p.terminal {
        Terminal::Scalar(ty) => w.line(&format!("// -> {ty}")),
        Terminal::Sequence(ty) => {
            w.line(&format!("// -> Vec<{ty}>"));
            w.line("let mut __out = Vec::new();");
        }
    }
    render_inline(&mut w, &p.flatten(p.root), &assigned, p);
    if matches!(p.terminal, Terminal::Sequence(_)) {
        w.line("return __out;");
    }
    w.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use steno_expr::{Ty, UdfRegistry};
    use steno_query::typing::SourceTypes;
    use steno_query::Query;
    use steno_quil::lower;

    fn render(q: steno_query::QueryExpr) -> String {
        let srcs = SourceTypes::new().with("xs", Ty::F64).with("ys", Ty::F64);
        let chain = lower(&q, &srcs, &UdfRegistry::new()).unwrap();
        render_rust(&generate(&chain).unwrap())
    }

    #[test]
    fn sum_of_squares_prints_a_simple_loop() {
        let text = render(
            Query::source("xs")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .sum()
                .build(),
        );
        assert!(text.contains("let mut agg_0: f64 = 0.0;"), "{text}");
        assert!(text.contains("for __i in 0..xs.len() {"), "{text}");
        assert!(text.contains("let elem_1: f64 = (elem_0 * elem_0);"), "{text}");
        assert!(text.contains("agg_0 = (agg_0 + elem_1);"), "{text}");
        assert!(text.contains("return agg_0;"), "{text}");
    }

    #[test]
    fn filter_prints_continue_guard() {
        let text = render(
            Query::source("xs")
                .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
                .build(),
        );
        assert!(text.contains("if !(elem_0 > 0.0) { continue; }"), "{text}");
        assert!(text.contains("__out.push(elem_0);"), "{text}");
        assert!(text.contains("return __out;"), "{text}");
    }

    #[test]
    fn nested_query_prints_nested_loops() {
        let text = render(
            Query::source("xs")
                .select_many(
                    Query::source("ys").select(Expr::var("x") * Expr::var("y"), "y"),
                    "x",
                )
                .sum()
                .build(),
        );
        // Two loops, multiply innermost, single aggregate.
        assert_eq!(text.matches("for __i in").count(), 2, "{text}");
        assert!(text.contains("(elem_0 * elem_1)"), "{text}");
        let agg_pos = text.find("agg_0 = ").unwrap();
        let inner_loop_pos = text.find("0..ys.len()").unwrap();
        assert!(agg_pos > inner_loop_pos, "aggregate inside inner loop");
    }

    #[test]
    fn infinities_print_as_constants() {
        let text = render(Query::source("xs").min().build());
        assert!(text.contains("f64::INFINITY"), "{text}");
        assert!(text.contains(".min(elem_0)"), "{text}");
    }
}
