/root/repo/target/debug/deps/steno-314d15e98d318ddd.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs Cargo.toml

/root/repo/target/debug/deps/libsteno-314d15e98d318ddd.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs Cargo.toml

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
