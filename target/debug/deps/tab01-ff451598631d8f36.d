/root/repo/target/debug/deps/tab01-ff451598631d8f36.d: crates/bench/src/bin/tab01.rs

/root/repo/target/debug/deps/tab01-ff451598631d8f36: crates/bench/src/bin/tab01.rs

crates/bench/src/bin/tab01.rs:
