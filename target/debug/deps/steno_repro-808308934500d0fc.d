/root/repo/target/debug/deps/steno_repro-808308934500d0fc.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/steno_repro-808308934500d0fc: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
