/root/repo/target/debug/examples/histogram-62bd963f5653966a.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-62bd963f5653966a: examples/histogram.rs

examples/histogram.rs:
