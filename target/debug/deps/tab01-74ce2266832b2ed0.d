/root/repo/target/debug/deps/tab01-74ce2266832b2ed0.d: crates/bench/src/bin/tab01.rs

/root/repo/target/debug/deps/tab01-74ce2266832b2ed0: crates/bench/src/bin/tab01.rs

crates/bench/src/bin/tab01.rs:
