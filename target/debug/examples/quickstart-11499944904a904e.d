/root/repo/target/debug/examples/quickstart-11499944904a904e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-11499944904a904e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
