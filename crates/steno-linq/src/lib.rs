//! The LINQ runtime substrate: lazy iterator chains with dynamic dispatch.
//!
//! This crate reproduces the execution model that Steno optimizes *away*
//! (§2 of the paper). Each operator is a lazily-evaluated state machine
//! implementing the [`Enumerator`] trait; operators compose through
//! [`BoxEnum`] trait objects, and user functions are stored as boxed
//! function objects ([`Func`]). Per element, per operator, this costs:
//!
//! * one virtual call to `move_next()` (which also runs the state-machine
//!   logic simulating coroutine behaviour),
//! * one virtual call to `current()`,
//! * one indirect call to the predicate/transformation function object.
//!
//! That is exactly the cost structure of `IEnumerator<T>` chains in .NET —
//! indirect branches the optimizer cannot inline — and it is the baseline
//! ("LINQ") measured in every experiment of the paper.
//!
//! Besides the typed generic layer, the [`interp`] module executes runtime
//! query ASTs (from `steno-query`) by instantiating these operators at
//! [`Value`](steno_expr::Value) and evaluating expression trees per element:
//! this is the "unoptimized" executor that DryadLINQ vertices use before
//! Steno is applied.
//!
//! # Example
//!
//! ```
//! use steno_linq::Enumerable;
//!
//! let xs = Enumerable::from_vec((0..10i64).collect());
//! let even_squares: Vec<i64> = xs
//!     .where_(|x| x % 2 == 0)
//!     .select(|x| x * x)
//!     .to_vec();
//! assert_eq!(even_squares, vec![0, 4, 16, 36, 64]);
//! ```

pub mod aggregates;
pub mod enumerable;
pub mod enumerator;
pub mod grouping;
pub mod interp;
pub mod lookup;
pub mod sources;

pub use enumerable::Enumerable;
pub use enumerator::{BoxEnum, Enumerator, Func, Func2};
pub use grouping::Grouping;
pub use lookup::Lookup;
