/root/repo/target/debug/deps/fig13-1ba01be1c5be8a34.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-1ba01be1c5be8a34: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
