/root/repo/target/release/examples/quickstart-78d98d85f2a978b5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-78d98d85f2a978b5: examples/quickstart.rs

examples/quickstart.rs:
