/root/repo/target/debug/examples/explain_profile-0b4b93f567326b20.d: examples/explain_profile.rs Cargo.toml

/root/repo/target/debug/examples/libexplain_profile-0b4b93f567326b20.rmeta: examples/explain_profile.rs Cargo.toml

examples/explain_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
