/root/repo/target/debug/deps/fig14-ef4e3e4a15116f87.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-ef4e3e4a15116f87: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
