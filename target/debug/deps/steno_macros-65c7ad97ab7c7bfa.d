/root/repo/target/debug/deps/steno_macros-65c7ad97ab7c7bfa.d: crates/steno-macros/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_macros-65c7ad97ab7c7bfa.rmeta: crates/steno-macros/src/lib.rs Cargo.toml

crates/steno-macros/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
