//! The bytecode interpreter.
//!
//! A single tight dispatch loop over unboxed register banks. Per element
//! of a simple numeric query this executes ~7 enum-dispatched
//! instructions — no virtual calls, no iterator state machines — which is
//! what makes the Steno-optimized path competitive with the loop a
//! programmer would write by hand (§7.1).

use std::collections::{HashMap, HashSet};
use std::fmt;

use steno_expr::Value;
use steno_obs::{SpanGuard, SpanId, Tracer};

use crate::instr::{CmpOp, Instr, Program};
use crate::interrupt::{Interrupt, POLL_STRIDE};
use crate::prepared::{Bindings, PreparedSource};
use crate::instr::SKey;
use crate::profile::QueryProfile;
use crate::sink::{ScalarKey, SinkRt};

/// A runtime error during bytecode execution.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Row or sequence index out of range.
    IndexOutOfBounds {
        /// The index used.
        index: i64,
        /// The length of the indexed value.
        len: usize,
    },
    /// A boxed value had the wrong shape for the instruction.
    Shape(String),
    /// A source or UDF name could not be resolved at bind time.
    MissingBinding(String),
    /// Execution fell off the end of the program.
    PcOutOfRange,
    /// Execution was cooperatively cancelled via an [`Interrupt`] probe
    /// before producing a result.
    Cancelled,
    /// Execution ran past the [`Interrupt`] deadline and was aborted at
    /// the next poll point.
    DeadlineExceeded,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivisionByZero => write!(f, "integer division by zero"),
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            VmError::Shape(msg) => write!(f, "value shape mismatch: {msg}"),
            VmError::MissingBinding(what) => write!(f, "missing binding for {what}"),
            VmError::PcOutOfRange => write!(f, "program counter out of range"),
            VmError::Cancelled => write!(f, "query cancelled"),
            VmError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for VmError {}

fn shape(msg: &str) -> VmError {
    VmError::Shape(msg.into())
}

#[inline]
fn idx_check(index: i64, len: usize) -> Result<usize, VmError> {
    if index < 0 || index as usize >= len {
        Err(VmError::IndexOutOfBounds { index, len })
    } else {
        Ok(index as usize)
    }
}

/// Executes a program against resolved bindings, returning its result.
///
/// # Errors
///
/// Returns a [`VmError`] for data-dependent failures (division by zero,
/// out-of-range indexing) or shape mismatches (only possible with
/// hand-assembled programs).
pub fn run_program(p: &Program, bindings: &Bindings) -> Result<Value, VmError> {
    let mut unused = QueryProfile::default();
    run_impl::<false>(p, bindings, &mut unused, &Interrupt::none(), &Tracer::disabled(), None)
}

/// As [`run_program`], polling `interrupt` cooperatively: the scalar
/// dispatch loop checks it at loop back-edges (amortized over
/// [`POLL_STRIDE`] elements) and the batch engine checks it at every
/// 1024-lane batch boundary, so a cancelled or past-deadline query
/// aborts in bounded time instead of running to completion. An inert
/// interrupt makes this identical to [`run_program`].
///
/// # Errors
///
/// As [`run_program`], plus [`VmError::Cancelled`] and
/// [`VmError::DeadlineExceeded`].
pub fn run_program_with(
    p: &Program,
    bindings: &Bindings,
    interrupt: &Interrupt,
) -> Result<Value, VmError> {
    let mut unused = QueryProfile::default();
    run_impl::<false>(p, bindings, &mut unused, interrupt, &Tracer::disabled(), None)
}

/// As [`run_program`], additionally filling a [`QueryProfile`] with
/// per-operator element counts and wall time. This is a separate
/// monomorphization of the same dispatch loop, so [`run_program`]
/// compiles every profiling branch out and pays nothing for the
/// feature's existence.
///
/// # Errors
///
/// As [`run_program`].
pub fn run_program_profiled(
    p: &Program,
    bindings: &Bindings,
) -> Result<(Value, QueryProfile), VmError> {
    run_program_profiled_with(p, bindings, &Interrupt::none())
}

/// As [`run_program_profiled`], polling `interrupt` like
/// [`run_program_with`] — the entry point for adaptive execution under a
/// deadline, where the engine wants run facts *and* bounded abort.
///
/// # Errors
///
/// As [`run_program_with`].
pub fn run_program_profiled_with(
    p: &Program,
    bindings: &Bindings,
    interrupt: &Interrupt,
) -> Result<(Value, QueryProfile), VmError> {
    run_program_traced(p, bindings, interrupt, &Tracer::disabled(), None)
}

/// As [`run_program_profiled_with`], additionally recording a `vm.run`
/// root span plus one `vm.loop` span per `FusedLoop`/`BatchLoop`
/// instruction into `tracer` (annotated with tier, element counts, and
/// selection density). Loop spans open *before* the interrupt check at
/// loop entry, so a query aborted by a deadline still records the loop
/// it died in. With a disabled tracer this is exactly
/// [`run_program_profiled_with`].
///
/// # Errors
///
/// As [`run_program_with`].
pub fn run_program_traced(
    p: &Program,
    bindings: &Bindings,
    interrupt: &Interrupt,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Result<(Value, QueryProfile), VmError> {
    let mut prof = QueryProfile::default();
    let start = std::time::Instant::now();
    let mut root = tracer.span("vm.run", parent);
    let result = run_impl::<true>(p, bindings, &mut prof, interrupt, tracer, root.id());
    prof.wall = start.elapsed();
    root.note("scalar_instrs", prof.scalar_instrs);
    root.note("out_elements", prof.out_elements);
    if prof.batch_loops == 0 && prof.fused_loops_run == 0 {
        root.note("tier", "scalar");
    }
    drop(root);
    Ok((result?, prof))
}

fn run_impl<const PROFILE: bool>(
    p: &Program,
    bindings: &Bindings,
    prof: &mut QueryProfile,
    interrupt: &Interrupt,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Result<Value, VmError> {
    // Back-edge poll budget: a full interrupt check (clock read + probe
    // call) runs once per POLL_STRIDE backward jumps.
    let mut intr_budget: u32 = POLL_STRIDE;
    let mut fregs = vec![0.0f64; p.n_fregs as usize];
    let mut iregs = vec![0i64; p.n_iregs as usize];
    let mut vregs = vec![Value::I64(0); p.n_vregs as usize];
    let mut sinks: Vec<SinkRt> = (0..p.n_sinks).map(|_| SinkRt::Empty).collect();
    let mut frozen: Vec<Vec<Value>> = (0..p.n_sinks).map(|_| Vec::new()).collect();
    let mut out: Vec<Value> = Vec::new();

    // Scratch buffer for UDF arguments, reused across calls so the
    // dispatch loop does not allocate per element.
    let mut udf_args: Vec<Value> = Vec::new();

    let instrs = &p.instrs;
    let mut pc = 0usize;
    loop {
        let instr = instrs.get(pc).ok_or(VmError::PcOutOfRange)?;
        pc += 1;
        if PROFILE {
            prof.scalar_instrs += 1;
        }
        match instr {
            Instr::Jump(t) => {
                let target = *t as usize;
                // Loop back-edges are the scalar tier's cooperative
                // poll points (pc already points past this instruction,
                // so any smaller target is a back-edge).
                if target < pc {
                    interrupt.poll(&mut intr_budget)?;
                }
                pc = target;
            }
            Instr::JumpIfFalse(c, t) => {
                if iregs[*c as usize] == 0 {
                    let target = *t as usize;
                    if target < pc {
                        interrupt.poll(&mut intr_budget)?;
                    }
                    pc = target;
                }
            }
            Instr::JumpIfTrue(c, t) => {
                if iregs[*c as usize] != 0 {
                    let target = *t as usize;
                    if target < pc {
                        interrupt.poll(&mut intr_budget)?;
                    }
                    pc = target;
                }
            }
            Instr::BrCmpF {
                op,
                a,
                b,
                on_true,
                target,
            } => {
                let (x, y) = (fregs[*a as usize], fregs[*b as usize]);
                let taken = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                if taken == *on_true {
                    let target = *target as usize;
                    if target < pc {
                        interrupt.poll(&mut intr_budget)?;
                    }
                    pc = target;
                }
            }
            Instr::BrCmpI {
                op,
                a,
                b,
                on_true,
                target,
            } => {
                let (x, y) = (iregs[*a as usize], iregs[*b as usize]);
                let taken = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                if taken == *on_true {
                    let target = *target as usize;
                    if target < pc {
                        interrupt.poll(&mut intr_budget)?;
                    }
                    pc = target;
                }
            }
            Instr::IncJump { r, target } => {
                iregs[*r as usize] += 1;
                let target = *target as usize;
                if target < pc {
                    interrupt.poll(&mut intr_budget)?;
                }
                pc = target;
            }
            Instr::MulAddF(d, a, b, c) => {
                fregs[*d as usize] = fregs[*a as usize] * fregs[*b as usize] + fregs[*c as usize]
            }
            Instr::MulAddI(d, a, b, c) => {
                iregs[*d as usize] = iregs[*a as usize]
                    .wrapping_mul(iregs[*b as usize])
                    .wrapping_add(iregs[*c as usize])
            }
            Instr::ConstF(d, x) => fregs[*d as usize] = *x,
            Instr::ConstI(d, x) => iregs[*d as usize] = *x,
            Instr::ConstV(d, v) => vregs[*d as usize] = v.clone(),
            Instr::MovF(d, s) => fregs[*d as usize] = fregs[*s as usize],
            Instr::MovI(d, s) => iregs[*d as usize] = iregs[*s as usize],
            Instr::MovV(d, s) => vregs[*d as usize] = vregs[*s as usize].clone(),

            Instr::AddF(d, a, b) => fregs[*d as usize] = fregs[*a as usize] + fregs[*b as usize],
            Instr::SubF(d, a, b) => fregs[*d as usize] = fregs[*a as usize] - fregs[*b as usize],
            Instr::MulF(d, a, b) => fregs[*d as usize] = fregs[*a as usize] * fregs[*b as usize],
            Instr::DivF(d, a, b) => fregs[*d as usize] = fregs[*a as usize] / fregs[*b as usize],
            Instr::RemF(d, a, b) => fregs[*d as usize] = fregs[*a as usize] % fregs[*b as usize],
            Instr::NegF(d, a) => fregs[*d as usize] = -fregs[*a as usize],
            Instr::AbsF(d, a) => fregs[*d as usize] = fregs[*a as usize].abs(),
            Instr::SqrtF(d, a) => fregs[*d as usize] = fregs[*a as usize].sqrt(),
            Instr::FloorF(d, a) => fregs[*d as usize] = fregs[*a as usize].floor(),
            Instr::MinF(d, a, b) => {
                fregs[*d as usize] = fregs[*a as usize].min(fregs[*b as usize])
            }
            Instr::MaxF(d, a, b) => {
                fregs[*d as usize] = fregs[*a as usize].max(fregs[*b as usize])
            }

            Instr::AddI(d, a, b) => {
                iregs[*d as usize] = iregs[*a as usize].wrapping_add(iregs[*b as usize])
            }
            Instr::SubI(d, a, b) => {
                iregs[*d as usize] = iregs[*a as usize].wrapping_sub(iregs[*b as usize])
            }
            Instr::MulI(d, a, b) => {
                iregs[*d as usize] = iregs[*a as usize].wrapping_mul(iregs[*b as usize])
            }
            Instr::DivI(d, a, b) => {
                let rhs = iregs[*b as usize];
                if rhs == 0 {
                    return Err(VmError::DivisionByZero);
                }
                iregs[*d as usize] = iregs[*a as usize].wrapping_div(rhs);
            }
            Instr::RemI(d, a, b) => {
                let rhs = iregs[*b as usize];
                if rhs == 0 {
                    return Err(VmError::DivisionByZero);
                }
                iregs[*d as usize] = iregs[*a as usize].wrapping_rem(rhs);
            }
            Instr::NegI(d, a) => iregs[*d as usize] = iregs[*a as usize].wrapping_neg(),
            Instr::IncI(r) => iregs[*r as usize] += 1,
            Instr::AbsI(d, a) => iregs[*d as usize] = iregs[*a as usize].wrapping_abs(),
            Instr::MinI(d, a, b) => {
                iregs[*d as usize] = iregs[*a as usize].min(iregs[*b as usize])
            }
            Instr::MaxI(d, a, b) => {
                iregs[*d as usize] = iregs[*a as usize].max(iregs[*b as usize])
            }
            Instr::NotB(d, a) => iregs[*d as usize] = i64::from(iregs[*a as usize] == 0),

            Instr::EqF(d, a, b) => {
                iregs[*d as usize] = i64::from(fregs[*a as usize] == fregs[*b as usize])
            }
            Instr::NeF(d, a, b) => {
                iregs[*d as usize] = i64::from(fregs[*a as usize] != fregs[*b as usize])
            }
            Instr::LtF(d, a, b) => {
                iregs[*d as usize] = i64::from(fregs[*a as usize] < fregs[*b as usize])
            }
            Instr::LeF(d, a, b) => {
                iregs[*d as usize] = i64::from(fregs[*a as usize] <= fregs[*b as usize])
            }
            Instr::GtF(d, a, b) => {
                iregs[*d as usize] = i64::from(fregs[*a as usize] > fregs[*b as usize])
            }
            Instr::GeF(d, a, b) => {
                iregs[*d as usize] = i64::from(fregs[*a as usize] >= fregs[*b as usize])
            }
            Instr::EqI(d, a, b) => {
                iregs[*d as usize] = i64::from(iregs[*a as usize] == iregs[*b as usize])
            }
            Instr::NeI(d, a, b) => {
                iregs[*d as usize] = i64::from(iregs[*a as usize] != iregs[*b as usize])
            }
            Instr::LtI(d, a, b) => {
                iregs[*d as usize] = i64::from(iregs[*a as usize] < iregs[*b as usize])
            }
            Instr::LeI(d, a, b) => {
                iregs[*d as usize] = i64::from(iregs[*a as usize] <= iregs[*b as usize])
            }
            Instr::GtI(d, a, b) => {
                iregs[*d as usize] = i64::from(iregs[*a as usize] > iregs[*b as usize])
            }
            Instr::GeI(d, a, b) => {
                iregs[*d as usize] = i64::from(iregs[*a as usize] >= iregs[*b as usize])
            }
            Instr::EqV(d, a, b) => {
                iregs[*d as usize] = i64::from(vregs[*a as usize] == vregs[*b as usize])
            }
            Instr::CmpV(d, a, b) => {
                iregs[*d as usize] = match vregs[*a as usize].cmp_total(&vregs[*b as usize]) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }
            }

            Instr::F2I(d, a) => iregs[*d as usize] = fregs[*a as usize] as i64,
            Instr::I2F(d, a) => fregs[*d as usize] = iregs[*a as usize] as f64,
            Instr::FToV(d, a) => vregs[*d as usize] = Value::F64(fregs[*a as usize]),
            Instr::IToV(d, a) => vregs[*d as usize] = Value::I64(iregs[*a as usize]),
            Instr::BToV(d, a) => vregs[*d as usize] = Value::Bool(iregs[*a as usize] != 0),
            Instr::VToF(d, a) => {
                fregs[*d as usize] = vregs[*a as usize]
                    .as_f64()
                    .ok_or_else(|| shape("expected a number"))?
            }
            Instr::VToI(d, a) => {
                iregs[*d as usize] = vregs[*a as usize]
                    .as_i64()
                    .ok_or_else(|| shape("expected an integer"))?
            }
            Instr::VToB(d, a) => {
                iregs[*d as usize] = i64::from(
                    vregs[*a as usize]
                        .as_bool()
                        .ok_or_else(|| shape("expected a boolean"))?,
                )
            }

            Instr::MkPair(d, a, b) => {
                vregs[*d as usize] =
                    Value::pair(vregs[*a as usize].clone(), vregs[*b as usize].clone())
            }
            Instr::Field0(d, s) => {
                let (a, _) = vregs[*s as usize]
                    .as_pair()
                    .ok_or_else(|| shape("expected a pair"))?;
                let a = a.clone();
                vregs[*d as usize] = a;
            }
            Instr::Field1(d, s) => {
                let (_, b) = vregs[*s as usize]
                    .as_pair()
                    .ok_or_else(|| shape("expected a pair"))?;
                let b = b.clone();
                vregs[*d as usize] = b;
            }
            Instr::RowIdx(d, row, i) => {
                let r = vregs[*row as usize]
                    .as_row()
                    .ok_or_else(|| shape("expected a row"))?;
                let ix = idx_check(iregs[*i as usize], r.len())?;
                fregs[*d as usize] = r[ix];
            }
            Instr::RowLen(d, row) => {
                let r = vregs[*row as usize]
                    .as_row()
                    .ok_or_else(|| shape("expected a row"))?;
                iregs[*d as usize] = r.len() as i64;
            }
            Instr::SeqLen(d, s) => {
                iregs[*d as usize] = match &vregs[*s as usize] {
                    Value::Seq(v) => v.len() as i64,
                    Value::Row(r) => r.len() as i64,
                    _ => return Err(shape("expected a sequence")),
                }
            }
            Instr::SeqIdx(d, s, i) => {
                let v = match &vregs[*s as usize] {
                    Value::Seq(v) => {
                        let ix = idx_check(iregs[*i as usize], v.len())?;
                        v[ix].clone()
                    }
                    Value::Row(r) => {
                        let ix = idx_check(iregs[*i as usize], r.len())?;
                        Value::F64(r[ix])
                    }
                    _ => return Err(shape("expected a sequence")),
                };
                vregs[*d as usize] = v;
            }

            Instr::CallUdf { dst, udf, args } => {
                if PROFILE {
                    prof.udf_calls += 1;
                }
                udf_args.clear();
                for a in args {
                    udf_args.push(vregs[*a as usize].clone());
                }
                vregs[*dst as usize] = (bindings.udfs[*udf as usize])(&udf_args);
            }

            Instr::SrcLen(d, s) => {
                iregs[*d as usize] = bindings.sources[*s as usize].len() as i64
            }
            Instr::SrcGetF(d, s, i) => {
                let PreparedSource::F64(v) = &bindings.sources[*s as usize] else {
                    return Err(shape("source is not f64"));
                };
                if PROFILE {
                    prof.src_reads += 1;
                }
                fregs[*d as usize] = v[iregs[*i as usize] as usize];
            }
            Instr::SrcGetI(d, s, i) => {
                let PreparedSource::I64(v) = &bindings.sources[*s as usize] else {
                    return Err(shape("source is not i64"));
                };
                if PROFILE {
                    prof.src_reads += 1;
                }
                iregs[*d as usize] = v[iregs[*i as usize] as usize];
            }
            Instr::SrcGetB(d, s, i) => {
                let PreparedSource::Bool(v) = &bindings.sources[*s as usize] else {
                    return Err(shape("source is not bool"));
                };
                if PROFILE {
                    prof.src_reads += 1;
                }
                iregs[*d as usize] = i64::from(v[iregs[*i as usize] as usize]);
            }
            Instr::SrcGetV(d, s, i) => {
                let PreparedSource::Values(v) = &bindings.sources[*s as usize] else {
                    return Err(shape("source is not boxed"));
                };
                if PROFILE {
                    prof.src_reads += 1;
                }
                vregs[*d as usize] = v[iregs[*i as usize] as usize].clone();
            }

            Instr::SinkNewGroup(s) => {
                sinks[*s as usize] = SinkRt::Group {
                    index: HashMap::new(),
                    entries: Vec::new(),
                }
            }
            Instr::SinkNewGroupAggV(s, d) => {
                sinks[*s as usize] = SinkRt::GroupAggV {
                    index: HashMap::new(),
                    entries: Vec::new(),
                    default: vregs[*d as usize].clone(),
                    last: 0,
                }
            }
            Instr::SinkNewGroupAggF(s, d) => {
                sinks[*s as usize] = SinkRt::GroupAggF {
                    index: HashMap::new(),
                    entries: Vec::new(),
                    default: fregs[*d as usize],
                    last: 0,
                }
            }
            Instr::SinkNewGroupAggI(s, d) => {
                sinks[*s as usize] = SinkRt::GroupAggI {
                    index: HashMap::new(),
                    entries: Vec::new(),
                    default: iregs[*d as usize],
                    last: 0,
                }
            }
            Instr::SinkNewGroupAggSF(s, d) => {
                sinks[*s as usize] = SinkRt::GroupAggSF {
                    index: HashMap::default(),
                    entries: Vec::new(),
                    default: fregs[*d as usize],
                    last: 0,
                }
            }
            Instr::SinkNewGroupAggSI(s, d) => {
                sinks[*s as usize] = SinkRt::GroupAggSI {
                    index: HashMap::default(),
                    entries: Vec::new(),
                    default: iregs[*d as usize],
                    last: 0,
                }
            }
            Instr::SinkNewSorted(s, desc) => {
                sinks[*s as usize] = SinkRt::Sorted {
                    items: Vec::new(),
                    descending: *desc,
                }
            }
            Instr::SinkNewDistinct(s) => {
                sinks[*s as usize] = SinkRt::Distinct {
                    seen: HashSet::new(),
                    items: Vec::new(),
                }
            }
            Instr::SinkNewVec(s) => sinks[*s as usize] = SinkRt::Vec { items: Vec::new() },
            Instr::GroupPut(s, k, v) => {
                if PROFILE {
                    prof.sink_pushes += 1;
                }
                let SinkRt::Group { index, entries } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not a group"));
                };
                let key = &vregs[*k as usize];
                // One key-image computation per element, not two.
                let slot = *index.entry(key.key()).or_insert_with(|| {
                    entries.push((key.clone(), Vec::new()));
                    entries.len() - 1
                });
                entries[slot].1.push(vregs[*v as usize].clone());
            }
            Instr::GroupAccLoadF(s, d, k) => {
                let SinkRt::GroupAggF {
                    index,
                    entries,
                    default,
                    last,
                } = &mut sinks[*s as usize]
                else {
                    return Err(shape("sink is not an f64 grouped aggregate"));
                };
                let key = &vregs[*k as usize];
                let slot = *index.entry(key.key()).or_insert_with(|| {
                    entries.push((key.clone(), *default));
                    entries.len() - 1
                });
                *last = slot;
                fregs[*d as usize] = entries[slot].1;
            }
            Instr::GroupAccStoreF(s, r) => {
                let SinkRt::GroupAggF { entries, last, .. } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not an f64 grouped aggregate"));
                };
                entries[*last].1 = fregs[*r as usize];
            }
            Instr::GroupAccLoadI(s, d, k) => {
                let SinkRt::GroupAggI {
                    index,
                    entries,
                    default,
                    last,
                } = &mut sinks[*s as usize]
                else {
                    return Err(shape("sink is not an i64 grouped aggregate"));
                };
                let key = &vregs[*k as usize];
                let slot = *index.entry(key.key()).or_insert_with(|| {
                    entries.push((key.clone(), *default));
                    entries.len() - 1
                });
                *last = slot;
                iregs[*d as usize] = entries[slot].1;
            }
            Instr::GroupAccStoreI(s, r) => {
                let SinkRt::GroupAggI { entries, last, .. } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not an i64 grouped aggregate"));
                };
                entries[*last].1 = iregs[*r as usize];
            }
            Instr::GroupAccLoadV(s, d, k) => {
                let SinkRt::GroupAggV {
                    index,
                    entries,
                    default,
                    last,
                } = &mut sinks[*s as usize]
                else {
                    return Err(shape("sink is not a grouped aggregate"));
                };
                let key = &vregs[*k as usize];
                let slot = *index.entry(key.key()).or_insert_with(|| {
                    entries.push((key.clone(), default.clone()));
                    entries.len() - 1
                });
                *last = slot;
                vregs[*d as usize] = entries[slot].1.clone();
            }
            Instr::GroupAccStoreV(s, r) => {
                let SinkRt::GroupAggV { entries, last, .. } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not a grouped aggregate"));
                };
                entries[*last].1 = vregs[*r as usize].clone();
            }
            Instr::GroupAccLoadSF(s, d, k) => {
                let key = match k {
                    SKey::F(r) => ScalarKey::F(fregs[*r as usize]),
                    SKey::I(r) => ScalarKey::I(iregs[*r as usize]),
                    SKey::B(r) => ScalarKey::B(iregs[*r as usize] != 0),
                };
                let SinkRt::GroupAggSF {
                    index,
                    entries,
                    default,
                    last,
                } = &mut sinks[*s as usize]
                else {
                    return Err(shape("sink is not a scalar f64 grouped aggregate"));
                };
                let slot = *index.entry(key.bits()).or_insert_with(|| {
                    entries.push((key, *default));
                    entries.len() - 1
                });
                *last = slot;
                fregs[*d as usize] = entries[slot].1;
            }
            Instr::GroupAccStoreSF(s, r) => {
                let SinkRt::GroupAggSF { entries, last, .. } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not a scalar f64 grouped aggregate"));
                };
                entries[*last].1 = fregs[*r as usize];
            }
            Instr::GroupAccLoadSI(s, d, k) => {
                let key = match k {
                    SKey::F(r) => ScalarKey::F(fregs[*r as usize]),
                    SKey::I(r) => ScalarKey::I(iregs[*r as usize]),
                    SKey::B(r) => ScalarKey::B(iregs[*r as usize] != 0),
                };
                let SinkRt::GroupAggSI {
                    index,
                    entries,
                    default,
                    last,
                } = &mut sinks[*s as usize]
                else {
                    return Err(shape("sink is not a scalar i64 grouped aggregate"));
                };
                let slot = *index.entry(key.bits()).or_insert_with(|| {
                    entries.push((key, *default));
                    entries.len() - 1
                });
                *last = slot;
                iregs[*d as usize] = entries[slot].1;
            }
            Instr::GroupAccStoreSI(s, r) => {
                let SinkRt::GroupAggSI { entries, last, .. } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not a scalar i64 grouped aggregate"));
                };
                entries[*last].1 = iregs[*r as usize];
            }
            Instr::SinkPush(s, v) => {
                if PROFILE {
                    prof.sink_pushes += 1;
                }
                match &mut sinks[*s as usize] {
                    SinkRt::Vec { items } => items.push(vregs[*v as usize].clone()),
                    SinkRt::Distinct { seen, items } => {
                        let value = &vregs[*v as usize];
                        if seen.insert(value.key()) {
                            items.push(value.clone());
                        }
                    }
                    _ => return Err(shape("sink is not a buffer")),
                }
            }
            Instr::SinkPushKeyed(s, k, v) => {
                if PROFILE {
                    prof.sink_pushes += 1;
                }
                let SinkRt::Sorted { items, .. } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not sorted"));
                };
                items.push((vregs[*k as usize].clone(), vregs[*v as usize].clone()));
            }
            Instr::SinkSeal(s) => {
                let SinkRt::Sorted { items, descending } = &mut sinks[*s as usize] else {
                    return Err(shape("sink is not sorted"));
                };
                if *descending {
                    items.sort_by(|(ka, _), (kb, _)| kb.cmp_total(ka));
                } else {
                    items.sort_by(|(ka, _), (kb, _)| ka.cmp_total(kb));
                }
            }
            Instr::SinkFreeze(s) => {
                frozen[*s as usize] = sinks[*s as usize].freeze();
            }
            Instr::SinkLen(d, s) => iregs[*d as usize] = frozen[*s as usize].len() as i64,
            Instr::SinkGet(d, s, i) => {
                vregs[*d as usize] = frozen[*s as usize][iregs[*i as usize] as usize].clone()
            }

            Instr::FusedLoop(kernel) => {
                // The span opens before the interrupt check so a
                // deadline-aborted query still records the loop it died
                // in (the guard records partial spans on drop).
                let mut lspan = if PROFILE {
                    tracer.span("vm.loop", parent)
                } else {
                    SpanGuard::disabled()
                };
                let t0 = if PROFILE {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                // The fused tier runs its whole source in one call, so
                // the check sits at loop entry; sub-loop granularity is
                // the vectorized tier's job (per-batch, below).
                interrupt.check()?;
                let PreparedSource::F64(data) = &bindings.sources[kernel.src as usize] else {
                    return Err(shape("fused source is not f64"));
                };
                if PROFILE {
                    prof.fused_loops_run += 1;
                    prof.fused_elements += data.len() as u64;
                    lspan.note("tier", "fused");
                    lspan.note("elements", data.len() as u64);
                }
                // acc_values layout: [accumulators..., params...].
                let mut acc_values =
                    Vec::with_capacity(kernel.accs.len() + kernel.params.len());
                for r in &kernel.accs {
                    acc_values.push(fregs[*r as usize]);
                }
                for r in &kernel.params {
                    acc_values.push(fregs[*r as usize]);
                }
                let data = std::sync::Arc::clone(data);
                crate::fuse::run_kernel(kernel, &data, &mut acc_values, &mut sinks);
                for (i, r) in kernel.accs.iter().enumerate() {
                    fregs[*r as usize] = acc_values[i];
                }
                if let Some(t0) = t0 {
                    prof.loop_ns += t0.elapsed().as_nanos() as u64;
                }
            }
            Instr::BatchLoop(bp) => {
                use crate::batch::{BatchData, Lane};
                let data = match (&bindings.sources[bp.src as usize], bp.src_lane) {
                    (PreparedSource::F64(v), Lane::F) => BatchData::F(v.as_slice()),
                    (PreparedSource::I64(v), Lane::I) => BatchData::I(v.as_slice()),
                    (PreparedSource::Bool(v), Lane::B) => BatchData::B(v.as_slice()),
                    _ => return Err(shape("batch source lane mismatch")),
                };
                let mut f_accs: Vec<f64> =
                    bp.f_accs.iter().map(|r| fregs[*r as usize]).collect();
                let mut i_accs: Vec<i64> =
                    bp.i_accs.iter().map(|r| iregs[*r as usize]).collect();
                let f_params: Vec<f64> =
                    bp.f_params.iter().map(|r| fregs[*r as usize]).collect();
                let i_params: Vec<i64> =
                    bp.i_params.iter().map(|r| iregs[*r as usize]).collect();
                if PROFILE {
                    prof.batch_loops += 1;
                }
                // Span opens before run_batch (which polls the
                // interrupt per batch), so aborted loops still record.
                let mut lspan = if PROFILE {
                    tracer.span("vm.loop", parent)
                } else {
                    SpanGuard::disabled()
                };
                let t0 = if PROFILE {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                let (batches0, in0, sel0) =
                    (prof.batches, prof.batch_elements_in, prof.batch_elements_selected);
                let out_before = out.len();
                let batch_result = crate::batch::run_batch(
                    bp,
                    data,
                    &mut f_accs,
                    &mut i_accs,
                    &f_params,
                    &i_params,
                    &mut sinks,
                    &mut out,
                    if PROFILE { Some(prof) } else { None },
                    interrupt,
                );
                if PROFILE {
                    let elements_in = prof.batch_elements_in - in0;
                    let selected = prof.batch_elements_selected - sel0;
                    lspan.note("tier", "vectorized");
                    lspan.note("batches", prof.batches - batches0);
                    lspan.note("elements", elements_in);
                    lspan.note("selected", selected);
                    if elements_in > 0 {
                        lspan.note("density", selected as f64 / elements_in as f64);
                    }
                    if let Some(t0) = t0 {
                        prof.loop_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
                drop(lspan);
                batch_result?;
                if PROFILE {
                    prof.out_elements += (out.len() - out_before) as u64;
                }
                for (i, r) in bp.f_accs.iter().enumerate() {
                    fregs[*r as usize] = f_accs[i];
                }
                for (i, r) in bp.i_accs.iter().enumerate() {
                    iregs[*r as usize] = i_accs[i];
                }
            }
            Instr::OutPush(v) => {
                if PROFILE {
                    prof.out_elements += 1;
                }
                out.push(vregs[*v as usize].clone());
            }
            Instr::HaltF(r) => return Ok(Value::F64(fregs[*r as usize])),
            Instr::HaltI(r) => return Ok(Value::I64(iregs[*r as usize])),
            Instr::HaltB(r) => return Ok(Value::Bool(iregs[*r as usize] != 0)),
            Instr::HaltV(r) => {
                // Move, don't clone: the register bank dies here anyway.
                return Ok(std::mem::replace(&mut vregs[*r as usize], Value::I64(0)));
            }
            Instr::HaltOut => return Ok(Value::seq(std::mem::take(&mut out))),
        }
    }
}
