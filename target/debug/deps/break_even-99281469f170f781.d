/root/repo/target/debug/deps/break_even-99281469f170f781.d: crates/bench/src/bin/break_even.rs

/root/repo/target/debug/deps/break_even-99281469f170f781: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
