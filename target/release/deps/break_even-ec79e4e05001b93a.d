/root/repo/target/release/deps/break_even-ec79e4e05001b93a.d: crates/bench/src/bin/break_even.rs

/root/repo/target/release/deps/break_even-ec79e4e05001b93a: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
