/root/repo/target/release/deps/fig13-24a598a81ca7b257.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-24a598a81ca7b257: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
