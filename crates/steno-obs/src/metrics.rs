//! Counters, log2 histograms, spans, and the pluggable [`Collector`].
//!
//! The hot-path contract: instrumented code holds no locks and allocates
//! nothing per event. [`MemoryCollector`] takes a read lock only to find
//! the atomic for a name (a write lock once, on first use of the name);
//! the update itself is a single `fetch_add`. [`NoopCollector`] compiles
//! every hook to nothing — engines keep a `&dyn Collector` and the
//! disabled case costs one virtual call returning a constant.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use crate::json;

/// Number of log2 buckets: values up to `2^63` nanoseconds (~292 years)
/// land in a bucket, so nothing is ever dropped.
const BUCKETS: usize = 64;

/// The pluggable metrics/tracing sink.
///
/// Names are `&'static str` by design: every metric name in the
/// workspace is a compile-time constant, which keeps the hot path free
/// of allocation and makes the full name inventory greppable.
pub trait Collector: Send + Sync {
    /// `false` for sinks that discard everything — instrumented code may
    /// skip preparing event data (clock reads, length sums) when so.
    fn enabled(&self) -> bool;

    /// Increments the monotonic counter `name` by `delta`.
    fn add(&self, name: &'static str, delta: u64);

    /// Records one observation (nanoseconds, element counts, bytes — any
    /// non-negative magnitude) into the histogram `name`.
    fn observe_ns(&self, name: &'static str, value: u64);

    /// Increments the counter `name` within the per-tenant family keyed
    /// by `tenant`. Sinks without label support drop the event (the
    /// default), so instrumented code records unconditionally.
    fn add_labeled(&self, name: &'static str, tenant: &str, delta: u64) {
        let _ = (name, tenant, delta);
    }

    /// Records one observation into the histogram `name` within the
    /// per-tenant family keyed by `tenant`. Default: dropped.
    fn observe_ns_labeled(&self, name: &'static str, tenant: &str, value: u64) {
        let _ = (name, tenant, value);
    }

    /// Starts a span: the returned guard records its wall-clock lifetime
    /// into the histogram `name` on drop. On a disabled collector the
    /// guard never reads the clock.
    fn time(&self, name: &'static str) -> Span<'_>
    where
        Self: Sized,
    {
        Span::new(self, name)
    }
}

/// The default sink: drops everything, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _name: &'static str, _delta: u64) {}
    fn observe_ns(&self, _name: &'static str, _value: u64) {}
}

/// An RAII span: measures wall time from construction to drop and
/// records it into its collector's histogram. Obtain via
/// [`Collector::time`] or [`Span::start`].
pub struct Span<'a> {
    collector: &'a dyn Collector,
    name: &'static str,
    /// `None` when the collector is disabled: no clock read, no record.
    started: Option<Instant>,
}

impl<'a> Span<'a> {
    fn new(collector: &'a dyn Collector, name: &'static str) -> Span<'a> {
        let started = collector.enabled().then(Instant::now);
        Span {
            collector,
            name,
            started,
        }
    }

    /// Starts a span against an unsized collector reference.
    pub fn start(collector: &'a dyn Collector, name: &'static str) -> Span<'a> {
        Span::new(collector, name)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.collector.observe_ns(self.name, ns);
        }
    }
}

/// A log2-bucketed histogram over `u64` observations.
///
/// Bucket `i` counts values `v` with `floor(log2(max(v, 1))) == i`, so
/// bucket boundaries are powers of two: `[0,2) [2,4) [4,8) …`. Updates
/// are lock-free (`fetch_add` per bucket plus count/sum; min/max via CAS
/// loops); quantiles are estimated from the bucket upper bounds, which
/// for latencies is accurate to within the 2× bucket width.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = (63 - v.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                // Upper bound (exclusive) of bucket i is 2^(i+1); the
                // last bucket saturates at u64::MAX.
                (n > 0).then(|| (1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX), n))
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Recovers a read/write lock from poisoning: registry state is only
/// ever extended (insert-new-name), so a panic elsewhere cannot leave it
/// inconsistent.
fn read<T: ?Sized>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T: ?Sized>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// The in-process collector: named atomic counters and histograms.
///
/// Clone-cheap via internal `Arc`s is deliberately *not* provided —
/// share it as `Arc<MemoryCollector>` and hand `&dyn Collector` (or the
/// `Arc`) to each engine.
#[derive(Debug, Default)]
pub struct MemoryCollector {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    /// Per-tenant families: name → tenant → atomic. The nested map keeps
    /// the read path allocation-free (`BTreeMap<String, _>::get` accepts
    /// a `&str`); the tenant string is owned once, on first use.
    labeled_counters: RwLock<BTreeMap<&'static str, BTreeMap<String, Arc<AtomicU64>>>>,
    labeled_histograms: RwLock<BTreeMap<&'static str, BTreeMap<String, Arc<Histogram>>>>,
}

impl MemoryCollector {
    /// Creates an empty collector.
    pub fn new() -> MemoryCollector {
        MemoryCollector::default()
    }

    fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        if let Some(c) = read(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            write(&self.counters)
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            write(&self.histograms)
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    fn labeled_counter(&self, name: &'static str, tenant: &str) -> Arc<AtomicU64> {
        if let Some(c) = read(&self.labeled_counters)
            .get(name)
            .and_then(|m| m.get(tenant))
        {
            return Arc::clone(c);
        }
        Arc::clone(
            write(&self.labeled_counters)
                .entry(name)
                .or_default()
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    fn labeled_histogram(&self, name: &'static str, tenant: &str) -> Arc<Histogram> {
        if let Some(h) = read(&self.labeled_histograms)
            .get(name)
            .and_then(|m| m.get(tenant))
        {
            return Arc::clone(h);
        }
        Arc::clone(
            write(&self.labeled_histograms)
                .entry(name)
                .or_default()
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The current value of the per-tenant counter `name` for `tenant`
    /// (0 when never incremented).
    pub fn labeled_counter_value(&self, name: &str, tenant: &str) -> u64 {
        read(&self.labeled_counters)
            .get(name)
            .and_then(|m| m.get(tenant))
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The current value of counter `name` (0 when never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        read(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Takes a point-in-time snapshot of every counter and histogram,
    /// sorted by name (the JSON form is byte-stable for equal states).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = read(&self.counters)
            .iter()
            .map(|(name, c)| (name.to_string(), c.load(Ordering::Relaxed)))
            .collect();
        let histograms = read(&self.histograms)
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        let labeled_counters = read(&self.labeled_counters)
            .iter()
            .flat_map(|(name, by_tenant)| {
                by_tenant.iter().map(|(tenant, c)| {
                    (name.to_string(), tenant.clone(), c.load(Ordering::Relaxed))
                })
            })
            .collect();
        let labeled_histograms = read(&self.labeled_histograms)
            .iter()
            .flat_map(|(name, by_tenant)| {
                by_tenant
                    .iter()
                    .map(|(tenant, h)| (tenant.clone(), h.snapshot(name)))
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            labeled_counters,
            labeled_histograms,
        }
    }
}

impl Collector for MemoryCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    fn observe_ns(&self, name: &'static str, value: u64) {
        self.histogram(name).record(value);
    }

    fn add_labeled(&self, name: &'static str, tenant: &str, delta: u64) {
        self.labeled_counter(name, tenant)
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn observe_ns_labeled(&self, name: &'static str, tenant: &str, value: u64) {
        self.labeled_histogram(name, tenant).record(value);
    }
}

/// A point-in-time copy of a [`MemoryCollector`]'s state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-tenant counters as `(name, tenant, value)`, sorted by
    /// `(name, tenant)`. Empty unless `add_labeled` was used.
    pub labeled_counters: Vec<(String, String, u64)>,
    /// Per-tenant histograms as `(tenant, snapshot)` — the snapshot's
    /// `name` is the family name. Sorted by `(name, tenant)`.
    pub labeled_histograms: Vec<(String, HistogramSnapshot)>,
}

/// One histogram's state at snapshot time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// The histogram's name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(upper_bound_exclusive, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimates quantile `q` (clamped to `[0, 1]`) as the upper bound
    /// of the bucket containing the q-th observation; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(ub, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(ub.min(self.max));
            }
        }
        Some(self.max)
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as stable JSON: counters and histograms as
    /// name-sorted arrays, fixed field order, no external dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {v}}}",
                json::escape(name)
            ));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(ub, n)| format!("{{\"le\": {ub}, \"count\": {n}}}"))
                .collect();
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"buckets\": [{}]}}",
                json::escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The human-readable form (same as `Display`): one line per metric.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for MetricsSnapshot {
    /// The human-readable form: one line per metric.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name:<44} {v}")?;
        }
        for h in &self.histograms {
            let (mean, p50, p99) = (
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            );
            writeln!(
                f,
                "{:<44} count {}  mean {:.0}  p50≤{}  p99≤{}  max {}",
                h.name, h.count, mean, p50, p99, h.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let c = MemoryCollector::new();
        c.add("b.second", 2);
        c.add("a.first", 1);
        c.add("b.second", 3);
        let snap = c.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("b.second".to_string(), 5)]
        );
        assert_eq!(c.counter_value("b.second"), 5);
        assert_eq!(c.counter_value("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let c = MemoryCollector::new();
        for v in [0, 1, 2, 3, 4, 1000, 1024] {
            c.observe_ns("lat", v);
        }
        let snap = c.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 2034);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        // 0 and 1 → [0,2); 2 and 3 → [2,4); 4 → [4,8); 1000 → [512,1024);
        // 1024 → [1024,2048).
        assert_eq!(
            h.buckets,
            vec![(2, 2), (4, 2), (8, 1), (1024, 1), (2048, 1)]
        );
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let c = MemoryCollector::new();
        for _ in 0..99 {
            c.observe_ns("q", 10);
        }
        c.observe_ns("q", 10_000);
        let snap = c.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.quantile(0.5), Some(16));
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert!(h.quantile(0.99).is_some());
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn labeled_families_record_per_tenant() {
        let c = MemoryCollector::new();
        c.add_labeled("serve.tenant.completed", "acme", 2);
        c.add_labeled("serve.tenant.completed", "zeta", 1);
        c.observe_ns_labeled("serve.tenant.latency_ns", "acme", 100);
        assert_eq!(c.labeled_counter_value("serve.tenant.completed", "acme"), 2);
        assert_eq!(c.labeled_counter_value("serve.tenant.completed", "none"), 0);
        let snap = c.snapshot();
        assert_eq!(
            snap.labeled_counters,
            vec![
                ("serve.tenant.completed".to_string(), "acme".to_string(), 2),
                ("serve.tenant.completed".to_string(), "zeta".to_string(), 1),
            ]
        );
        assert_eq!(snap.labeled_histograms.len(), 1);
        let (tenant, h) = &snap.labeled_histograms[0];
        assert_eq!(tenant, "acme");
        assert_eq!(h.name, "serve.tenant.latency_ns");
        assert_eq!(h.count, 1);
        // Unlabeled metrics are untouched by labeled recording.
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
        // Default trait impls drop labels silently.
        let n = NoopCollector;
        n.add_labeled("x", "t", 1);
        n.observe_ns_labeled("y", "t", 1);
    }

    /// Seeded distributions through the log2 buckets: the p50/p99
    /// estimates must land within one bucket of the true (nearest-rank)
    /// quantiles and never undershoot them — the estimate is the upper
    /// bound of the quantile's bucket, clamped to the observed max.
    #[test]
    fn percentile_estimates_land_within_one_bucket_of_truth() {
        fn bucket_of(v: u64) -> u32 {
            63 - v.max(1).leading_zeros()
        }
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            // SplitMix64-style mix, deterministic across platforms.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let n = 10_000usize;
        let uniform: Vec<u64> = (0..n).map(|_| next() % 1_000_000 + 1).collect();
        let skewed: Vec<u64> = (0..n)
            .map(|_| (1u64 << (next() % 20)) + next() % 16)
            .collect();
        let bimodal: Vec<u64> = (0..n)
            .map(|_| if next() % 10 == 0 { 1_000_000 } else { 100 })
            .collect();
        for (label, values) in [
            ("uniform", uniform),
            ("skewed", skewed),
            ("bimodal", bimodal),
        ] {
            let c = MemoryCollector::new();
            for &v in &values {
                c.observe_ns("dist", v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let snap = c.snapshot();
            let h = &snap.histograms[0];
            for q in [0.5, 0.99] {
                let rank = ((q * n as f64).ceil() as usize).max(1);
                let truth = sorted[rank - 1];
                let est = h.quantile(q).unwrap();
                assert!(
                    est >= truth,
                    "{label} q{q}: estimate {est} undershoots true {truth}"
                );
                assert!(
                    bucket_of(est) <= bucket_of(truth) + 1,
                    "{label} q{q}: estimate {est} (bucket {}) more than one \
                     bucket past true {truth} (bucket {})",
                    bucket_of(est),
                    bucket_of(truth)
                );
            }
        }
    }

    /// Bucket-boundary cases: a value exactly at a power of two must
    /// count in the bucket it opens, and the quantile walk must not skip
    /// or double-count at the seam.
    #[test]
    fn quantile_bucket_boundaries_have_no_off_by_one() {
        let c = MemoryCollector::new();
        // 4 observations of 1024 (opens [1024, 2048)), 4 of 1023 (tops
        // [512, 1024)).
        for _ in 0..4 {
            c.observe_ns("edge", 1023);
            c.observe_ns("edge", 1024);
        }
        let snap = c.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.buckets, vec![(1024, 4), (2048, 4)]);
        // p50 rank = 4 → last of the 1023s → its bucket's upper bound.
        assert_eq!(h.quantile(0.5), Some(1024));
        // Just past the seam: rank 5 → first 1024 → next bucket, clamped
        // to the observed max.
        assert_eq!(h.quantile(0.51), Some(1024));
        assert_eq!(h.quantile(1.0), Some(1024));
    }

    #[test]
    fn spans_record_into_histograms() {
        let c = MemoryCollector::new();
        {
            let _span = c.time("span.ns");
            std::hint::black_box(42);
        }
        let snap = c.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn noop_collector_is_disabled_and_inert() {
        let c = NoopCollector;
        assert!(!c.enabled());
        c.add("x", 1);
        c.observe_ns("y", 1);
        let _span = c.time("z"); // must not read the clock or record
    }

    #[test]
    fn snapshot_json_is_stable_and_parses_back() {
        let c = MemoryCollector::new();
        c.add("queries", 3);
        c.observe_ns("exec_ns", 100);
        c.observe_ns("exec_ns", 5000);
        let snap = c.snapshot();
        let js = snap.to_json();
        assert_eq!(js, snap.to_json(), "stable for equal state");
        let v = crate::json::parse(&js).unwrap();
        let counters = v.get("counters").and_then(|c| c.as_array()).unwrap();
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("queries"));
        assert_eq!(counters[0].get("value").unwrap().as_u64(), Some(3));
        let hists = v.get("histograms").and_then(|h| h.as_array()).unwrap();
        assert_eq!(hists[0].get("count").unwrap().as_u64(), Some(2));
        // Human-readable render mentions both metrics.
        let text = snap.to_string();
        assert!(text.contains("queries") && text.contains("exec_ns"), "{text}");
    }
}
