/root/repo/target/debug/deps/steno_macros-bdd70e4e90cd6858.d: crates/steno-macros/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_macros-bdd70e4e90cd6858.so: crates/steno-macros/src/lib.rs Cargo.toml

crates/steno-macros/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
