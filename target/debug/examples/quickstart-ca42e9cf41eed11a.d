/root/repo/target/debug/examples/quickstart-ca42e9cf41eed11a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ca42e9cf41eed11a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
