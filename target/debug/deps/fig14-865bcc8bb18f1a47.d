/root/repo/target/debug/deps/fig14-865bcc8bb18f1a47.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-865bcc8bb18f1a47: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
