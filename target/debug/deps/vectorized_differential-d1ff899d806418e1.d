/root/repo/target/debug/deps/vectorized_differential-d1ff899d806418e1.d: crates/steno-vm/tests/vectorized_differential.rs Cargo.toml

/root/repo/target/debug/deps/libvectorized_differential-d1ff899d806418e1.rmeta: crates/steno-vm/tests/vectorized_differential.rs Cargo.toml

crates/steno-vm/tests/vectorized_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
