/root/repo/target/debug/examples/distributed_kmeans-1eadcb6dd11432c8.d: examples/distributed_kmeans.rs

/root/repo/target/debug/examples/distributed_kmeans-1eadcb6dd11432c8: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
