/root/repo/target/debug/deps/cluster_fault_injection-0594b20b0832158f.d: crates/steno-cluster/tests/cluster_fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_fault_injection-0594b20b0832158f.rmeta: crates/steno-cluster/tests/cluster_fault_injection.rs Cargo.toml

crates/steno-cluster/tests/cluster_fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
