/root/repo/target/release/examples/cartesian-3b6c803711b2f94b.d: examples/cartesian.rs

/root/repo/target/release/examples/cartesian-3b6c803711b2f94b: examples/cartesian.rs

examples/cartesian.rs:
