/root/repo/target/debug/deps/fig13-335f2f455e8c1aa6.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-335f2f455e8c1aa6: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
