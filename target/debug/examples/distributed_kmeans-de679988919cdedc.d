/root/repo/target/debug/examples/distributed_kmeans-de679988919cdedc.d: examples/distributed_kmeans.rs

/root/repo/target/debug/examples/distributed_kmeans-de679988919cdedc: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
