//! Figure 14 (§7.2): distributed k-means — relative performance of
//! unoptimized and Steno-optimized execution as the point dimension
//! varies, with the total input size (points × dimension) held constant.
//!
//! Paper: 1.9× speedup at 10 dimensions, 19% at 100, converging at high
//! dimension as the Euclidean-distance computation (opaque user code,
//! identical in both configurations) approaches 100% of the time. The
//! paper's 10^9-double input on 100 nodes is scaled to `STENO_SCALE` ×
//! 2^21 doubles on a thread-pool cluster; the *shape* (speedup vs
//! per-element work) is the result under test.

use std::time::Duration;

use bench::kmeans::{assignment_query, centroid_column, clustered_points, kmeans_udfs};
use bench::workloads::scaled;
use steno_cluster::{execute_distributed, ClusterSpec, DistributedCollection, VertexEngine};
use steno_expr::DataContext;

fn run_once(
    dim: usize,
    total_doubles: usize,
    partitions: usize,
    engine: VertexEngine,
) -> Duration {
    let k = 10;
    let n = (total_doubles / dim).max(k);
    let data = clustered_points(n, dim, k, 7);
    let centroids: Vec<Vec<f64>> = (0..k)
        .map(|i| data[i * dim..(i + 1) * dim].to_vec())
        .collect();
    let input = DistributedCollection::from_rows("points", data, dim, partitions);
    let broadcast = DataContext::new().with_source("centroids", centroid_column(&centroids));
    let udfs = kmeans_udfs(dim);
    let q = assignment_query();
    let spec = ClusterSpec { workers: 4 };
    let (_, report) =
        execute_distributed(&q, &input, &broadcast, &udfs, &spec, engine).expect("job failed");
    assert!(report.partial_aggregation);
    report.map_wall + report.reduce_wall
}

fn main() {
    let total = scaled(1 << 21); // total doubles, constant across dims
    let partitions = 8;
    println!("Figure 14: distributed k-means, one iteration, k=10");
    println!("  total input {total} doubles, {partitions} partitions\n");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "dim", "unoptimized", "steno", "speedup"
    );
    for dim in [5usize, 10, 20, 50, 100, 200, 500, 1000] {
        // Warm-up + measure (min of 2).
        let mut linq = Duration::MAX;
        let mut steno = Duration::MAX;
        for _ in 0..2 {
            linq = linq.min(run_once(dim, total, partitions, VertexEngine::Linq));
            steno = steno.min(run_once(dim, total, partitions, VertexEngine::Steno));
        }
        println!(
            "{:>6} {:>12.2?} {:>12.2?} {:>8.2}x",
            dim,
            linq,
            steno,
            linq.as_secs_f64() / steno.as_secs_f64()
        );
    }
    println!("\n(paper: 1.9x at dim 10, 1.19x at dim 100, converging by dim 1000)");
}
