//! Criterion version of Figure 1: sum of squares of N doubles through the
//! four execution paths. Run with `cargo bench -p bench --bench
//! fig01_sumsq`.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use steno::steno;
use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_linq::Enumerable;
use steno_query::Query;
use steno_vm::CompiledQuery;

fn fig01(c: &mut Criterion) {
    let n = 1_000_000;
    let data = bench::workloads::uniform_doubles(n, 42);
    let mut group = c.benchmark_group("fig01_sumsq");
    group.sample_size(10);

    let xs = Enumerable::from_vec(data.clone());
    group.bench_function(BenchmarkId::new("linq", n), |b| {
        b.iter(|| std::hint::black_box(xs.select(|x| x * x).sum()))
    });

    let ctx = DataContext::new().with_source("xs", data.clone());
    let udfs = UdfRegistry::new();
    let q = Query::source("xs")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let compiled = CompiledQuery::compile(&q, (&ctx).into(), &udfs).unwrap();
    group.bench_function(BenchmarkId::new("steno_vm", n), |b| {
        b.iter(|| std::hint::black_box(compiled.run(&ctx, &udfs).unwrap()))
    });

    group.bench_function(BenchmarkId::new("steno_macro", n), |b| {
        b.iter(|| std::hint::black_box(steno!((from x: f64 in data select x * x).sum())))
    });

    group.bench_function(BenchmarkId::new("hand", n), |b| {
        b.iter(|| {
            let mut s = 0.0;
            // The paper's hand-written baseline is an indexed loop; keep
            // its shape rather than an iterator.
            #[allow(clippy::needless_range_loop)]
            for i in 0..data.len() {
                let x = data[i];
                s += x * x;
            }
            std::hint::black_box(s)
        })
    });
    group.finish();
}

criterion_group!(benches, fig01);
criterion_main!(benches);
