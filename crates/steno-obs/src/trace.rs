//! steno-trace: hierarchical spans and the flight recorder.
//!
//! A [`Tracer`] is a cheap per-query handle: span ids, parent links,
//! monotonic timestamps (nanosecond offsets from the trace origin), and
//! per-span key/value [`Note`]s. Finished spans land in a bounded
//! thread-local ring — no locks on the record path, and a hot loop that
//! out-runs the drain simply overwrites its oldest spans instead of
//! growing. A disabled tracer ([`Tracer::disabled`]) never reads the
//! clock and never allocates; every operation is a branch on `None`.
//!
//! The [`FlightRecorder`] sits on top: it allocates trace ids, collects
//! each query's spans at completion into a [`QueryTrace`], classifies
//! anomalies (deadline exceeded, trap, verifier reject, re-opt, slow
//! query), and keeps a bounded in-memory ring of recent traces so the
//! last moments before an incident can be dumped after the fact.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Spans kept per thread before the oldest are overwritten. Sized for a
/// worst-case single query (a few spans per loop, hundreds of loops)
/// with room for several queries between drains.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// A span's identity within its trace. Ids are allocated from a
/// per-trace counter, so `(trace_id, SpanId)` is globally unique.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One key/value annotation on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum Note {
    /// An unsigned magnitude (element counts, batch counts, bytes).
    U64(u64),
    /// A ratio or rate (selection density, ns/elem).
    F64(f64),
    /// A static label (tier names, outcome labels).
    Str(&'static str),
    /// An owned label (tenant names, error detail).
    Text(String),
}

impl From<u64> for Note {
    fn from(v: u64) -> Note {
        Note::U64(v)
    }
}
impl From<usize> for Note {
    fn from(v: usize) -> Note {
        Note::U64(v as u64)
    }
}
impl From<f64> for Note {
    fn from(v: f64) -> Note {
        Note::F64(v)
    }
}
impl From<&'static str> for Note {
    fn from(v: &'static str) -> Note {
        Note::Str(v)
    }
}
impl From<String> for Note {
    fn from(v: String) -> Note {
        Note::Text(v)
    }
}

impl fmt::Display for Note {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Note::U64(v) => write!(f, "{v}"),
            Note::F64(v) => write!(f, "{v:.4}"),
            Note::Str(v) => write!(f, "{v}"),
            Note::Text(v) => write!(f, "{v}"),
        }
    }
}

/// A finished span: identity, parent link, monotonic `[start, end)`
/// nanosecond offsets from the trace origin, and annotations.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace: u64,
    /// This span's id within the trace.
    pub id: SpanId,
    /// The enclosing span, `None` for roots.
    pub parent: Option<SpanId>,
    /// The span's name (a compile-time constant, greppable).
    pub name: &'static str,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace origin, nanoseconds.
    pub end_ns: u64,
    /// Key/value annotations, in the order added.
    pub notes: Vec<(&'static str, Note)>,
}

impl SpanRecord {
    /// The span's duration in nanoseconds (0 when the clock did not
    /// advance between start and end).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The value of note `key`, if present.
    pub fn note(&self, key: &str) -> Option<&Note> {
        self.notes.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// The per-thread span ring: bounded, overwrites oldest on overflow.
struct SpanRing {
    buf: VecDeque<SpanRecord>,
    dropped: u64,
}

impl SpanRing {
    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() >= SPAN_RING_CAPACITY {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Removes and returns every span belonging to `trace`, plus the
    /// overwrite count accumulated since the last drain.
    fn drain(&mut self, trace: u64) -> (Vec<SpanRecord>, u64) {
        let mut out = Vec::new();
        self.buf.retain(|rec| {
            if rec.trace == trace {
                out.push(rec.clone());
                false
            } else {
                true
            }
        });
        let dropped = self.dropped;
        self.dropped = 0;
        (out, dropped)
    }
}

thread_local! {
    static RING: RefCell<SpanRing> = const {
        RefCell::new(SpanRing { buf: VecDeque::new(), dropped: 0 })
    };
}

fn ring_push(rec: SpanRecord) {
    RING.with(|r| r.borrow_mut().push(rec));
}

/// Shared identity of one trace: id, clock origin, span-id allocator.
#[derive(Debug)]
struct TraceInner {
    id: u64,
    origin: Instant,
    next: AtomicU32,
}

impl TraceInner {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn alloc(&self) -> SpanId {
        SpanId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// A per-query trace handle. Clone-cheap (one `Arc` bump); the disabled
/// form is a `None` and every operation on it is free — the engine
/// threads a `&Tracer` through the hot path unconditionally and pays
/// nothing when tracing is off.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceInner>>,
}

impl Tracer {
    /// The inert tracer: records nothing, never reads the clock.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    fn active(id: u64, origin: Instant) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TraceInner {
                id,
                origin,
                next: AtomicU32::new(0),
            })),
        }
    }

    /// `true` when spans recorded through this tracer are kept.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, `None` when disabled.
    pub fn trace_id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Nanoseconds since the trace origin (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map(|i| i.now_ns()).unwrap_or(0)
    }

    /// Allocates a span id without recording anything — for spans whose
    /// children finish first (a root recorded retroactively at the end
    /// of a request still needs its id up front for parent links).
    pub fn reserve(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|i| i.alloc())
    }

    /// Opens a live span; it records itself into the thread ring on
    /// drop. On a disabled tracer this is free and records nothing.
    pub fn span(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { state: None },
            Some(inner) => SpanGuard {
                state: Some(GuardState {
                    inner: Arc::clone(inner),
                    id: inner.alloc(),
                    parent,
                    name,
                    start_ns: inner.now_ns(),
                    notes: Vec::new(),
                }),
            },
        }
    }

    /// Records a span retroactively with explicit offsets (for phases
    /// measured before the recording thread picked the work up, like
    /// queue wait). Returns the allocated id for parent links.
    pub fn record(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
        notes: Vec<(&'static str, Note)>,
    ) -> Option<SpanId> {
        let id = self.reserve()?;
        self.record_reserved(id, name, parent, start_ns, end_ns, notes);
        Some(id)
    }

    /// Records a span under a previously [`reserve`](Tracer::reserve)d id.
    pub fn record_reserved(
        &self,
        id: SpanId,
        name: &'static str,
        parent: Option<SpanId>,
        start_ns: u64,
        end_ns: u64,
        notes: Vec<(&'static str, Note)>,
    ) {
        if let Some(inner) = &self.inner {
            ring_push(SpanRecord {
                trace: inner.id,
                id,
                parent,
                name,
                start_ns,
                end_ns,
                notes,
            });
        }
    }

    /// Removes this trace's spans from the *current thread's* ring,
    /// sorted by `(start_ns, id)`, plus the count of spans the ring
    /// overwrote since its last drain. Spans recorded on other threads
    /// stay in their rings and age out — the serve layer records a whole
    /// query on the worker thread that runs it, so the drain sees
    /// everything.
    pub fn drain(&self) -> (Vec<SpanRecord>, u64) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), 0);
        };
        let (mut spans, dropped) = RING.with(|r| r.borrow_mut().drain(inner.id));
        spans.sort_by_key(|s| (s.start_ns, s.id));
        (spans, dropped)
    }
}

/// State of a live span; absent on a disabled tracer.
struct GuardState {
    inner: Arc<TraceInner>,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    notes: Vec<(&'static str, Note)>,
}

/// A live span: records itself into the thread ring when dropped, so a
/// span cut short by `?`-propagation still shows up (truncated) in the
/// trace — exactly what a deadline-abort dump needs.
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// A guard that records nothing (matches `Tracer::disabled()`).
    pub fn disabled() -> SpanGuard {
        SpanGuard { state: None }
    }

    /// This span's id for parent links, `None` when disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.state.as_ref().map(|s| s.id)
    }

    /// Attaches a key/value annotation. No-op when disabled.
    pub fn note(&mut self, key: &'static str, value: impl Into<Note>) {
        if let Some(s) = &mut self.state {
            s.notes.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let end_ns = s.inner.now_ns();
            ring_push(SpanRecord {
                trace: s.inner.id,
                id: s.id,
                parent: s.parent,
                name: s.name,
                start_ns: s.start_ns,
                end_ns,
                notes: s.notes,
            });
        }
    }
}

/// Why a trace was flagged for dumping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anomaly {
    /// The query ran past its deadline and was aborted.
    DeadlineExceeded,
    /// Execution trapped (division by zero, index out of bounds, …).
    Trap,
    /// The plan verifier rejected a compiled plan.
    VerifierReject,
    /// The adaptive engine re-optimized the plan during this query.
    Reopt,
    /// End-to-end latency exceeded the configured slow-query threshold.
    SlowQuery,
}

impl Anomaly {
    /// The stable lowercase label used in dumps and tests.
    pub fn label(&self) -> &'static str {
        match self {
            Anomaly::DeadlineExceeded => "deadline-exceeded",
            Anomaly::Trap => "trap",
            Anomaly::VerifierReject => "verifier-reject",
            Anomaly::Reopt => "reopt",
            Anomaly::SlowQuery => "slow-query",
        }
    }
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Flight-recorder sizing and anomaly thresholds.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Recent traces kept (oldest evicted beyond this).
    pub capacity: usize,
    /// Spans kept per trace (a runaway loop cannot balloon one entry).
    pub max_spans: usize,
    /// Latency at or above which a clean query is still flagged
    /// [`Anomaly::SlowQuery`]; `None` disables the threshold.
    pub slow_query: Option<Duration>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 64,
            max_spans: 512,
            slow_query: None,
        }
    }
}

/// Completion metadata the lifecycle owner hands to
/// [`FlightRecorder::finish`].
#[derive(Clone, Debug, Default)]
pub struct TraceMeta {
    /// The query text.
    pub query: String,
    /// The submitting tenant, when the query came through the service.
    pub tenant: Option<String>,
    /// An anomaly the caller already classified (deadline, trap,
    /// verifier reject). Re-opt and slow-query are derived here.
    pub anomaly: Option<Anomaly>,
    /// Free-form detail (the error message, the rejected rewrite).
    pub detail: Option<String>,
    /// The query's EXPLAIN JSON, attached verbatim to dumps.
    pub explain_json: Option<String>,
}

/// One query's complete annotated trace.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// The trace id (monotonic per recorder).
    pub trace_id: u64,
    /// The query text.
    pub query: String,
    /// The submitting tenant, if any.
    pub tenant: Option<String>,
    /// Why this trace was flagged, `None` for a clean query.
    pub anomaly: Option<Anomaly>,
    /// Free-form anomaly detail.
    pub detail: Option<String>,
    /// End-to-end wall time (origin → finish), nanoseconds.
    pub wall_ns: u64,
    /// Spans sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
    /// Spans lost to ring overwrite or the per-trace cap.
    pub dropped_spans: u64,
    /// EXPLAIN JSON captured at finish, when available.
    pub explain_json: Option<String>,
}

impl QueryTrace {
    /// The first span named `name`, if any.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Renders the trace as an indented span tree with annotations,
    /// followed by the attached EXPLAIN JSON. This is the flight-recorder
    /// dump format.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} anomaly={} wall={:.3}ms query={:?}\n",
            self.trace_id,
            self.anomaly.map(|a| a.label()).unwrap_or("none"),
            self.wall_ns as f64 / 1e6,
            self.query,
        );
        if let Some(t) = &self.tenant {
            out.push_str(&format!("tenant: {t}\n"));
        }
        if let Some(d) = &self.detail {
            out.push_str(&format!("detail: {d}\n"));
        }
        if self.dropped_spans > 0 {
            out.push_str(&format!("dropped spans: {}\n", self.dropped_spans));
        }
        // Indent each span one level under its parent; orphans (parent
        // aged out of the ring) render at the root.
        let ids: std::collections::BTreeSet<SpanId> = self.spans.iter().map(|s| s.id).collect();
        let mut depth: std::collections::BTreeMap<SpanId, usize> = std::collections::BTreeMap::new();
        for s in &self.spans {
            let d = match s.parent.filter(|p| ids.contains(p)) {
                Some(p) => depth.get(&p).copied().unwrap_or(0) + 1,
                None => 0,
            };
            depth.insert(s.id, d);
        }
        for s in &self.spans {
            let pad = "  ".repeat(depth.get(&s.id).copied().unwrap_or(0) + 1);
            let notes: Vec<String> = s.notes.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "{pad}{} {} @{:.3}ms +{:.3}ms{}{}\n",
                s.id,
                s.name,
                s.start_ns as f64 / 1e6,
                s.duration_ns() as f64 / 1e6,
                if notes.is_empty() { "" } else { "  " },
                notes.join(" "),
            ));
        }
        if let Some(js) = &self.explain_json {
            out.push_str("explain:\n");
            out.push_str(js);
            if !js.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bounded in-memory ring of recent query traces.
///
/// `begin` hands out a [`Tracer`]; `finish` collects its spans,
/// classifies anomalies, and stores the [`QueryTrace`]. The ring holds
/// the last [`TraceConfig::capacity`] traces regardless of volume, so a
/// service can run it continuously and dump the recent history the
/// moment something trips.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: TraceConfig,
    next_id: AtomicU64,
    recorded: AtomicU64,
    anomalies: AtomicU64,
    ring: Mutex<VecDeque<QueryTrace>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(TraceConfig::default())
    }
}

impl FlightRecorder {
    /// Creates a recorder with the given sizing/thresholds.
    pub fn new(cfg: TraceConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            next_id: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Starts a trace whose clock origin is now.
    pub fn begin(&self) -> Tracer {
        self.begin_at(Instant::now())
    }

    /// Starts a trace whose clock origin is `origin` — lets a service
    /// anchor the trace at submission time so queue wait (which happened
    /// before any worker touched the job) still lands at offset zero.
    pub fn begin_at(&self, origin: Instant) -> Tracer {
        Tracer::active(self.next_id.fetch_add(1, Ordering::Relaxed), origin)
    }

    /// Completes a trace: drains its spans from the current thread's
    /// ring, derives re-opt/slow-query anomalies, and stores the trace.
    /// Returns the final anomaly classification. No-op on a disabled
    /// tracer.
    pub fn finish(&self, tracer: &Tracer, meta: TraceMeta) -> Option<Anomaly> {
        let trace_id = tracer.trace_id()?;
        let wall_ns = tracer.now_ns();
        let (mut spans, mut dropped) = tracer.drain();
        if spans.len() > self.cfg.max_spans {
            dropped += (spans.len() - self.cfg.max_spans) as u64;
            spans.truncate(self.cfg.max_spans);
        }
        let anomaly = meta
            .anomaly
            .or_else(|| {
                spans
                    .iter()
                    .any(|s| s.name == "engine.reopt")
                    .then_some(Anomaly::Reopt)
            })
            .or_else(|| {
                self.cfg
                    .slow_query
                    .filter(|t| {
                        wall_ns >= u64::try_from(t.as_nanos()).unwrap_or(u64::MAX)
                    })
                    .map(|_| Anomaly::SlowQuery)
            });
        let trace = QueryTrace {
            trace_id,
            query: meta.query,
            tenant: meta.tenant,
            anomaly,
            detail: meta.detail,
            wall_ns,
            spans,
            dropped_spans: dropped,
            explain_json: meta.explain_json,
        };
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if anomaly.is_some() {
            self.anomalies.fetch_add(1, Ordering::Relaxed);
        }
        let mut ring = lock(&self.ring);
        if ring.len() >= self.cfg.capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(trace);
        anomaly
    }

    /// The recent traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// The recent *anomalous* traces, oldest first — what an operator
    /// dumps after an incident.
    pub fn dumps(&self) -> Vec<QueryTrace> {
        lock(&self.ring)
            .iter()
            .filter(|t| t.anomaly.is_some())
            .cloned()
            .collect()
    }

    /// The most recent anomalous trace, rendered.
    pub fn last_dump(&self) -> Option<String> {
        lock(&self.ring)
            .iter()
            .rev()
            .find(|t| t.anomaly.is_some())
            .map(QueryTrace::render)
    }

    /// Total traces finished through this recorder.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Total traces classified anomalous.
    pub fn anomaly_count(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(q: &str) -> TraceMeta {
        TraceMeta {
            query: q.to_string(),
            ..TraceMeta::default()
        }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.trace_id(), None);
        assert_eq!(t.now_ns(), 0);
        assert_eq!(t.reserve(), None);
        let mut g = t.span("x", None);
        g.note("k", 1u64);
        assert_eq!(g.id(), None);
        drop(g);
        assert_eq!(t.record("y", None, 0, 1, Vec::new()), None);
        let (spans, dropped) = t.drain();
        assert!(spans.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn spans_nest_with_parent_links_and_notes() {
        let rec = FlightRecorder::default();
        let t = rec.begin();
        let root = t.span("root", None);
        let root_id = root.id();
        {
            let mut child = t.span("child", root_id);
            child.note("elements", 42u64);
            child.note("tier", "vectorized");
        }
        drop(root);
        let (spans, _) = t.drain();
        assert_eq!(spans.len(), 2);
        // Sorted by start: root first (started earlier).
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].parent, root_id);
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans[1].end_ns <= spans[0].end_ns);
        assert_eq!(spans[1].note("elements"), Some(&Note::U64(42)));
        assert_eq!(spans[1].note("tier"), Some(&Note::Str("vectorized")));
        assert_eq!(spans[1].note("missing"), None);
    }

    #[test]
    fn retroactive_records_support_reserved_roots() {
        let rec = FlightRecorder::default();
        let t = rec.begin();
        let root = t.reserve().unwrap();
        let child = t
            .record("queue", Some(root), 10, 250, vec![("wait_ns", Note::U64(240))])
            .unwrap();
        t.record_reserved(root, "request", None, 0, 300, Vec::new());
        let (spans, _) = t.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[0].id, root);
        assert_eq!(spans[1].id, child);
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(spans[1].duration_ns(), 240);
    }

    #[test]
    fn thread_ring_is_bounded() {
        let rec = FlightRecorder::default();
        let t = rec.begin();
        for i in 0..(SPAN_RING_CAPACITY + 500) {
            t.record("s", None, i as u64, i as u64 + 1, Vec::new());
        }
        let (spans, dropped) = t.drain();
        assert_eq!(spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(dropped, 500);
    }

    #[test]
    fn per_trace_span_cap_truncates() {
        let rec = FlightRecorder::new(TraceConfig {
            max_spans: 8,
            ..TraceConfig::default()
        });
        let t = rec.begin();
        for _ in 0..20 {
            drop(t.span("s", None));
        }
        rec.finish(&t, meta("q"));
        let traces = rec.recent();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].spans.len(), 8);
        assert_eq!(traces[0].dropped_spans, 12);
    }

    #[test]
    fn flight_recorder_ring_is_bounded_under_sustained_load() {
        // Satellite guardrail: 10⁵ queries through a small ring must not
        // grow memory — the ring holds exactly `capacity` traces at the
        // end and every anomaly is still counted.
        let rec = FlightRecorder::new(TraceConfig {
            capacity: 32,
            slow_query: Some(Duration::ZERO), // everything is "slow"
            ..TraceConfig::default()
        });
        for i in 0..100_000u64 {
            let t = rec.begin();
            drop(t.span("vm.run", None));
            rec.finish(
                &t,
                TraceMeta {
                    query: format!("q{i}"),
                    ..TraceMeta::default()
                },
            );
        }
        assert_eq!(rec.recorded(), 100_000);
        assert_eq!(rec.anomaly_count(), 100_000);
        assert_eq!(rec.recent().len(), 32);
        assert_eq!(rec.dumps().len(), 32);
        // The freshest trace is retained, the oldest evicted.
        assert_eq!(rec.recent().last().unwrap().query, "q99999");
    }

    #[test]
    fn anomalies_classify_explicit_reopt_and_slow() {
        let rec = FlightRecorder::new(TraceConfig {
            slow_query: Some(Duration::from_nanos(1)),
            ..TraceConfig::default()
        });
        // Explicit anomaly wins.
        let t = rec.begin();
        let got = rec.finish(
            &t,
            TraceMeta {
                query: "q".into(),
                anomaly: Some(Anomaly::DeadlineExceeded),
                ..TraceMeta::default()
            },
        );
        assert_eq!(got, Some(Anomaly::DeadlineExceeded));
        // A trace containing an engine.reopt span classifies as Reopt.
        let t = rec.begin();
        drop(t.span("engine.reopt", None));
        assert_eq!(rec.finish(&t, meta("q")), Some(Anomaly::Reopt));
        // Otherwise the slow-query threshold applies.
        let t = rec.begin();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(rec.finish(&t, meta("q")), Some(Anomaly::SlowQuery));
        assert_eq!(rec.anomaly_count(), 3);
    }

    #[test]
    fn clean_queries_are_not_dumped() {
        let rec = FlightRecorder::default(); // no slow threshold
        let t = rec.begin();
        drop(t.span("vm.run", None));
        assert_eq!(rec.finish(&t, meta("q")), None);
        assert_eq!(rec.recorded(), 1);
        assert_eq!(rec.anomaly_count(), 0);
        assert!(rec.dumps().is_empty());
        assert!(rec.last_dump().is_none());
        assert_eq!(rec.recent().len(), 1);
    }

    #[test]
    fn render_shows_tree_notes_and_explain() {
        let rec = FlightRecorder::default();
        let t = rec.begin();
        let root = t.reserve().unwrap();
        t.record(
            "vm.loop",
            Some(root),
            100,
            900,
            vec![("tier", Note::Str("vectorized")), ("elements", Note::U64(7))],
        );
        t.record_reserved(root, "serve.request", None, 0, 1000, Vec::new());
        rec.finish(
            &t,
            TraceMeta {
                query: "xs.sum()".into(),
                tenant: Some("acme".into()),
                anomaly: Some(Anomaly::Trap),
                detail: Some("division by zero".into()),
                explain_json: Some("{\"query\": \"xs.sum()\"}".into()),
            },
        );
        let dump = rec.last_dump().unwrap();
        assert!(dump.contains("anomaly=trap"), "{dump}");
        assert!(dump.contains("tenant: acme"), "{dump}");
        assert!(dump.contains("detail: division by zero"), "{dump}");
        assert!(dump.contains("serve.request"), "{dump}");
        // Child indented one level deeper than the root.
        assert!(dump.contains("\n    #"), "child indent in {dump}");
        assert!(dump.contains("tier=vectorized elements=7"), "{dump}");
        assert!(dump.contains("explain:\n{\"query\": \"xs.sum()\"}"), "{dump}");
    }
}
