/root/repo/target/debug/deps/tab01-fe3fa0e3234bd262.d: crates/bench/src/bin/tab01.rs

/root/repo/target/debug/deps/tab01-fe3fa0e3234bd262: crates/bench/src/bin/tab01.rs

crates/bench/src/bin/tab01.rs:
