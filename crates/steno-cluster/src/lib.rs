//! The DryadLINQ substrate: distributed execution on a simulated cluster.
//!
//! DryadLINQ "divides the query into vertices in a Dryad task dependency
//! graph: each vertex executes a portion of the query on a partition of
//! the overall data" (§1). This crate reproduces that execution
//! environment at one-machine scale so that §6 and the distributed
//! k-means experiment of §7.2 can run:
//!
//! * [`partition`] — partitioned collections and partitioning schemes,
//! * [`chain_interp`] — the *unoptimized* vertex executor: the same QUIL
//!   subchain run through boxed iterator state machines and per-element
//!   expression interpretation (what a vertex does before Steno is
//!   applied),
//! * [`job`] — Dryad-style job graphs built from the §6 parallel plan
//!   (Fig. 12's `Src_i → Trans → Agg_i → Agg*` shape),
//! * [`exec`] — the scheduler: a worker pool applies the per-partition
//!   subquery (the `HomomorphicApply` of §6) and a reduce stage merges
//!   partition results, using partial-aggregation combiners whenever the
//!   plan declares them.
//!
//! On top of the §6 plan splitting, [`exec`] reproduces Dryad's
//! *re-execution contract*: a failed or slow vertex is re-executed
//! (possibly speculatively) without changing the job's answer. The
//! supporting pieces are [`fault`] (deterministic fault injection and the
//! transient/deterministic failure taxonomy) and [`retry`]
//! (retry/backoff and straggler-speculation policies).
//!
//! Substitution note (see DESIGN.md): the paper ran on a 100-node Dryad
//! cluster; here vertices are threads and channels are memory, which
//! preserves the code paths under study — chain splitting, per-vertex
//! Steno compilation, partial aggregation — while fitting on one machine.

// The scheduler survives UDF panics by construction (`catch_unwind` at
// the vertex boundary); nothing else in this crate may panic on
// data-dependent input. Enforced here, relaxed only in tests.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod chain_interp;
pub mod exec;
pub mod fault;
pub mod job;
pub mod partition;
pub mod retry;
pub mod sync;

pub use exec::{
    execute_distributed, execute_distributed_with, homomorphic_apply, homomorphic_apply_rt,
    ApplyStats, ClusterSpec, DistError, JobReport, RetryEvent, RuntimeConfig, VertexEngine,
};
pub use fault::{CancelToken, FailureClass, Fault, FaultKind, FaultPlan, VertexFailure};
pub use job::JobGraph;
pub use partition::DistributedCollection;
pub use retry::{RetryPolicy, SpeculationPolicy};
