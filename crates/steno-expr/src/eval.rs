//! The reference tree-walking evaluator.
//!
//! This is the semantics that every execution back end (the baseline LINQ
//! interpreter, the Steno VM, and the proc-macro expansion) must agree
//! with; the differential property tests in the workspace compare them all
//! against it.

use std::collections::HashMap;

use crate::error::EvalError;
use crate::expr::{BinOp, Expr, Lambda, UnOp};
use crate::ty::Ty;
use crate::udf::UdfRegistry;
use crate::value::Value;

/// A runtime environment: variable name → value.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: HashMap<String, Value>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Binds `name` to `value`, returning `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Env {
        self.vars.insert(name.into(), value);
        self
    }

    /// Binds `name` to `value` in place.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Looks up `name`.
    pub fn lookup(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Iterates over `(name, value)` bindings in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Binds `name`, returning the shadowed value (if any) so callers can
    /// [`Env::restore`] it — the allocation-free alternative to cloning
    /// the environment per element in interpreter hot loops.
    pub fn bind_shadowing(&mut self, name: &str, value: Value) -> Option<Value> {
        self.vars.insert(name.to_string(), value)
    }

    /// Undoes a [`Env::bind_shadowing`]: reinstates the shadowed value or
    /// removes the binding.
    pub fn restore(&mut self, name: &str, shadowed: Option<Value>) {
        match shadowed {
            Some(v) => {
                self.vars.insert(name.to_string(), v);
            }
            None => {
                self.vars.remove(name);
            }
        }
    }
}

fn num2(
    op: BinOp,
    a: &Value,
    b: &Value,
    ff: impl Fn(f64, f64) -> Result<f64, EvalError>,
    ii: impl Fn(i64, i64) -> Result<i64, EvalError>,
) -> Result<Value, EvalError> {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => Ok(Value::F64(ff(*x, *y)?)),
        (Value::I64(x), Value::I64(y)) => Ok(Value::I64(ii(*x, *y)?)),
        _ => Err(EvalError::TypeMismatch(format!(
            "operator {} on {:?} and {:?}",
            op.symbol(),
            a.ty(),
            b.ty()
        ))),
    }
}

fn compare(op: BinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    let ord = match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.partial_cmp(y),
        (Value::I64(x), Value::I64(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => {
            return Err(EvalError::TypeMismatch(format!(
                "comparison {} on {:?} and {:?}",
                op.symbol(),
                a.ty(),
                b.ty()
            )))
        }
    };
    let result = match op {
        // IEEE semantics: NaN compares unequal/false, like C#.
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => ord.is_some_and(|o| o.is_lt()),
        BinOp::Le => ord.is_some_and(|o| o.is_le()),
        BinOp::Gt => ord.is_some_and(|o| o.is_gt()),
        BinOp::Ge => ord.is_some_and(|o| o.is_ge()),
        _ => unreachable!("compare called with non-comparison operator"),
    };
    Ok(Value::Bool(result))
}

/// Evaluates `expr` under `env`.
///
/// # Errors
///
/// Returns an [`EvalError`] for unbound variables, shape mismatches,
/// out-of-bounds row indexing, unknown UDFs, or integer division by zero.
/// A well-typed tree (per [`crate::typecheck::infer`]) only fails for the
/// two data-dependent conditions.
pub fn eval(expr: &Expr, env: &Env, udfs: &UdfRegistry) -> Result<Value, EvalError> {
    match expr {
        Expr::Var(name) => env
            .lookup(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        Expr::LitF64(x) => Ok(Value::F64(*x)),
        Expr::LitI64(x) => Ok(Value::I64(*x)),
        Expr::LitBool(b) => Ok(Value::Bool(*b)),
        Expr::Bin(op, a, b) => {
            // Short-circuit the logical operators before evaluating `b`.
            if matches!(op, BinOp::And | BinOp::Or) {
                let va = eval(a, env, udfs)?;
                let la = va
                    .as_bool()
                    .ok_or_else(|| EvalError::TypeMismatch("logical operand".into()))?;
                if (*op == BinOp::And && !la) || (*op == BinOp::Or && la) {
                    return Ok(Value::Bool(la));
                }
                let vb = eval(b, env, udfs)?;
                return vb
                    .as_bool()
                    .map(Value::Bool)
                    .ok_or_else(|| EvalError::TypeMismatch("logical operand".into()));
            }
            let va = eval(a, env, udfs)?;
            let vb = eval(b, env, udfs)?;
            match op {
                BinOp::Add => num2(*op, &va, &vb, |x, y| Ok(x + y), |x, y| Ok(x.wrapping_add(y))),
                BinOp::Sub => num2(*op, &va, &vb, |x, y| Ok(x - y), |x, y| Ok(x.wrapping_sub(y))),
                BinOp::Mul => num2(*op, &va, &vb, |x, y| Ok(x * y), |x, y| Ok(x.wrapping_mul(y))),
                BinOp::Div => num2(
                    *op,
                    &va,
                    &vb,
                    |x, y| Ok(x / y),
                    |x, y| {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(x.wrapping_div(y))
                        }
                    },
                ),
                BinOp::Rem => num2(
                    *op,
                    &va,
                    &vb,
                    |x, y| Ok(x % y),
                    |x, y| {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(x.wrapping_rem(y))
                        }
                    },
                ),
                BinOp::Min => num2(*op, &va, &vb, |x, y| Ok(x.min(y)), |x, y| Ok(x.min(y))),
                BinOp::Max => num2(*op, &va, &vb, |x, y| Ok(x.max(y)), |x, y| Ok(x.max(y))),
                _ => compare(*op, &va, &vb),
            }
        }
        Expr::Un(op, a) => {
            let va = eval(a, env, udfs)?;
            match (op, va) {
                (UnOp::Neg, Value::F64(x)) => Ok(Value::F64(-x)),
                (UnOp::Neg, Value::I64(x)) => Ok(Value::I64(x.wrapping_neg())),
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Abs, Value::F64(x)) => Ok(Value::F64(x.abs())),
                (UnOp::Abs, Value::I64(x)) => Ok(Value::I64(x.wrapping_abs())),
                (UnOp::Sqrt, Value::F64(x)) => Ok(Value::F64(x.sqrt())),
                (UnOp::Floor, Value::F64(x)) => Ok(Value::F64(x.floor())),
                (op, v) => Err(EvalError::TypeMismatch(format!(
                    "operator {} on {:?}",
                    op.symbol(),
                    v.ty()
                ))),
            }
        }
        Expr::Call(name, args) => {
            let udf = udfs
                .get(name)
                .ok_or_else(|| EvalError::UnknownUdf(name.clone()))?;
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval(a, env, udfs)?);
            }
            Ok((udf.imp)(&values))
        }
        Expr::Field(a, i) => {
            let v = eval(a, env, udfs)?;
            let (x, y) = v
                .as_pair()
                .ok_or_else(|| EvalError::TypeMismatch("projection of non-pair".into()))?;
            Ok(if *i == 0 { x.clone() } else { y.clone() })
        }
        Expr::RowIndex(a, i) => {
            let row = eval(a, env, udfs)?;
            let idx = eval(i, env, udfs)?;
            let row = row
                .as_row()
                .ok_or_else(|| EvalError::TypeMismatch("indexing of non-row".into()))?;
            let idx = idx
                .as_i64()
                .ok_or_else(|| EvalError::TypeMismatch("non-integer row index".into()))?;
            if idx < 0 || idx as usize >= row.len() {
                return Err(EvalError::IndexOutOfBounds {
                    index: idx,
                    len: row.len(),
                });
            }
            Ok(Value::F64(row[idx as usize]))
        }
        Expr::RowLen(a) => {
            let row = eval(a, env, udfs)?;
            let row = row
                .as_row()
                .ok_or_else(|| EvalError::TypeMismatch("length of non-row".into()))?;
            Ok(Value::I64(row.len() as i64))
        }
        Expr::MkPair(a, b) => Ok(Value::pair(eval(a, env, udfs)?, eval(b, env, udfs)?)),
        Expr::If(c, t, e) => {
            let vc = eval(c, env, udfs)?;
            let cond = vc
                .as_bool()
                .ok_or_else(|| EvalError::TypeMismatch("if condition".into()))?;
            if cond {
                eval(t, env, udfs)
            } else {
                eval(e, env, udfs)
            }
        }
        Expr::Cast(ty, a) => {
            let v = eval(a, env, udfs)?;
            match (v, ty) {
                (Value::F64(x), Ty::I64) => Ok(Value::I64(x as i64)),
                (Value::I64(x), Ty::F64) => Ok(Value::F64(x as f64)),
                (v @ Value::F64(_), Ty::F64) | (v @ Value::I64(_), Ty::I64) => Ok(v),
                (v, ty) => Err(EvalError::TypeMismatch(format!(
                    "cast of {:?} to {ty}",
                    v.ty()
                ))),
            }
        }
    }
}

/// Applies a lambda to argument values.
///
/// # Errors
///
/// Returns [`EvalError::TypeMismatch`] if the argument count differs from
/// the lambda arity, and propagates body evaluation errors.
pub fn apply(
    lambda: &Lambda,
    args: &[Value],
    env: &Env,
    udfs: &UdfRegistry,
) -> Result<Value, EvalError> {
    if args.len() != lambda.arity() {
        return Err(EvalError::TypeMismatch(format!(
            "lambda of arity {} applied to {} arguments",
            lambda.arity(),
            args.len()
        )));
    }
    let mut inner = env.clone();
    for ((name, _), value) in lambda.params.iter().zip(args) {
        inner.bind(name.clone(), value.clone());
    }
    eval(&lambda.body, &inner, udfs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(e: &Expr) -> Value {
        eval(e, &Env::new(), &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev(&(Expr::litf(2.0) * Expr::litf(3.0) + Expr::litf(1.0))), Value::F64(7.0));
        assert_eq!(ev(&(Expr::liti(7) % Expr::liti(2))), Value::I64(1));
        assert_eq!(ev(&(-Expr::liti(5))), Value::I64(-5));
        assert_eq!(ev(&Expr::litf(2.25).sqrt()), Value::F64(1.5));
        assert_eq!(ev(&Expr::litf(2.75).floor()), Value::F64(2.0));
        assert_eq!(ev(&Expr::litf(4.0).min(Expr::litf(3.0))), Value::F64(3.0));
    }

    #[test]
    fn integer_division_by_zero_is_an_error() {
        let e = Expr::liti(1) / Expr::liti(0);
        assert_eq!(
            eval(&e, &Env::new(), &UdfRegistry::new()),
            Err(EvalError::DivisionByZero)
        );
        // Float division by zero follows IEEE.
        assert_eq!(ev(&(Expr::litf(1.0) / Expr::litf(0.0))), Value::F64(f64::INFINITY));
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // The right operand would fail with division by zero if evaluated.
        let trap = (Expr::liti(1) / Expr::liti(0)).eq(Expr::liti(0));
        let e = Expr::litb(false).and(trap.clone());
        assert_eq!(ev(&e), Value::Bool(false));
        let e = Expr::litb(true).or(trap);
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn nan_comparisons_are_false() {
        let nan = Expr::litf(f64::NAN);
        assert_eq!(ev(&nan.clone().eq(nan.clone())), Value::Bool(false));
        assert_eq!(ev(&nan.clone().lt(Expr::litf(0.0))), Value::Bool(false));
        assert_eq!(ev(&nan.clone().ne(nan)), Value::Bool(true));
    }

    #[test]
    fn rows_and_pairs() {
        let env = Env::new()
            .with("p", Value::row(vec![3.0, 4.0]))
            .with("kv", Value::pair(Value::I64(7), Value::F64(0.5)));
        let udfs = UdfRegistry::new();
        assert_eq!(
            eval(&Expr::var("p").row_index(Expr::liti(1)), &env, &udfs),
            Ok(Value::F64(4.0))
        );
        assert_eq!(eval(&Expr::var("p").row_len(), &env, &udfs), Ok(Value::I64(2)));
        assert_eq!(
            eval(&Expr::var("p").row_index(Expr::liti(5)), &env, &udfs),
            Err(EvalError::IndexOutOfBounds { index: 5, len: 2 })
        );
        assert_eq!(eval(&Expr::var("kv").field(0), &env, &udfs), Ok(Value::I64(7)));
    }

    #[test]
    fn udf_call() {
        let mut udfs = UdfRegistry::new();
        udfs.register("twice", vec![Ty::F64], Ty::F64, |args| {
            Value::F64(args[0].as_f64().unwrap() * 2.0)
        });
        let e = Expr::call("twice", vec![Expr::litf(21.0)]);
        assert_eq!(eval(&e, &Env::new(), &udfs), Ok(Value::F64(42.0)));
        let missing = Expr::call("missing", vec![]);
        assert_eq!(
            eval(&missing, &Env::new(), &udfs),
            Err(EvalError::UnknownUdf("missing".into()))
        );
    }

    #[test]
    fn lambda_application() {
        let udfs = UdfRegistry::new();
        let square = Lambda::unary("x", Ty::F64, Expr::var("x") * Expr::var("x"));
        assert_eq!(
            apply(&square, &[Value::F64(3.0)], &Env::new(), &udfs),
            Ok(Value::F64(9.0))
        );
        assert!(apply(&square, &[], &Env::new(), &udfs).is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(ev(&Expr::litf(2.9).cast(Ty::I64)), Value::I64(2));
        assert_eq!(ev(&Expr::liti(2).cast(Ty::F64)), Value::F64(2.0));
    }

    #[test]
    fn conditional_picks_branch() {
        let e = Expr::if_(
            Expr::liti(1).lt(Expr::liti(2)),
            Expr::litf(1.0),
            Expr::litf(2.0),
        );
        assert_eq!(ev(&e), Value::F64(1.0));
    }
}
